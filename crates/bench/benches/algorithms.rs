//! Criterion benchmarks: every CC algorithm on every registry dataset
//! (the microbenchmark companion to the `fig8a_perf` binary).
//!
//! Run a focused subset with e.g.
//! `cargo bench -p afforest-bench --bench algorithms -- urand`.

use afforest_bench::{registry, Algorithm, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    for dataset in registry() {
        let g = dataset.build(Scale::Tiny);
        let mut group = c.benchmark_group(format!("cc/{}", dataset.name));
        group
            .sample_size(20)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_secs(1))
            .throughput(Throughput::Elements(g.num_edges() as u64));
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &g, |b, g| {
                b.iter(|| alg.run(g));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
