//! Criterion benchmarks for the extension subsystems: incremental CC,
//! distributed CC, the union-find family, and the edge-list comparator.

use afforest_baselines::{rem_cc, union_by_rank_cc, union_by_size_cc, union_find::union_find_cc};
use afforest_core::incremental::IncrementalCc;
use afforest_core::{afforest, AfforestConfig};
use afforest_distrib::{
    distributed_cc_forest, distributed_cc_labels, PartitionKind, VertexPartition,
};
use afforest_graph::generators::uniform_random;
use afforest_graph::CsrGraph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;

fn test_graph() -> CsrGraph {
    uniform_random(1 << 12, 8 << 12, 7)
}

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

fn bench_incremental(c: &mut Criterion) {
    let g = test_graph();
    let edges = g.collect_edges();
    let mut group = c.benchmark_group("extensions/incremental");
    configure(&mut group);
    group.throughput(Throughput::Elements(edges.len() as u64));
    for chunks in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("stream", chunks), &chunks, |b, &chunks| {
            b.iter(|| {
                let mut cc = IncrementalCc::new(g.num_vertices());
                for chunk in edges.chunks(edges.len().div_ceil(chunks)) {
                    cc.insert_batch(chunk);
                }
                cc.into_labels()
            });
        });
    }
    group.bench_function("batch-afforest", |b| {
        b.iter(|| afforest(&g, &AfforestConfig::default()))
    });
    group.finish();
}

fn bench_distributed(c: &mut Criterion) {
    let g = test_graph();
    let mut group = c.benchmark_group("extensions/distributed");
    configure(&mut group);
    for ranks in [2usize, 8] {
        let part = VertexPartition::new(g.num_vertices(), ranks, PartitionKind::Hash);
        group.bench_with_input(BenchmarkId::new("forest-merge", ranks), &part, |b, part| {
            b.iter(|| distributed_cc_forest(&g, part))
        });
        group.bench_with_input(
            BenchmarkId::new("label-exchange", ranks),
            &part,
            |b, part| b.iter(|| distributed_cc_labels(&g, part)),
        );
    }
    group.finish();
}

fn bench_union_find_family(c: &mut Criterion) {
    let g = test_graph();
    let mut group = c.benchmark_group("extensions/union_find_family");
    configure(&mut group);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("min-index", |b| b.iter(|| union_find_cc(&g)));
    group.bench_function("by-rank", |b| b.iter(|| union_by_rank_cc(&g)));
    group.bench_function("by-size", |b| b.iter(|| union_by_size_cc(&g)));
    group.bench_function("rem-splicing", |b| b.iter(|| rem_cc(&g)));
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental,
    bench_distributed,
    bench_union_find_family
);
criterion_main!(benches);
