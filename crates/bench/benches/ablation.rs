//! Ablation benchmarks for the design decisions called out in DESIGN.md §5:
//!
//! - number of neighbor rounds (paper fixes 2),
//! - compress-per-round (paper Fig. 5) vs single compress (GAPBS),
//! - large-component skipping on/off,
//! - most-frequent-element sample size.

use afforest_bench::{datasets, Scale};
use afforest_core::{afforest, AfforestConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

fn bench_neighbor_rounds(c: &mut Criterion) {
    let g = datasets::by_name("web").unwrap().build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation/neighbor_rounds");
    configure(&mut group);
    for rounds in [0usize, 1, 2, 4, 8] {
        let cfg = AfforestConfig {
            neighbor_rounds: rounds,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &cfg, |b, cfg| {
            b.iter(|| afforest(&g, cfg));
        });
    }
    group.finish();
}

fn bench_compress_schedule(c: &mut Criterion) {
    let g = datasets::by_name("kron").unwrap().build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation/compress_schedule");
    configure(&mut group);
    for (name, each_round) in [("per-round", true), ("once-after", false)] {
        let cfg = AfforestConfig {
            compress_each_round: each_round,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| afforest(&g, cfg));
        });
    }
    group.finish();
}

fn bench_component_skip(c: &mut Criterion) {
    let g = datasets::by_name("urand").unwrap().build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation/component_skip");
    configure(&mut group);
    for (name, cfg) in [
        ("skip", AfforestConfig::default()),
        (
            "no-skip",
            AfforestConfig::builder().skip(false).build().unwrap(),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| afforest(&g, cfg));
        });
    }
    group.finish();
}

fn bench_sample_size(c: &mut Criterion) {
    let g = datasets::by_name("urand").unwrap().build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation/sample_size");
    configure(&mut group);
    for samples in [64usize, 256, 1024, 4096] {
        let cfg = AfforestConfig {
            sample_size: samples,
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(samples), &cfg, |b, cfg| {
            b.iter(|| afforest(&g, cfg));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbor_rounds,
    bench_compress_schedule,
    bench_component_skip,
    bench_sample_size
);
criterion_main!(benches);
