//! Microbenchmarks for the building blocks: `link`, `compress`, parent
//! array probes, CSR construction, and the generators.

use afforest_core::{compress_all, link, spanning_forest, ParentArray};
use afforest_graph::generators::{rmat_scale, road_network, uniform_random, web_graph};
use afforest_graph::{GraphBuilder, Node};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rayon::prelude::*;
use std::time::Duration;

fn configure(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
}

fn bench_link(c: &mut Criterion) {
    let g = uniform_random(1 << 12, 1 << 15, 7);
    let edges = g.collect_edges();
    let mut group = c.benchmark_group("primitives/link");
    configure(&mut group);
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("full-pass", |b| {
        b.iter(|| {
            let pi = ParentArray::new(g.num_vertices());
            edges.par_iter().for_each(|&(u, v)| {
                link(u, v, &pi);
            });
            pi
        });
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let n = 1usize << 14;
    let mut group = c.benchmark_group("primitives/compress");
    configure(&mut group);
    group.throughput(Throughput::Elements(n as u64));
    for (name, builder) in [
        ("deep-path", build_path as fn(usize) -> Vec<Node>),
        ("shallow-stars", build_stars as fn(usize) -> Vec<Node>),
    ] {
        let snapshot = builder(n);
        group.bench_with_input(BenchmarkId::from_parameter(name), &snapshot, |b, snap| {
            b.iter(|| {
                let pi = ParentArray::from_snapshot(snap);
                compress_all(&pi);
                pi
            });
        });
    }
    group.finish();
}

fn build_path(n: usize) -> Vec<Node> {
    (0..n as Node).map(|v| v.saturating_sub(1)).collect()
}

fn build_stars(n: usize) -> Vec<Node> {
    (0..n as Node).map(|v| v - v % 16).collect()
}

fn bench_builder(c: &mut Criterion) {
    let g = uniform_random(1 << 12, 1 << 15, 3);
    let edges = g.collect_edges();
    let mut group = c.benchmark_group("primitives/csr_build");
    configure(&mut group);
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.bench_function("build", |b| {
        b.iter(|| GraphBuilder::from_edges(1 << 12, &edges).build());
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives/generators");
    configure(&mut group);
    group.bench_function("uniform_2^12x8", |b| {
        b.iter(|| uniform_random(1 << 12, 8 << 12, 1))
    });
    group.bench_function("rmat_2^12x8", |b| b.iter(|| rmat_scale(12, 8, 1)));
    group.bench_function("road_64x64", |b| {
        b.iter(|| road_network(64, 64, 0.9, 0.02, 1))
    });
    group.bench_function("web_2^12x4", |b| {
        b.iter(|| web_graph(1 << 12, 4, 0.7, 8.0, 1))
    });
    group.finish();
}

fn bench_spanning_forest(c: &mut Criterion) {
    let g = uniform_random(1 << 12, 1 << 15, 5);
    let mut group = c.benchmark_group("primitives/spanning_forest");
    configure(&mut group);
    group.throughput(Throughput::Elements(g.num_edges() as u64));
    group.bench_function("parallel", |b| b.iter(|| spanning_forest(&g)));
    group.finish();
}

criterion_group!(
    benches,
    bench_link,
    bench_compress,
    bench_builder,
    bench_generators,
    bench_spanning_forest
);
criterion_main!(benches);
