//! The panic path of the flight recorder: a panicking thread triggers
//! the installed hook, which writes a parseable dump of everything the
//! ring saw before the crash.
//!
//! Own test file on purpose: the panic hook and the flight ring are
//! process-global.

use afforest_serve::events::{self, EventKind};
use std::path::PathBuf;

#[test]
fn panic_hook_dumps_a_parseable_flight_recording() {
    let dir = std::env::temp_dir().join(format!("afforest-flight-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path: PathBuf = dir.join("flight.json");
    events::install_panic_hook(path.clone());

    // Lifecycle the ring would have seen before a real crash.
    events::record(EventKind::EpochPublished, [1, 64, 500]);
    events::record(EventKind::OverloadShed, [4096, 32, 0]);
    events::record(EventKind::WalError, [2, 0, 0]);

    // The crash: a worker thread panics; the hook fires before unwind.
    let result = std::thread::Builder::new()
        .name("doomed-worker".into())
        .spawn(|| panic!("injected test panic"))
        .unwrap()
        .join();
    assert!(result.is_err(), "the thread must have panicked");

    let text = std::fs::read_to_string(&path).expect("hook wrote the dump");
    let dump = events::parse_dump(&text).expect("panic dump parses");
    assert!(dump.recorded >= 3);
    assert!(dump
        .of_kind(EventKind::EpochPublished)
        .any(|e| e.fields.get("epoch") == Some(&1) && e.fields.get("lag_us") == Some(&500)));
    assert!(dump
        .of_kind(EventKind::OverloadShed)
        .any(|e| e.fields.get("queue_depth") == Some(&4096)));
    assert!(dump.of_kind(EventKind::WalError).count() >= 1);

    std::fs::remove_dir_all(&dir).ok();
}
