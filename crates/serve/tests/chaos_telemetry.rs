//! Chaos visibility: every fault the plan injects must be visible in
//! BOTH the metrics exposition and the flight-recorder dump — an
//! operator reading telemetry alone can fully account for a chaos run.
//!
//! One test function on purpose: the registry and the flight ring are
//! process-global, so this scenario owns the process and asserts exact
//! equality between the plan's own counters and what telemetry shows.

use afforest_obs::{flight, registry};
use afforest_serve::events::{self, fault_site};
use afforest_serve::loadgen::{run, LoadgenConfig};
use afforest_serve::{BatchPolicy, Client, FaultPlan, ServeConfig, Server};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "afforest-chaos-telem-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_injected_fault_is_visible_in_metrics_and_flight_dump() {
    let n = 256usize;
    let dir = tempdir("all-sites");
    let seed_edges: Vec<(u32, u32)> = (1..64u32).map(|v| (v - 1, v)).collect();
    // All five sites armed. Worker kills are capped by the pool size, so
    // a modest probability keeps most of the pool alive for the run.
    let faults = Arc::new(
        FaultPlan::parse(
            "seed=33,wal_drop=0.15,wal_short_write=0.1,apply_delay_ms=1,apply_delay_prob=0.2,\
             torn_frame=0.04,kill_worker=0.02",
        )
        .expect("fault spec"),
    );
    let config = ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 32,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        })
        .wal_root(Some(dir.clone()))
        .wal_snapshot_every(6)
        .faults(Some(Arc::clone(&faults)))
        .build()
        .expect("valid config");
    let server = Server::new(n, &seed_edges, config).expect("start server");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 6).unwrap());
        let report = run(
            &LoadgenConfig {
                connections: 3,
                requests: 450,
                read_pct: 60,
                insert_batch: 8,
                seed: 17,
                max_retries: 10,
                retry_backoff: Duration::from_micros(100),
                ..LoadgenConfig::default()
            },
            |_| Client::connect(addr)?.with_read_timeout(Some(Duration::from_secs(5))),
        )
        .expect("chaos degrades loadgen, never aborts it");
        assert_eq!(report.requests, 450);
        server.request_shutdown();
    });

    let injected = faults.injected();
    // The run must have actually fired the sites we assert on.
    assert!(injected.wal_drops > 0, "no wal drops: {injected:?}");
    assert!(injected.apply_delays > 0, "no apply delays: {injected:?}");
    assert!(injected.torn_frames > 0, "no torn frames: {injected:?}");

    // 1) Every site's count is in the exposition, exactly.
    let scrape = registry::parse_exposition(&registry::expose()).expect("exposition parses");
    for (metric, expected) in [
        ("afforest_faults_wal_drop_total", injected.wal_drops),
        (
            "afforest_faults_wal_short_write_total",
            injected.wal_short_writes,
        ),
        ("afforest_faults_apply_delay_total", injected.apply_delays),
        ("afforest_faults_torn_frame_total", injected.torn_frames),
        ("afforest_faults_worker_kill_total", injected.worker_kills),
    ] {
        assert_eq!(
            scrape.value(metric),
            Some(expected),
            "{metric} disagrees with the plan"
        );
    }
    // The shed/WAL/epoch telemetry moved too (sanity that the rest of
    // the plane was live during chaos).
    assert!(scrape.value("afforest_wal_records_total") > Some(0));
    assert!(scrape.value("afforest_epochs_published_total") > Some(0));

    // 2) Every fault is in the flight dump. The ring holds the last 1024
    //    events; this workload stays under that, so nothing was lapped.
    let dump = events::parse_dump(&events::dump_json()).expect("flight dump parses");
    assert!(
        dump.recorded <= flight::CAPACITY as u64,
        "ring wrapped ({} events): the equality below would undercount",
        dump.recorded
    );
    for (site, expected) in [
        (fault_site::WAL_DROP, injected.wal_drops),
        (fault_site::WAL_SHORT_WRITE, injected.wal_short_writes),
        (fault_site::APPLY_DELAY, injected.apply_delays),
        (fault_site::TORN_FRAME, injected.torn_frames),
        (fault_site::KILL_WORKER, injected.worker_kills),
    ] {
        assert_eq!(
            dump.faults_at(site) as u64,
            expected,
            "flight ring disagrees with the plan at site {}",
            fault_site::name(site)
        );
    }
    // The dump also explains the run's normal lifecycle.
    assert!(dump.of_kind(events::EventKind::EpochPublished).count() > 0);
    assert!(dump.of_kind(events::EventKind::BatchApplied).count() > 0);

    std::fs::remove_dir_all(&dir).ok();
}
