//! The exposition fixture (`tests/fixtures/exposition.txt`) is the
//! reviewed list of every service metric, in real exposition text. Two
//! checks keep it honest:
//!
//! - `cargo xtask lint` statically requires every metric-name literal in
//!   the sources to appear in the fixture (a metric cannot be added
//!   silently);
//! - this test checks the converse at runtime: every metric the serving
//!   stack registers shows up in a live scrape AND is named in the
//!   fixture, and the fixture itself still parses with the scrape
//!   parser.
//!
//! The fixture also carries the sharded router's metric set, which this
//! crate cannot register (serve does not depend on `afforest-shard`), so
//! the regeneration authority is the shard crate's twin of this test.
//! Regenerate after adding a metric:
//!
//! ```text
//! UPDATE_FIXTURE=1 cargo test -p afforest-shard --test exposition_fixture
//! ```
//!
//! Own test file on purpose: the registry is process-global.

use afforest_obs::registry;
use std::path::Path;

#[test]
fn every_registered_metric_is_named_in_the_fixture() {
    // Register the full serving metric set, plus the one client-side
    // counter loadgen owns; a sample in each histogram makes the fixture
    // show bucket/sum/count lines like a real scrape would.
    let m = afforest_serve::metrics::metrics();
    for h in m.latency {
        h.record(1_500);
    }
    m.epoch_publish_lag.record(2_000_000);
    // The per-tenant labelled family, as the registry would carry it
    // after serving the default tenant.
    afforest_serve::metrics::tenant_metrics("default");
    registry::counter("afforest_client_retries_total").inc();
    let live = registry::expose();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/exposition.txt");
    let fixture = std::fs::read_to_string(&path)
        .expect("fixture missing: regenerate with UPDATE_FIXTURE=1 (see module docs)");
    let scrape = registry::parse_exposition(&fixture).expect("fixture parses as exposition");
    assert!(!scrape.values.is_empty() && !scrape.histograms.is_empty());

    let fixture_names: Vec<&str> = fixture
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for name in live
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
    {
        assert!(
            fixture_names.contains(&name),
            "{name} is registered but missing from the fixture; regenerate \
             with UPDATE_FIXTURE=1 (see module docs)"
        );
    }
}
