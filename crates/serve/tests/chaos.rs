//! Chaos-injection integration tests: a real TCP server under seeded
//! faults — torn response frames, delayed applies, killed accept workers
//! — with a WAL underneath, must (a) keep making progress, (b) never
//! panic, and (c) recover to exactly the state it served.

use afforest_serve::protocol::call;
use afforest_serve::wal::{self, recover};
use afforest_serve::{BatchPolicy, FaultPlan, Request, Response, ServeConfig, ServeStats, Server};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afforest-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream
}

/// Torn frames and stretched applies, with the WAL (and its compaction)
/// underneath: clients see broken connections, not broken answers, and
/// the recovered state matches the served state exactly.
#[test]
fn torn_frames_and_slow_applies_recover_equivalently() {
    let n = 256usize;
    let dir = tempdir("equiv");
    let seed_edges: Vec<(u32, u32)> = (1..64u32).map(|v| (v - 1, v)).collect();
    let faults = Arc::new(
        FaultPlan::parse("seed=21,torn_frame=0.08,apply_delay_ms=1,apply_delay_prob=0.3")
            .expect("fault spec"),
    );
    // snapshot_every=4 makes compaction fire mid-run, so recovery starts
    // from a snapshot plus a log tail — the realistic shape.
    let config = ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 8,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        })
        .read_deadline(Some(Duration::from_secs(10)))
        .wal_root(Some(dir.clone()))
        .wal_snapshot_every(4)
        .faults(Some(Arc::clone(&faults)))
        .build()
        .expect("valid config");
    let mut server = Server::new(n, &seed_edges, config).expect("start server");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mut admitted = 0u32;
    let mut broken_connections = 0u32;
    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 4).expect("serve_tcp"));

        let mut stream = connect(addr);
        for i in 0..240u32 {
            let req = if i % 3 == 0 {
                // Deterministic edges so the test knows what it sent.
                let u = (i * 7) % n as u32;
                let v = (i * 13 + 1) % n as u32;
                Request::InsertEdges(vec![(u, v)])
            } else {
                Request::Connected(i % n as u32, (i / 2) % n as u32)
            };
            match call(&mut stream, &req) {
                Ok(Response::Accepted { .. }) => admitted += 1,
                Ok(Response::Connected(_)) => {}
                Ok(other) => panic!("unexpected answer {other:?}"),
                // A torn frame kills the connection, exactly like a
                // crashed server: reconnect and move on. The request's
                // fate is unknown (it may have been admitted).
                Err(_) => {
                    broken_connections += 1;
                    stream = connect(addr);
                }
            }
        }
        server.request_shutdown();
    });

    // The chaos actually happened.
    let injected = faults.injected();
    assert!(
        injected.torn_frames > 0,
        "no torn frames at p=0.08 over 240 calls"
    );
    assert!(injected.apply_delays > 0, "no apply delays at p=0.3");
    assert!(broken_connections > 0);
    assert!(admitted > 0, "no insert survived the chaos");

    // Drain and stop the writer so the WAL is complete, then recover:
    // append-before-apply means every applied batch is in the log, so the
    // recovered component structure must match the served one exactly.
    server.join_writer();
    let expected = match server.handle(&Request::NumComponents) {
        Response::NumComponents(c) => c,
        other => panic!("expected NumComponents, got {other:?}"),
    };
    let rec = recover(&wal::default_wal_dir(&dir), &seed_edges).expect("recover");
    assert!(
        rec.from_snapshot,
        "compaction never fired (snapshot_every=4)"
    );
    assert!(!rec.truncated, "no WAL write faults were injected");
    assert_eq!(rec.cc.num_components() as u64, expected);
    assert!(ServeStats::get(&server.stats().wal_errors) == 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Killed accept workers shrink the pool but never take the service down:
/// some connections die, later ones still get answers, and an in-process
/// shutdown still works.
#[test]
fn killed_workers_dont_take_down_the_pool() {
    let faults = Arc::new(FaultPlan::parse("seed=9,kill_worker=0.35").expect("fault spec"));
    let config = ServeConfig::builder()
        .faults(Some(Arc::clone(&faults)))
        .build()
        .expect("valid config");
    let server = Server::new(32, &[(0, 1), (1, 2)], config).expect("start server");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    let mut answered = 0u32;
    let mut died = 0u32;
    std::thread::scope(|s| {
        // More workers than connections: even if every single accept drew a
        // kill, the pool could not be exhausted, so every death is observed
        // as exactly one dropped connection (no timeouts masquerading).
        s.spawn(|| server.serve_tcp(listener, 16).expect("serve_tcp"));

        // One request per fresh connection: each either hits a live worker
        // or a worker that dies on arrival (the connection drops).
        for _ in 0..12 {
            let mut stream = connect(addr);
            match call(&mut stream, &Request::Connected(0, 2)) {
                Ok(resp) => {
                    assert_eq!(resp, Response::Connected(true));
                    answered += 1;
                }
                Err(_) => died += 1,
            }
        }
        server.request_shutdown();
    });

    assert!(
        faults.injected().worker_kills > 0,
        "no workers killed at p=0.35"
    );
    assert_eq!(died, faults.injected().worker_kills as u32);
    assert!(answered > 0, "pool died entirely");
    assert_eq!(answered + died, 12);
}
