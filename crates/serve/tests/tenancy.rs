//! Multi-tenancy integration tests: the wire-protocol versioning
//! property, cross-tenant isolation, and crash recovery over a
//! multi-tenant WAL tree with a torn log.

use afforest_serve::protocol::{
    decode_request_any, decode_response, decode_response_v2, encode_request, encode_request_v2,
    encode_response, encode_response_v2, StatsReport, WireVersion,
};
use afforest_serve::wal::{self, recover, LOG_FILE};
use afforest_serve::{BatchPolicy, Request, Response, ServeConfig, Server, TenantId};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Property: both wire versions round-trip losslessly
// ---------------------------------------------------------------------------

/// Every byte a tenant name may contain.
const TENANT_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";

fn arb_tenant() -> impl Strategy<Value = TenantId> {
    proptest::collection::vec(0usize..TENANT_CHARSET.len(), 1..=64).prop_map(|picks| {
        let name: String = picks.iter().map(|&i| TENANT_CHARSET[i] as char).collect();
        TenantId::new(&name).expect("charset-built name is valid")
    })
}

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..TENANT_CHARSET.len(), 0..24)
        .prop_map(|picks| picks.iter().map(|&i| TENANT_CHARSET[i] as char).collect())
}

fn arb_request() -> impl Strategy<Value = Request> {
    let edges = proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16);
    (
        0usize..11,
        any::<u32>(),
        any::<u32>(),
        edges,
        arb_tenant(),
        any::<u64>(),
    )
        .prop_map(|(sel, u, v, edges, name, vertices)| match sel {
            0 => Request::Connected(u, v),
            1 => Request::Component(u),
            2 => Request::ComponentSize(u),
            3 => Request::NumComponents,
            4 => Request::InsertEdges(edges),
            5 => Request::Stats,
            6 => Request::Metrics,
            7 => Request::Shutdown,
            8 => Request::CreateTenant { name, vertices },
            9 => Request::DropTenant { name },
            _ => Request::ListTenants,
        })
}

fn arb_stats() -> impl Strategy<Value = StatsReport> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
    )
        .prop_map(|((a, b, c, d, e), (f, g, h, i, j))| StatsReport {
            epoch: a,
            vertices: b,
            num_components: c,
            edges_ingested: d,
            epochs_published: e,
            queue_depth: f,
            requests_shed: g,
            wal_records: h,
            faults_injected: i,
            tenants: j,
        })
}

fn arb_response() -> impl Strategy<Value = Response> {
    let tenants = proptest::collection::vec(arb_string(), 0..8);
    (
        (0usize..13, any::<bool>(), any::<u32>(), any::<u64>()),
        (arb_stats(), arb_string(), tenants),
    )
        .prop_map(|((sel, b, small, big), (stats, text, tenants))| match sel {
            0 => Response::Connected(b),
            1 => Response::Component(small),
            2 => Response::ComponentSize(big),
            3 => Response::NumComponents(big),
            4 => Response::Accepted { edges: small },
            5 => Response::Stats(stats),
            6 => Response::Metrics(text),
            7 => Response::Bye,
            8 => Response::Overloaded { queue_depth: big },
            9 => Response::Err(text),
            10 => Response::TenantCreated,
            11 => Response::TenantDropped,
            _ => Response::Tenants(tenants),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A bare v1 payload decodes as itself, versioned V1, routed to the
    /// `default` tenant.
    #[test]
    fn v1_request_frames_round_trip(req in arb_request()) {
        let payload = encode_request(&req);
        let (version, tenant, decoded) =
            decode_request_any(&payload).expect("v1 payload decodes");
        prop_assert_eq!(version, WireVersion::V1);
        prop_assert!(tenant.is_default());
        prop_assert_eq!(decoded, req);
    }

    /// A tenant envelope decodes back to exactly the tenant and request
    /// that went in, for every tenant name and every request shape.
    #[test]
    fn v2_request_frames_round_trip(tenant in arb_tenant(), req in arb_request()) {
        let payload = encode_request_v2(&tenant, &req);
        let (version, routed, decoded) =
            decode_request_any(&payload).expect("v2 payload decodes");
        prop_assert_eq!(version, WireVersion::V2);
        prop_assert_eq!(routed, tenant);
        prop_assert_eq!(decoded, req);
    }

    /// v2 responses are fully lossless; v1 responses are lossless except
    /// for the one field the frozen v1 `Stats` layout cannot carry
    /// (`tenants`, which v1 decoders read as 0).
    #[test]
    fn response_frames_round_trip_in_both_versions(resp in arb_response()) {
        let v2 = decode_response_v2(&encode_response_v2(&resp)).expect("v2 decodes");
        prop_assert_eq!(v2, resp.clone());

        let v1 = decode_response(&encode_response(&resp)).expect("v1 decodes");
        let expected = match resp {
            Response::Stats(s) => Response::Stats(StatsReport { tenants: 0, ..s }),
            other => other,
        };
        prop_assert_eq!(v1, expected);
    }
}

// ---------------------------------------------------------------------------
// Isolation and recovery scenarios
// ---------------------------------------------------------------------------

fn tempdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afforest-tenancy-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_config() -> ServeConfig {
    ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 1,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        })
        .build()
        .expect("valid config")
}

/// Writes to one tenant are invisible to every other tenant: snapshots,
/// answers, and per-tenant statistics all stay apart.
#[test]
fn writes_to_one_tenant_are_invisible_to_others() {
    let server = Server::new(8, &[(0, 1)], quick_config()).expect("start server");
    let alpha = TenantId::new("alpha").unwrap();
    let beta = TenantId::new("beta").unwrap();
    for name in [&alpha, &beta] {
        assert_eq!(
            server.handle(&Request::CreateTenant {
                name: name.clone(),
                vertices: 10,
            }),
            Response::TenantCreated
        );
    }
    let default_components = match server.handle(&Request::NumComponents) {
        Response::NumComponents(c) => c,
        other => panic!("expected NumComponents, got {other:?}"),
    };

    // Connect everything in alpha; beta and default must not move.
    let edges: Vec<(u32, u32)> = (1..10).map(|v| (v - 1, v)).collect();
    assert_eq!(
        server.handle_for(&alpha, &Request::InsertEdges(edges)),
        Response::Accepted { edges: 9 }
    );
    assert!(server.flush(Duration::from_secs(10)));

    assert_eq!(
        server.handle_for(&alpha, &Request::Connected(0, 9)),
        Response::Connected(true)
    );
    assert_eq!(
        server.handle_for(&beta, &Request::Connected(0, 9)),
        Response::Connected(false)
    );
    assert_eq!(
        server.handle(&Request::NumComponents),
        Response::NumComponents(default_components)
    );

    // Per-tenant statistics diverge the same way.
    let stats_for = |tenant: &TenantId| match server.handle_for(tenant, &Request::Stats) {
        Response::Stats(s) => s,
        other => panic!("expected Stats, got {other:?}"),
    };
    assert_eq!(stats_for(&alpha).edges_ingested, 9);
    assert_eq!(stats_for(&beta).edges_ingested, 0);
    assert_eq!(stats_for(&alpha).vertices, 10);
    assert_eq!(stats_for(&beta).num_components, 10);

    // An unknown tenant is a typed error, not a panic or a misroute.
    let ghost = TenantId::new("ghost").unwrap();
    match server.handle_for(&ghost, &Request::NumComponents) {
        Response::Err(msg) => assert!(msg.contains("no such tenant"), "{msg}"),
        other => panic!("expected Err, got {other:?}"),
    }
}

/// Crash-recovery smoke over a two-tenant WAL tree where one log is torn
/// mid-record: the intact tenant recovers exactly, the torn tenant
/// recovers a prefix, and both keep serving (and accepting writes).
#[test]
fn torn_tenant_wal_recovers_to_a_prefix_and_keeps_serving() {
    let dir = tempdir("torn");
    let n = 64usize;
    let seed: Vec<(u32, u32)> = (1..16u32).map(|v| (v - 1, v)).collect();
    let config = ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 1,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        })
        .wal_root(Some(dir.clone()))
        .build()
        .expect("valid config");
    let acme = TenantId::new("acme").unwrap();

    // First life: a default tenant plus `acme`, both logging.
    {
        let server = Server::new(n, &seed, config.clone()).expect("start server");
        assert_eq!(
            server.handle(&Request::CreateTenant {
                name: acme.clone(),
                vertices: n as u64,
            }),
            Response::TenantCreated
        );
        // The writer coalesces everything pending into one record, so
        // flush between inserts: one WAL record per edge, and the torn
        // byte below can cost at most the final record.
        for i in 0..8u32 {
            assert_eq!(
                server.handle_for(&acme, &Request::InsertEdges(vec![(i, i + 1)])),
                Response::Accepted { edges: 1 }
            );
            assert!(server.flush(Duration::from_secs(10)));
        }
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(20, 30)])),
            Response::Accepted { edges: 1 }
        );
        assert!(server.flush(Duration::from_secs(10)));
    } // drop joins the writers: both logs are complete on disk

    // The crash: acme's log loses its final byte, tearing the last record.
    let acme_log = dir.join(acme.as_str()).join(LOG_FILE);
    let bytes = std::fs::read(&acme_log).expect("read acme log");
    std::fs::write(&acme_log, &bytes[..bytes.len() - 1]).expect("tear acme log");

    // Second life: recover the default tenant explicitly; registered
    // tenants come back automatically from the WAL tree.
    let rec = recover(&wal::default_wal_dir(&dir), &seed).expect("recover default");
    assert!(!rec.truncated, "default's log was not torn");
    let server = Server::from_cc(rec.cc, config).expect("restart server");
    assert_eq!(server.tenants(), vec!["acme".to_string(), "default".into()]);

    // The intact tenant is exact.
    assert_eq!(
        server.handle(&Request::Connected(20, 30)),
        Response::Connected(true)
    );

    // The torn tenant lost at most the final single-edge record: a clean
    // prefix of the path survived, nothing else appeared.
    let components = match server.handle_for(&acme, &Request::NumComponents) {
        Response::NumComponents(c) => c,
        other => panic!("expected NumComponents, got {other:?}"),
    };
    assert!(
        (n as u64 - 8..n as u64).contains(&components),
        "expected a prefix of 8 path edges, got {components} components"
    );
    assert_eq!(
        server.handle_for(&acme, &Request::Connected(0, 1)),
        Response::Connected(true)
    );

    // Both tenants keep accepting writes after recovery.
    assert_eq!(
        server.handle_for(&acme, &Request::InsertEdges(vec![(40, 41)])),
        Response::Accepted { edges: 1 }
    );
    assert!(server.flush(Duration::from_secs(10)));
    assert_eq!(
        server.handle_for(&acme, &Request::Connected(40, 41)),
        Response::Connected(true)
    );

    std::fs::remove_dir_all(&dir).ok();
}
