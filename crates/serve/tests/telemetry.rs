//! Live-telemetry integration: a real TCP server, a known request mix,
//! and the exposition read back both through the wire protocol
//! (`Request::Metrics`) and the HTTP sidecar.
//!
//! One test function on purpose: the metric registry is process-global
//! and cumulative, so a single scenario owns this process and asserts
//! exact deltas without racing a sibling test.

use afforest_obs::registry;
use afforest_serve::http::{http_get, MetricsHttp};
use afforest_serve::protocol::call;
use afforest_serve::{Request, Response, ServeConfig, Server};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

#[test]
fn live_server_exposes_request_and_epoch_metrics() {
    let n = 100usize;
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    let config = ServeConfig::builder().build().expect("valid config");
    let server = Server::new(n, &edges, config).expect("start server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let http = MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
    let http_addr = http.local_addr().to_string();

    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 2).unwrap());
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

        // A known mix: 3 connectivity reads, 1 component, 1 insert.
        for _ in 0..3 {
            assert_eq!(
                call(&mut c, &Request::Connected(0, 99)).unwrap(),
                Response::Connected(true)
            );
        }
        assert_eq!(
            call(&mut c, &Request::Component(5)).unwrap(),
            Response::Component(0)
        );
        assert_eq!(
            call(&mut c, &Request::InsertEdges(vec![(0, 50)])).unwrap(),
            Response::Accepted { edges: 1 }
        );
        assert!(server.flush(Duration::from_secs(10)));

        // First scrape: through the wire protocol.
        let text = match call(&mut c, &Request::Metrics).unwrap() {
            Response::Metrics(text) => text,
            other => panic!("expected metrics, got {other:?}"),
        };
        let scrape = registry::parse_exposition(&text).expect("valid exposition");
        assert_eq!(scrape.value("afforest_requests_connected_total"), Some(3));
        assert_eq!(scrape.value("afforest_requests_component_total"), Some(1));
        assert_eq!(
            scrape.value("afforest_requests_insert_edges_total"),
            Some(1)
        );
        assert_eq!(scrape.value("afforest_edges_ingested_total"), Some(1));
        assert!(scrape.value("afforest_epochs_published_total") >= Some(1));
        assert!(scrape.value("afforest_epoch") >= Some(1));
        assert_eq!(scrape.value("afforest_queue_depth"), Some(0));
        assert!(scrape.value("afforest_connections_total") >= Some(1));
        assert!(scrape.value("afforest_bytes_read_total") > Some(0));
        assert!(scrape.value("afforest_bytes_written_total") > Some(0));
        // Per-op latency histograms carry the right sample counts.
        let lat = scrape
            .histogram("afforest_request_latency_connected_ns")
            .expect("connected latency histogram");
        assert_eq!(lat.count, 3);
        assert!(lat.sum_ns > 0);
        let lag = scrape
            .histogram("afforest_epoch_publish_lag_ns")
            .expect("publish lag histogram");
        assert!(lag.count >= 1);

        // Second scrape: through the HTTP sidecar, after more traffic.
        assert_eq!(
            call(&mut c, &Request::Connected(1, 2)).unwrap(),
            Response::Connected(true)
        );
        let (status, body) = http_get(&http_addr, "/metrics").expect("scrape sidecar");
        assert_eq!(status, 200);
        let second = registry::parse_exposition(&body).expect("sidecar exposition parses");
        // Counters are monotonic between scrapes, and the extra read
        // (plus the Metrics request itself) moved the needles.
        assert_eq!(scrape.value("afforest_requests_connected_total"), Some(3));
        assert_eq!(second.value("afforest_requests_connected_total"), Some(4));
        assert_eq!(second.value("afforest_requests_metrics_total"), Some(1));
        for (name, v) in &scrape.values {
            if name.ends_with("_total") {
                assert!(
                    second.value(name) >= Some(*v),
                    "counter {name} went backwards"
                );
            }
        }

        assert_eq!(call(&mut c, &Request::Shutdown).unwrap(), Response::Bye);
    });
}
