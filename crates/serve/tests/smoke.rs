//! End-to-end loopback smoke test: a real TCP server on an ephemeral
//! port, driven by real clients through the wire protocol.

use afforest_serve::protocol::write_frame;
use afforest_serve::{Client, ClientError, LoadgenConfig, Request, Response, ServeConfig, Server};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Starts a path-graph server on an ephemeral loopback port and returns
/// (server, address). The caller drives `serve_tcp` from a scoped thread.
fn bind() -> (Server, TcpListener, std::net::SocketAddr) {
    let n = 200usize;
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (v - 1, v)).collect();
    let config = ServeConfig::builder().build().expect("valid config");
    let server = Server::new(n, &edges, config).expect("start server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().unwrap();
    (server, listener, addr)
}

fn connect(addr: std::net::SocketAddr) -> Client {
    Client::connect(addr)
        .expect("connect")
        .with_read_timeout(Some(Duration::from_secs(10)))
        .expect("set read timeout")
}

#[test]
fn tcp_roundtrip_read_write_shutdown() {
    let (server, listener, addr) = bind();
    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 4).unwrap());

        let mut c = connect(addr);
        assert!(c.connected(0, 199).unwrap());
        assert_eq!(c.num_components().unwrap(), 1);
        assert_eq!(c.insert_edges(&[(0, 0)]).unwrap(), 1);
        assert_eq!(c.stats().unwrap().vertices, 200);
        // Out-of-range query: a typed Err response, connection stays up.
        match c.component(10_000) {
            Err(ClientError::Server(msg)) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected server error, got {other:?}"),
        }
        assert!(c.connected(5, 6).unwrap());
        c.shutdown().unwrap();
    });
    assert!(server.shutdown_requested());
}

#[test]
fn tcp_inserts_become_visible_across_connections() {
    let (server, listener, addr) = bind();
    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 4).unwrap());

        let mut writer = connect(addr);
        assert!(writer.connected(0, 199).unwrap());
        // The path is one component; a self-contained second component
        // cannot exist, so insert nothing new — instead check epochs: a
        // fresh connection sees the same snapshot.
        let mut reader = connect(addr);
        assert_eq!(reader.num_components().unwrap(), 1);
        writer.shutdown().unwrap();
    });
}

#[test]
fn tcp_malformed_frame_gets_err_response() {
    let (server, listener, addr) = bind();
    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 2).unwrap());

        // A well-framed but bogus payload (unknown opcode): typed Err,
        // connection survives. The typed client cannot emit a malformed
        // frame, so this test speaks raw wire bytes on purpose.
        let mut c = TcpStream::connect(addr).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write_frame(&mut c, &[0x5A, 1, 2, 3]).unwrap();
        let payload = afforest_serve::protocol::read_frame(&mut c)
            .unwrap()
            .expect("response frame");
        match afforest_serve::protocol::decode_response(&payload).unwrap() {
            Response::Err(msg) => assert!(msg.contains("unknown opcode"), "{msg}"),
            other => panic!("expected Err, got {other:?}"),
        }
        // The same connection still answers real requests afterwards.
        assert_eq!(
            afforest_serve::protocol::call(&mut c, &Request::Connected(0, 1)).unwrap(),
            Response::Connected(true)
        );

        let mut closer = connect(addr);
        closer.shutdown().unwrap();
    });
    // The malformed frame was counted.
    assert!(afforest_serve::ServeStats::get(&server.stats().protocol_errors) >= 1);
}

#[test]
fn tcp_loadgen_mixed_workload_zero_errors() {
    let (server, listener, addr) = bind();
    std::thread::scope(|s| {
        s.spawn(|| server.serve_tcp(listener, 6).unwrap());

        let cfg = LoadgenConfig {
            connections: 3,
            requests: 1_500,
            read_pct: 90,
            insert_batch: 16,
            seed: 11,
            ..LoadgenConfig::default()
        };
        let report =
            afforest_serve::loadgen::run(&cfg, |_| Client::connect(addr)).expect("loadgen run");
        assert_eq!(report.requests, 1_500);
        assert_eq!(report.errors, 0, "{}", report.render());
        assert!(report.latency.count == 1_500);

        let mut closer = connect(addr);
        closer.shutdown().unwrap();
    });
    // Writes flowed through the writer thread to published epochs.
    assert!(server.flush(Duration::from_secs(10)));
    let stats = server.stats_report();
    assert!(stats.edges_ingested > 0);
    assert!(stats.epochs_published > 0);
}
