//! Property tests for WAL recovery: arbitrary corruption — byte flips,
//! truncation, or both — must never panic `recover`, and whatever state
//! comes back must equal replaying a *prefix* of the committed batches.
//!
//! This is the durability analogue of the protocol's total-decoding
//! property: the log is an untrusted input after a crash, and recovery is
//! a total function over its byte contents.

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::wal::{recover, Wal, LOG_FILE};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Bytes before the first record (magic + vertex count + header checksum).
const HEADER_LEN: usize = 24;

static DIR_SEQ: Mutex<u64> = Mutex::new(0);

/// A unique scratch directory per proptest case (cases run concurrently
/// across test threads).
fn scratch_dir() -> PathBuf {
    let id = {
        let mut seq = DIR_SEQ.lock().expect("dir counter");
        *seq += 1;
        *seq
    };
    std::env::temp_dir().join(format!("afforest-walprop-{}-{id}", std::process::id()))
}

fn arb_batches(n: usize) -> impl Strategy<Value = Vec<Vec<(Node, Node)>>> {
    let edge = (0..n as Node, 0..n as Node);
    proptest::collection::vec(proptest::collection::vec(edge, 0..12), 1..10)
}

/// Writes `batches` into a fresh WAL at `dir` and returns the log bytes.
/// Every record is at least 17 bytes (frame + tag + count), so with one or
/// more batches the body is never empty.
fn write_wal(dir: &Path, n: usize, batches: &[Vec<(Node, Node)>]) -> Vec<u8> {
    let mut wal = Wal::open(dir, n, 0).expect("open wal");
    for b in batches {
        wal.append(b).expect("append");
    }
    drop(wal);
    std::fs::read(dir.join(LOG_FILE)).expect("read log back")
}

/// The ground truth for "replayed the first k batches".
fn oracle_labels(
    n: usize,
    batches: &[Vec<(Node, Node)>],
    k: usize,
) -> afforest_core::ComponentLabels {
    let mut cc = IncrementalCc::new(n);
    for b in &batches[..k] {
        cc.insert_batch(b);
    }
    cc.labels()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flip arbitrary bytes after the header: recovery succeeds, never
    /// panics, and yields exactly the state of some clean prefix.
    #[test]
    fn byte_flips_recover_to_a_prefix(
        (n, batches) in (4usize..64).prop_flat_map(|n| (Just(n), arb_batches(n))),
        flips in proptest::collection::vec((any::<usize>(), 1u8..=255), 1..6),
    ) {
        let dir = scratch_dir();
        let bytes = write_wal(&dir, n, &batches);
        let body_len = bytes.len() - HEADER_LEN;

        let mut corrupted = bytes.clone();
        for (at, mask) in &flips {
            corrupted[HEADER_LEN + at % body_len] ^= mask;
        }
        std::fs::write(dir.join(LOG_FILE), &corrupted).unwrap();

        let mut rec = recover(&dir, &[]).expect("recover over flipped bytes");
        let k = rec.batches as usize;
        prop_assert!(k <= batches.len());
        prop_assert!(rec.cc.labels().equivalent(&oracle_labels(n, &batches, k)),
            "recovered {}/{} batches but state does not match that prefix", k, batches.len());

        // Recovery truncated the bad tail: a second recovery is clean and
        // idempotent.
        let again = recover(&dir, &[]).expect("second recover");
        prop_assert!(!again.truncated);
        prop_assert_eq!(again.batches as usize, k);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncate the file anywhere in the body: same contract, and a cut
    /// can only lose the tail, never a middle record.
    #[test]
    fn truncation_recovers_to_a_prefix(
        (n, batches) in (4usize..64).prop_flat_map(|n| (Just(n), arb_batches(n))),
        cut in any::<usize>(),
    ) {
        let dir = scratch_dir();
        let bytes = write_wal(&dir, n, &batches);
        let keep = HEADER_LEN + cut % (bytes.len() - HEADER_LEN + 1);
        std::fs::write(dir.join(LOG_FILE), &bytes[..keep]).unwrap();

        let mut rec = recover(&dir, &[]).expect("recover over truncated log");
        let k = rec.batches as usize;
        prop_assert!(k <= batches.len());
        prop_assert!(rec.cc.labels().equivalent(&oracle_labels(n, &batches, k)));
        if keep == bytes.len() {
            // Nothing was actually cut: full recovery, clean EOF.
            prop_assert_eq!(k, batches.len());
            prop_assert!(!rec.truncated);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corrupt the header itself (or cut inside it): a typed error or a
    /// clean recovery — never a panic.
    #[test]
    fn header_corruption_is_total(
        (n, batches) in (4usize..32).prop_flat_map(|n| (Just(n), arb_batches(n))),
        at in 0usize..HEADER_LEN,
        mask in 1u8..=255,
        truncate_instead in any::<bool>(),
    ) {
        let dir = scratch_dir();
        let bytes = write_wal(&dir, n, &batches);
        let corrupted = if truncate_instead {
            bytes[..at].to_vec()
        } else {
            let mut c = bytes.clone();
            c[at] ^= mask;
            c
        };
        std::fs::write(dir.join(LOG_FILE), &corrupted).unwrap();
        // Ok or Err both acceptable; the property is totality.
        let _ = recover(&dir, &[]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
