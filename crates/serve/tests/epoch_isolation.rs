//! The acceptance property: reads never block on the writer.
//!
//! The writer is pinned mid-apply with `BatchPolicy::apply_delay`; while
//! it is provably inside the apply window (`ServeStats::applying`),
//! `Connected` queries must keep answering — from the *old* epoch — and
//! answer fast.

use afforest_serve::{BatchPolicy, Request, Response, ServeConfig, ServeStats, Server};
use std::time::{Duration, Instant};

#[test]
fn connected_succeeds_on_old_epoch_while_insert_is_mid_apply() {
    // Two disjoint halves: 0..500 is a path, 500..1000 is a path.
    let n = 1_000usize;
    let mut edges: Vec<(u32, u32)> = (1..500u32).map(|v| (v - 1, v)).collect();
    edges.extend((501..1_000u32).map(|v| (v - 1, v)));
    let hold = Duration::from_millis(300);
    let config = ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 1,
            max_delay: Duration::from_millis(1),
            // Pin the writer inside the apply window long enough to probe.
            apply_delay: Some(hold),
        })
        .build()
        .expect("valid config");
    let server = Server::new(n, &edges, config).expect("start server");
    let epoch0 = server.snapshot().epoch;
    assert_eq!(
        server.handle(&Request::Connected(0, 999)),
        Response::Connected(false)
    );

    // Kick off the bridging insert; the writer picks it up and stalls
    // mid-apply for `hold`.
    assert_eq!(
        server.handle(&Request::InsertEdges(vec![(499, 500)])),
        Response::Accepted { edges: 1 }
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while !server.stats().is_applying() {
        assert!(Instant::now() < deadline, "writer never entered apply");
        std::thread::sleep(Duration::from_millis(1));
    }

    // The writer is mid-apply. Reads must (a) not block, (b) answer from
    // the old epoch.
    let mut probes = 0u32;
    while server.stats().is_applying() {
        let t = Instant::now();
        let resp = server.handle(&Request::Connected(0, 999));
        let took = t.elapsed();
        assert_eq!(resp, Response::Connected(false), "old epoch must answer");
        assert_eq!(server.snapshot().epoch, epoch0, "epoch flipped mid-apply");
        // "Fast" = a tiny fraction of the 300 ms apply window: if reads
        // waited on the writer, a probe would take ~the whole window.
        assert!(
            took < hold / 10,
            "read took {took:?} while writer held the apply for {hold:?}"
        );
        probes += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        probes >= 3,
        "apply window too short to demonstrate isolation ({probes} probes)"
    );

    // After publish, the new epoch answers true.
    assert!(server.flush(Duration::from_secs(10)));
    assert_eq!(
        server.handle(&Request::Connected(0, 999)),
        Response::Connected(true)
    );
    assert!(server.snapshot().epoch > epoch0);
    assert_eq!(ServeStats::get(&server.stats().edges_ingested), 1);
}

#[test]
fn snapshot_arc_taken_before_publish_stays_valid_after() {
    let config = ServeConfig::builder()
        .policy(BatchPolicy {
            max_edges: 1,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        })
        .build()
        .expect("valid config");
    let server = Server::new(4, &[(0, 1)], config).expect("start server");
    let old = server.snapshot();
    assert_eq!(old.connected(1, 2), Some(false));

    server.handle(&Request::InsertEdges(vec![(1, 2)]));
    assert!(server.flush(Duration::from_secs(10)));

    // A reader that captured the old Arc keeps a consistent view even
    // though the store moved on.
    assert_eq!(old.connected(1, 2), Some(false));
    assert_eq!(server.snapshot().connected(1, 2), Some(true));
}
