//! Traced-envelope wire properties: the trace block round-trips
//! exactly when sampled, vanishes when not, and never disturbs v1 or
//! contextless-v2 interop. Plus the `Traces` response record format.

use afforest_obs::reqtrace::{Span, TraceCtx};
use afforest_serve::protocol::{
    decode_request_traced, decode_response, encode_request, encode_request_traced,
    encode_request_v2, encode_response,
};
use afforest_serve::{Request, Response, TenantId, WireVersion};
use proptest::prelude::*;

/// Every byte a tenant name may contain.
const TENANT_CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";

fn arb_tenant() -> impl Strategy<Value = TenantId> {
    proptest::collection::vec(0usize..TENANT_CHARSET.len(), 1..=64).prop_map(|picks| {
        let name: String = picks.iter().map(|&i| TENANT_CHARSET[i] as char).collect();
        TenantId::new(&name).expect("charset-built name is valid")
    })
}

fn arb_request() -> impl Strategy<Value = Request> {
    let edges = proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16);
    (
        0usize..12,
        any::<u32>(),
        any::<u32>(),
        edges,
        arb_tenant(),
        any::<u64>(),
    )
        .prop_map(|(sel, u, v, edges, name, vertices)| match sel {
            0 => Request::Connected(u, v),
            1 => Request::Component(u),
            2 => Request::ComponentSize(u),
            3 => Request::NumComponents,
            4 => Request::InsertEdges(edges),
            5 => Request::Stats,
            6 => Request::Metrics,
            7 => Request::Shutdown,
            8 => Request::CreateTenant { name, vertices },
            9 => Request::DropTenant { name },
            10 => Request::DumpTraces,
            _ => Request::ListTenants,
        })
}

/// A sampled context: trace ids are client-minted nonzero u64s, and a
/// zero id *means* unsampled, so the sampled strategy excludes it.
fn arb_sampled_ctx() -> impl Strategy<Value = TraceCtx> {
    (1u64..=u64::MAX, any::<u64>()).prop_map(|(trace_id, parent_span)| TraceCtx {
        trace_id,
        parent_span,
    })
}

fn arb_node_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..TENANT_CHARSET.len(), 0..32)
        .prop_map(|picks| picks.iter().map(|&i| TENANT_CHARSET[i] as char).collect())
}

fn arb_span() -> impl Strategy<Value = Span> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u16>()),
        (any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((trace_id, span_id, parent_span, stage), (arg, start_us, dur_ns))| Span {
                trace_id,
                span_id,
                parent_span,
                stage,
                arg,
                start_us,
                dur_ns,
            },
        )
}

proptest! {
    /// Sampled contexts survive the envelope byte-exactly, alongside
    /// the tenant and request.
    #[test]
    fn traced_envelope_round_trips(
        tenant in arb_tenant(),
        ctx in arb_sampled_ctx(),
        req in arb_request(),
    ) {
        let payload = encode_request_traced(&tenant, ctx, &req);
        let (ver, got_tenant, got_ctx, got_req) =
            decode_request_traced(&payload).expect("traced payload decodes");
        prop_assert_eq!(ver, WireVersion::V2);
        prop_assert_eq!(got_tenant, tenant);
        prop_assert_eq!(got_ctx, ctx);
        prop_assert_eq!(got_req, req);
    }

    /// An unsampled context is *omitted*, not encoded-as-zero: the
    /// payload is byte-identical to the contextless v2 encoding, and
    /// decoding yields `TraceCtx::NONE`.
    #[test]
    fn unsampled_envelope_is_contextless_v2(tenant in arb_tenant(), req in arb_request()) {
        let traced = encode_request_traced(&tenant, TraceCtx::NONE, &req);
        let plain = encode_request_v2(&tenant, &req);
        prop_assert_eq!(&traced, &plain);
        let (ver, got_tenant, got_ctx, got_req) =
            decode_request_traced(&traced).expect("contextless payload decodes");
        prop_assert_eq!(ver, WireVersion::V2);
        prop_assert_eq!(got_tenant, tenant);
        prop_assert_eq!(got_ctx, TraceCtx::NONE);
        prop_assert_eq!(got_req, req);
    }

    /// v1 interop: bare payloads from pre-envelope clients decode to
    /// the default tenant with no trace context, request intact.
    #[test]
    fn v1_payloads_decode_with_no_context(req in arb_request()) {
        let payload = encode_request(&req);
        let (ver, tenant, ctx, got_req) =
            decode_request_traced(&payload).expect("v1 payload decodes");
        prop_assert_eq!(ver, WireVersion::V1);
        prop_assert_eq!(tenant, TenantId::default_tenant());
        prop_assert_eq!(ctx, TraceCtx::NONE);
        prop_assert_eq!(got_req, req);
    }

    /// `Traces` responses round-trip their node name and fixed-width
    /// span records.
    #[test]
    fn traces_response_round_trips(
        node in arb_node_name(),
        spans in proptest::collection::vec(arb_span(), 0..48),
    ) {
        let resp = Response::Traces {
            node: node.clone(),
            spans: spans.clone(),
        };
        let payload = encode_response(&resp);
        let got = decode_response(&payload).expect("traces payload decodes");
        prop_assert_eq!(got, resp);
    }
}

/// Node names longer than the one-byte length prefix allows are
/// truncated at encode time, never rejected or torn mid-frame.
#[test]
fn traces_node_name_truncates_at_255_bytes() {
    let long = "n".repeat(300);
    let resp = Response::Traces {
        node: long.clone(),
        spans: vec![],
    };
    let payload = encode_response(&resp);
    match decode_response(&payload).expect("truncated-node payload decodes") {
        Response::Traces { node, spans } => {
            assert_eq!(node, long[..255]);
            assert!(spans.is_empty());
        }
        other => panic!("expected Traces, got {other:?}"),
    }
}
