//! `afforest-serve` — a multi-tenant epoch-snapshot connectivity query
//! service.
//!
//! The ROADMAP's north star is serving connectivity queries under heavy
//! traffic, not just solving them offline. This crate packages the
//! incremental structure (`afforest_core::IncrementalCc`, Theorem 1's
//! append-only parent array) as a running service:
//!
//! - [`protocol`] — length-prefixed binary frames in two wire versions
//!   (v2 adds a tenant envelope; v1 routes to `default`); every
//!   malformed input is a typed error, never a panic.
//! - [`tenant`] — validated tenant identifiers.
//! - [`config`] — the validating [`ServeConfig`] builder.
//! - [`snapshot`] — immutable fully-compressed label epochs behind an
//!   `Arc` swap; the read path is two array loads.
//! - [`ingest`] — size/deadline-coalesced insert batches (the ConnectIt
//!   batch-dynamic pattern) feeding a single writer per tenant.
//! - `engine` — one engine per tenant (snapshot store, ingest queue,
//!   writer thread, WAL) plus the registry that routes to them and the
//!   process-wide admission backstop. The [`Engine`] type itself is
//!   re-exported so embedders (the shard router) can run engines
//!   without a TCP front-end via [`Engine::standalone`].
//! - [`server`] — tenant lifecycle, the transport-independent request
//!   evaluator, and a worker-pool TCP front-end over `std::net`.
//! - [`client`] — the typed protocol client: connect / per-request
//!   methods / retry with capped jittered backoff.
//! - [`loadgen`] — a mixed-read/write workload driver reporting
//!   throughput and latency percentiles.
//! - [`wal`] — a checksummed write-ahead log appended before each epoch
//!   publish (one namespace per tenant under the WAL root), with
//!   snapshot compaction and truncate-at-first-bad-record recovery.
//! - [`faults`] — seeded deterministic chaos injection (dropped/torn WAL
//!   writes, delayed applies, torn frames, killed workers, and
//!   cluster-scope shard kill/hang/slow/partition draws) for testing
//!   the recovery, overload, and partial-failure paths.
//! - [`metrics`] — the always-on metric set (per-op request counters and
//!   latency histograms, WAL/epoch/queue gauges, `tenant="..."`-labelled
//!   per-tenant series) in the process-global `afforest_obs::registry`.
//! - [`events`] — the flight recorder vocabulary and JSON dump paths
//!   (panic hook, shutdown dump, `afforest recover --events`).
//! - [`http`] — a tiny HTTP/1.0 sidecar serving `GET /metrics` as
//!   Prometheus text exposition for scrapers and `afforest top`.
//!
//! ```
//! use afforest_serve::{Request, Response, ServeConfig, Server, TenantId};
//!
//! let server = Server::new(4, &[(0, 1)], ServeConfig::builder().build().unwrap()).unwrap();
//! assert_eq!(server.handle(&Request::Connected(0, 1)), Response::Connected(true));
//! // Tenants get isolated graphs of their own.
//! let acme = TenantId::new("acme").unwrap();
//! server.handle(&Request::CreateTenant { name: acme.clone(), vertices: 4 });
//! server.handle_for(&acme, &Request::InsertEdges(vec![(1, 2), (2, 3)]));
//! assert!(server.flush(std::time::Duration::from_secs(5)));
//! assert_eq!(server.handle_for(&acme, &Request::Connected(1, 3)), Response::Connected(true));
//! assert_eq!(server.handle(&Request::Connected(1, 3)), Response::Connected(false));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod config;
mod engine;
pub mod events;
pub mod faults;
pub mod http;
pub mod ingest;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod tenant;
pub mod wal;

pub use client::{Client, ClientError, RetryPolicy};
pub use config::{ServeConfig, ServeConfigBuilder, ServeConfigError};
pub use engine::Engine;
pub use events::{Dump, DumpEvent, EventKind};
pub use faults::{ClusterFault, FaultConfig, FaultPlan, InjectedCounts, WalFault};
pub use http::MetricsHttp;
pub use ingest::{BatchPolicy, ServeStats};
pub use loadgen::{LoadgenConfig, LoadgenReport, Transport};
pub use protocol::{FrameError, Request, Response, StatsReport, WireError, WireVersion};
pub use server::{ServeError, Server};
pub use snapshot::{Snapshot, SnapshotStore};
pub use tenant::{TenantError, TenantId, DEFAULT_TENANT, MAX_TENANT_LEN};
pub use wal::{recover, AppendOutcome, Recovery, Wal, WalError};
