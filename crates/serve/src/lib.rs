//! `afforest-serve` — an epoch-snapshot connectivity query service.
//!
//! The ROADMAP's north star is serving connectivity queries under heavy
//! traffic, not just solving them offline. This crate packages the
//! incremental structure (`afforest_core::IncrementalCc`, Theorem 1's
//! append-only parent array) as a running service:
//!
//! - [`protocol`] — length-prefixed binary frames; every malformed input
//!   is a typed error, never a panic.
//! - [`snapshot`] — immutable fully-compressed label epochs behind an
//!   `Arc` swap; the read path is two array loads.
//! - [`ingest`] — size/deadline-coalesced insert batches (the ConnectIt
//!   batch-dynamic pattern) feeding a single writer.
//! - [`server`] — the writer thread, the transport-independent request
//!   evaluator, and a worker-pool TCP front-end over `std::net`.
//! - [`loadgen`] — a mixed-read/write workload driver reporting
//!   throughput and latency percentiles.
//! - [`wal`] — a checksummed write-ahead log appended before each epoch
//!   publish, with snapshot compaction and truncate-at-first-bad-record
//!   recovery.
//! - [`faults`] — seeded deterministic chaos injection (dropped/torn WAL
//!   writes, delayed applies, torn frames, killed workers) for testing
//!   the recovery and overload paths.
//! - [`metrics`] — the always-on metric set (per-op request counters and
//!   latency histograms, WAL/epoch/queue gauges) in the process-global
//!   `afforest_obs::registry`.
//! - [`events`] — the flight recorder vocabulary and JSON dump paths
//!   (panic hook, shutdown dump, `afforest recover --events`).
//! - [`http`] — a tiny HTTP/1.0 sidecar serving `GET /metrics` as
//!   Prometheus text exposition for scrapers and `afforest top`.
//!
//! ```
//! use afforest_serve::{BatchPolicy, Request, Response, Server};
//!
//! let server = Server::new(4, &[(0, 1)], BatchPolicy::default()).unwrap();
//! assert_eq!(server.handle(&Request::Connected(0, 1)), Response::Connected(true));
//! server.handle(&Request::InsertEdges(vec![(1, 2), (2, 3)]));
//! assert!(server.flush(std::time::Duration::from_secs(5)));
//! assert_eq!(server.handle(&Request::Connected(0, 3)), Response::Connected(true));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod events;
pub mod faults;
pub mod http;
pub mod ingest;
pub mod loadgen;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use events::{Dump, DumpEvent, EventKind};
pub use faults::{FaultConfig, FaultPlan, InjectedCounts, WalFault};
pub use http::MetricsHttp;
pub use ingest::{BatchPolicy, ServeStats};
pub use loadgen::{LoadgenConfig, LoadgenReport, Transport};
pub use protocol::{FrameError, Request, Response, StatsReport, WireError};
pub use server::{ServeError, Server, ServerOptions};
pub use snapshot::{Snapshot, SnapshotStore};
pub use wal::{recover, AppendOutcome, Recovery, Wal, WalError};
