//! A minimal HTTP/1.0 sidecar exposing `GET /metrics`, `/healthz`, and
//! `/readyz`.
//!
//! Prometheus-style scrapers speak HTTP, not our binary frame protocol,
//! so `afforest serve --metrics-addr` starts this listener next to the
//! TCP front-end. Because the metric registry is process-global, the
//! sidecar needs no reference to the [`crate::Server`] at all: every
//! request is answered from [`afforest_obs::registry::expose`], which
//! snapshots atomics without pausing writers.
//!
//! The probe endpoints follow the usual split: `/healthz` answers 200
//! whenever the sidecar itself is alive (liveness), while `/readyz`
//! answers 200 only once the process has marked itself ready via
//! [`set_ready`] (recovery / WAL replay complete) *and* no shard health
//! gauge reports `Down` — a router with a dead shard keeps serving
//! degraded reads but tells its load balancer to stop sending new work.
//!
//! The protocol support is deliberately tiny — HTTP/1.0, one request per
//! connection, `Connection: close` — which is all a scraper or `curl`
//! needs. Anything that is not a known GET path gets a proper 404/405 so
//! misconfigured scrapers fail loudly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Accept-poll interval while idle (also the shutdown-check latency).
const POLL: Duration = Duration::from_millis(10);

/// Per-connection socket timeout: a stalled scraper cannot wedge the
/// sidecar (it serves one connection at a time by design).
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Largest request head we will buffer before answering 400.
const MAX_HEAD: usize = 8 * 1024;

/// Process-global readiness: `/readyz` answers 503 until this is set.
static READY: AtomicBool = AtomicBool::new(false);

/// Marks the process ready (or not) for `/readyz`. Call after startup
/// work — WAL recovery, tenant replay, shard boot — completes.
pub fn set_ready(ready: bool) {
    READY.store(ready, Ordering::Relaxed);
}

/// The `/readyz` verdict: the ready flag is set and no shard health
/// gauge reports `Down` (code 2; see `afforest-shard`'s health machine).
/// Processes without shard gauges — plain servers, workers — reduce to
/// the flag alone.
fn readiness() -> (bool, String) {
    if !READY.load(Ordering::Relaxed) {
        return (false, "not ready: startup incomplete\n".to_string());
    }
    for (name, value) in afforest_obs::registry::snapshot() {
        if let afforest_obs::registry::MetricValue::Gauge(code) = value {
            if name.starts_with("afforest_shard_health{") && code == 2 {
                return (false, format!("not ready: {name} is down\n"));
            }
        }
    }
    (true, "ok\n".to_string())
}

/// A running metrics sidecar. Dropping it stops the listener thread.
pub struct MetricsHttp {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsHttp {
    /// Binds `addr` and starts serving `GET /metrics` in a background
    /// thread.
    pub fn spawn(addr: &str) -> std::io::Result<MetricsHttp> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("afforest-metrics-http".into())
                .spawn(move || accept_loop(&listener, &stop))
                .map_err(std::io::Error::other)?
        };
        Ok(MetricsHttp {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => serve_one(stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Answers one request and closes. Errors are swallowed: a scraper that
/// hangs up mid-response must never take the sidecar down.
fn serve_one(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = match read_head(&mut stream) {
        Some(head) => head,
        None => return,
    };
    let (status, body) = match parse_request_line(&head) {
        Some(("GET", "/metrics")) => ("200 OK", afforest_obs::registry::expose()),
        Some(("GET", "/healthz")) => ("200 OK", "ok\n".to_string()),
        Some(("GET", "/readyz")) => match readiness() {
            (true, body) => ("200 OK", body),
            (false, body) => ("503 Service Unavailable", body),
        },
        Some(("GET", path)) => ("404 Not Found", format!("no such path: {path}\n")),
        Some((method, _)) => (
            "405 Method Not Allowed",
            format!("method {method} not allowed\n"),
        ),
        None => ("400 Bad Request", "malformed request line\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}

/// Reads until the blank line ending the request head (we ignore bodies:
/// GET has none, and anything else is rejected anyway).
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_HEAD {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(_) => return None,
        }
    }
    String::from_utf8(buf).ok()
}

/// Splits `GET /metrics HTTP/1.0` into method and path.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    parts.next()?; // the HTTP version must be present
    Some((method, path))
}

/// A one-shot HTTP GET returning `(status_code, body)`. The client side
/// of the sidecar, shared by `afforest top` and the tests.
pub fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let target = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address for {addr}"))?;
    let mut stream = TcpStream::connect_timeout(&target, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n").as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| "response has no header/body separator".to_string())?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| "response has no status code".to_string())?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_rejects_everything_else() {
        // Touch a metric so the exposition is non-empty.
        crate::metrics::metrics().connections.inc();
        let http = MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
        let addr = http.local_addr().to_string();

        let (status, body) = http_get(&addr, "/metrics").expect("scrape");
        assert_eq!(status, 200);
        let scrape = afforest_obs::registry::parse_exposition(&body).expect("parse scrape");
        assert!(scrape.value("afforest_connections_total").is_some());

        let (status, _) = http_get(&addr, "/nope").expect("404 path");
        assert_eq!(status, 404);
    }

    #[test]
    fn health_and_ready_probes_answer_separately() {
        let http = MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
        let addr = http.local_addr().to_string();

        // Liveness is unconditional.
        let (status, body) = http_get(&addr, "/healthz").expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        // Readiness follows the flag...
        set_ready(false);
        let (status, _) = http_get(&addr, "/readyz").expect("readyz");
        assert_eq!(status, 503);
        set_ready(true);
        let (status, _) = http_get(&addr, "/readyz").expect("readyz");
        assert_eq!(status, 200);

        // ...and a Down shard (health code 2) pulls it even when set.
        let g =
            afforest_obs::registry::labeled_gauge("afforest_shard_health", "shard", "readyz-test");
        g.set(2);
        let (status, body) = http_get(&addr, "/readyz").expect("readyz");
        assert_eq!(status, 503);
        assert!(body.contains("readyz-test"), "{body}");
        g.set(0);
        let (status, _) = http_get(&addr, "/readyz").expect("readyz");
        assert_eq!(status, 200);
        set_ready(false);
    }

    #[test]
    fn non_get_is_405_and_garbage_is_400() {
        let http = MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
        let addr = http.local_addr();

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 405"), "{resp}");

        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"garbage\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 400"), "{resp}");
    }

    #[test]
    fn shutdown_is_idempotent_and_frees_the_port() {
        let mut http = MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
        let addr = http.local_addr();
        http.shutdown();
        http.shutdown();
        // The port is released: a new sidecar can bind it.
        let again = MetricsHttp::spawn(&addr.to_string()).expect("rebind after shutdown");
        drop(again);
    }
}
