//! Deterministic chaos injection for the serving stack.
//!
//! A [`FaultPlan`] is a seeded, thread-safe decision source that the
//! server, the ingest writer, and the write-ahead log consult at each
//! failure point. Every decision comes from one SplitMix64 stream, so a
//! given `(seed, probabilities)` pair replays the *same* fault sequence
//! on every run — chaos tests are reproducible, and a failure found in CI
//! can be re-run locally with the seed from the log.
//!
//! Injection sites (all opt-in, all `None`/0.0 by default):
//!
//! - **WAL appends** ([`FaultPlan::on_wal_append`]): drop the record
//!   entirely (a crash before the write hit the disk) or tear it short
//!   (a crash mid-write). Recovery must survive both.
//! - **Batch applies** ([`FaultPlan::on_apply`]): stretch the apply
//!   window, widening the race surface between readers and the writer.
//! - **Wire frames** ([`FaultPlan::on_frame`]): truncate an encoded
//!   frame, exercising the protocol's torn-frame error paths without a
//!   misbehaving peer.
//! - **Worker threads** ([`FaultPlan::should_kill_worker`]): make an
//!   accept worker exit as if it had died; the pool must keep serving.
//! - **Cluster steps** ([`FaultPlan::on_cluster_step`]): pick a whole
//!   shard worker to kill, hang, slow, or partition at a seeded point of
//!   a chaos schedule. These fire in the *harness* process (the thing
//!   driving a multi-process cluster), not inside a server, so they are
//!   counted and flight-recorded locally but publish no server-side
//!   registry counters — the router's own health/park/degraded metrics
//!   are the externally visible evidence.
//!
//! Each site also counts how often it fired ([`FaultPlan::injected`]),
//! so tests can assert the chaos actually happened. Every firing is
//! additionally published to the live telemetry plane — a registry
//! counter per site and a `fault_injected` flight-recorder event — so a
//! chaos run can be audited from the `/metrics` exposition and the
//! flight dump alone, without access to the plan object.

use crate::events::{self, fault_site, EventKind};
use crate::metrics::metrics;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Probabilities and magnitudes for each injection site. Probabilities
/// are clamped to `[0, 1]`; a default-constructed config injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultConfig {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Probability that a WAL append is silently dropped.
    pub wal_drop: f64,
    /// Probability that a WAL append is torn (only a prefix is written).
    pub wal_short_write: f64,
    /// Probability that a batch apply is delayed by [`FaultConfig::apply_delay`].
    pub apply_delay_prob: f64,
    /// How long a delayed apply stalls.
    pub apply_delay: Duration,
    /// Probability that an in-process frame is torn short.
    pub torn_frame: f64,
    /// Probability (checked once per connection served) that an accept
    /// worker dies.
    pub kill_worker: f64,
    /// Probability (per cluster step) that a shard worker is killed.
    pub shard_kill: f64,
    /// Probability (per cluster step) that a shard worker hangs for
    /// [`FaultConfig::shard_fault`] (harness: `SIGSTOP` … `SIGCONT`).
    pub shard_hang: f64,
    /// Probability (per cluster step) that a shard worker runs slow for
    /// [`FaultConfig::shard_fault`] (harness: short stop/cont pulses).
    pub shard_slow: f64,
    /// Probability (per cluster step) that a shard worker is partitioned
    /// from the router for [`FaultConfig::shard_fault`].
    pub shard_partition: f64,
    /// How long a hang/slow/partition cluster fault lasts.
    pub shard_fault: Duration,
}

/// What a fault site should do to the current WAL append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFault {
    /// Write the record normally.
    None,
    /// Skip the write entirely (record lost).
    Drop,
    /// Write only `keep` bytes of the record (record torn).
    Short {
        /// Number of leading record bytes that reach the file.
        keep: usize,
    },
}

/// One fault drawn at a cluster step of a chaos schedule: what to do to
/// which shard worker. The harness process interprets these — the plan
/// only decides; it never touches a process itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterFault {
    /// SIGKILL the shard's worker (the harness restarts it later).
    Kill {
        /// Index of the doomed shard.
        shard: usize,
    },
    /// Pause the worker for `pause`, then resume it.
    Hang {
        /// Index of the hung shard.
        shard: usize,
        /// How long the worker stays stopped.
        pause: Duration,
    },
    /// Run the worker slowly for `pause` (intermittent stop pulses).
    Slow {
        /// Index of the slowed shard.
        shard: usize,
        /// How long the slowdown lasts.
        pause: Duration,
    },
    /// Cut the worker off from the router for `pause` (emulated by
    /// stopping it past the router's read deadline).
    Partition {
        /// Index of the partitioned shard.
        shard: usize,
        /// How long the partition lasts.
        pause: Duration,
    },
}

impl ClusterFault {
    /// The shard this fault targets.
    pub fn shard(&self) -> usize {
        match *self {
            ClusterFault::Kill { shard }
            | ClusterFault::Hang { shard, .. }
            | ClusterFault::Slow { shard, .. }
            | ClusterFault::Partition { shard, .. } => shard,
        }
    }
}

/// Counts of injected faults, for test assertions and operator logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InjectedCounts {
    /// WAL appends dropped.
    pub wal_drops: u64,
    /// WAL appends torn short.
    pub wal_short_writes: u64,
    /// Batch applies delayed.
    pub apply_delays: u64,
    /// Frames torn short.
    pub torn_frames: u64,
    /// Worker threads killed.
    pub worker_kills: u64,
    /// Shard workers killed (cluster scope).
    pub shard_kills: u64,
    /// Shard workers hung (cluster scope).
    pub shard_hangs: u64,
    /// Shard workers slowed (cluster scope).
    pub shard_slows: u64,
    /// Shard workers partitioned (cluster scope).
    pub shard_partitions: u64,
}

impl InjectedCounts {
    /// Total faults across every site (the `faults_injected` stat).
    pub fn total(&self) -> u64 {
        self.wal_drops
            + self.wal_short_writes
            + self.apply_delays
            + self.torn_frames
            + self.worker_kills
            + self.shard_kills
            + self.shard_hangs
            + self.shard_slows
            + self.shard_partitions
    }
}

/// A seeded, shareable fault-decision source (see module docs).
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    /// SplitMix64 state; a Mutex keeps the stream deterministic under
    /// concurrent callers (ordering between threads still races, but each
    /// single-threaded site replays exactly).
    state: Mutex<u64>,
    wal_drops: AtomicU64,
    wal_short_writes: AtomicU64,
    apply_delays: AtomicU64,
    torn_frames: AtomicU64,
    worker_kills: AtomicU64,
    shard_kills: AtomicU64,
    shard_hangs: AtomicU64,
    shard_slows: AtomicU64,
    shard_partitions: AtomicU64,
}

impl FaultPlan {
    /// Builds a plan from `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            state: Mutex::new(cfg.seed.wrapping_add(0x9E3779B97F4A7C15)),
            cfg,
            wal_drops: AtomicU64::new(0),
            wal_short_writes: AtomicU64::new(0),
            apply_delays: AtomicU64::new(0),
            torn_frames: AtomicU64::new(0),
            worker_kills: AtomicU64::new(0),
            shard_kills: AtomicU64::new(0),
            shard_hangs: AtomicU64::new(0),
            shard_slows: AtomicU64::new(0),
            shard_partitions: AtomicU64::new(0),
        }
    }

    /// Parses a `key=value` comma list, e.g.
    /// `seed=7,wal_drop=0.1,wal_short_write=0.05,apply_delay_ms=2,`
    /// `apply_delay_prob=0.5,torn_frame=0.1,kill_worker=0.01`.
    /// Unknown keys are errors (typo guard, like the CLI's flag parser).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = FaultConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec '{part}' is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = || format!("invalid value '{value}' for fault key '{key}'");
            match key {
                "seed" => cfg.seed = value.parse().map_err(|_| bad())?,
                "wal_drop" => cfg.wal_drop = value.parse().map_err(|_| bad())?,
                "wal_short_write" => cfg.wal_short_write = value.parse().map_err(|_| bad())?,
                "apply_delay_prob" => cfg.apply_delay_prob = value.parse().map_err(|_| bad())?,
                "apply_delay_ms" => {
                    cfg.apply_delay = Duration::from_millis(value.parse().map_err(|_| bad())?);
                    // A delay with no explicit probability means "always".
                    if cfg.apply_delay_prob == 0.0 {
                        cfg.apply_delay_prob = 1.0;
                    }
                }
                "torn_frame" => cfg.torn_frame = value.parse().map_err(|_| bad())?,
                "kill_worker" => cfg.kill_worker = value.parse().map_err(|_| bad())?,
                "shard_kill" => cfg.shard_kill = value.parse().map_err(|_| bad())?,
                "shard_hang" => cfg.shard_hang = value.parse().map_err(|_| bad())?,
                "shard_slow" => cfg.shard_slow = value.parse().map_err(|_| bad())?,
                "shard_partition" => cfg.shard_partition = value.parse().map_err(|_| bad())?,
                "shard_fault_ms" => {
                    cfg.shard_fault = Duration::from_millis(value.parse().map_err(|_| bad())?);
                }
                other => {
                    return Err(format!(
                        "unknown fault key '{other}' (allowed: seed wal_drop wal_short_write \
                         apply_delay_ms apply_delay_prob torn_frame kill_worker shard_kill \
                         shard_hang shard_slow shard_partition shard_fault_ms)"
                    ))
                }
            }
        }
        Ok(Self::new(cfg))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// How many faults each site has injected so far.
    pub fn injected(&self) -> InjectedCounts {
        InjectedCounts {
            wal_drops: self.wal_drops.load(Ordering::Relaxed),
            wal_short_writes: self.wal_short_writes.load(Ordering::Relaxed),
            apply_delays: self.apply_delays.load(Ordering::Relaxed),
            torn_frames: self.torn_frames.load(Ordering::Relaxed),
            worker_kills: self.worker_kills.load(Ordering::Relaxed),
            shard_kills: self.shard_kills.load(Ordering::Relaxed),
            shard_hangs: self.shard_hangs.load(Ordering::Relaxed),
            shard_slows: self.shard_slows.load(Ordering::Relaxed),
            shard_partitions: self.shard_partitions.load(Ordering::Relaxed),
        }
    }

    /// Next value of the SplitMix64 stream.
    fn next(&self) -> u64 {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Draws a uniform `[0, 1)` value.
    fn uniform(&self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether an event with probability `p` fires.
    fn chance(&self, p: f64) -> bool {
        p > 0.0 && self.uniform() < p.min(1.0)
    }

    /// Decides the fate of a WAL record of `record_len` bytes.
    pub fn on_wal_append(&self, record_len: usize) -> WalFault {
        if self.chance(self.cfg.wal_drop) {
            self.wal_drops.fetch_add(1, Ordering::Relaxed);
            metrics().faults_wal_drop.inc();
            events::record(
                EventKind::FaultInjected,
                [fault_site::WAL_DROP, record_len as u64, 0],
            );
            return WalFault::Drop;
        }
        if self.chance(self.cfg.wal_short_write) {
            self.wal_short_writes.fetch_add(1, Ordering::Relaxed);
            // Keep a strict prefix: 0..record_len-1 bytes.
            let keep = (self.next() as usize) % record_len.max(1);
            metrics().faults_wal_short_write.inc();
            events::record(
                EventKind::FaultInjected,
                [fault_site::WAL_SHORT_WRITE, keep as u64, 0],
            );
            return WalFault::Short { keep };
        }
        WalFault::None
    }

    /// An extra apply delay for the current batch, if the plan injects one.
    pub fn on_apply(&self) -> Option<Duration> {
        if self.chance(self.cfg.apply_delay_prob) && !self.cfg.apply_delay.is_zero() {
            self.apply_delays.fetch_add(1, Ordering::Relaxed);
            metrics().faults_apply_delay.inc();
            events::record(
                EventKind::FaultInjected,
                [
                    fault_site::APPLY_DELAY,
                    self.cfg.apply_delay.as_micros() as u64,
                    0,
                ],
            );
            Some(self.cfg.apply_delay)
        } else {
            None
        }
    }

    /// A torn length for an encoded frame of `len` bytes, if the plan
    /// tears this one (always a strict prefix).
    pub fn on_frame(&self, len: usize) -> Option<usize> {
        if len > 0 && self.chance(self.cfg.torn_frame) {
            self.torn_frames.fetch_add(1, Ordering::Relaxed);
            let keep = (self.next() as usize) % len;
            metrics().faults_torn_frame.inc();
            events::record(
                EventKind::FaultInjected,
                [fault_site::TORN_FRAME, keep as u64, 0],
            );
            Some(keep)
        } else {
            None
        }
    }

    /// Draws the cluster-scope decision for one step of a chaos schedule
    /// over `num_shards` workers. Sites are consulted in a fixed order
    /// (kill, hang, slow, partition) and at most one fault fires per
    /// step, so a `(seed, probabilities)` pair replays the same schedule.
    /// Counted and flight-recorded in the calling (harness) process; no
    /// registry counters — see the module docs.
    pub fn on_cluster_step(&self, num_shards: usize) -> Option<ClusterFault> {
        if num_shards == 0 {
            return None;
        }
        if self.chance(self.cfg.shard_kill) {
            let shard = (self.next() as usize) % num_shards;
            self.shard_kills.fetch_add(1, Ordering::Relaxed);
            events::record(
                EventKind::FaultInjected,
                [fault_site::SHARD_KILL, shard as u64, 0],
            );
            return Some(ClusterFault::Kill { shard });
        }
        if self.chance(self.cfg.shard_hang) {
            let shard = (self.next() as usize) % num_shards;
            self.shard_hangs.fetch_add(1, Ordering::Relaxed);
            events::record(
                EventKind::FaultInjected,
                [fault_site::SHARD_HANG, shard as u64, 0],
            );
            return Some(ClusterFault::Hang {
                shard,
                pause: self.cfg.shard_fault,
            });
        }
        if self.chance(self.cfg.shard_slow) {
            let shard = (self.next() as usize) % num_shards;
            self.shard_slows.fetch_add(1, Ordering::Relaxed);
            events::record(
                EventKind::FaultInjected,
                [fault_site::SHARD_SLOW, shard as u64, 0],
            );
            return Some(ClusterFault::Slow {
                shard,
                pause: self.cfg.shard_fault,
            });
        }
        if self.chance(self.cfg.shard_partition) {
            let shard = (self.next() as usize) % num_shards;
            self.shard_partitions.fetch_add(1, Ordering::Relaxed);
            events::record(
                EventKind::FaultInjected,
                [fault_site::SHARD_PARTITION, shard as u64, 0],
            );
            return Some(ClusterFault::Partition {
                shard,
                pause: self.cfg.shard_fault,
            });
        }
        None
    }

    /// Whether the calling worker thread should die now.
    pub fn should_kill_worker(&self) -> bool {
        if self.chance(self.cfg.kill_worker) {
            self.worker_kills.fetch_add(1, Ordering::Relaxed);
            metrics().faults_worker_kill.inc();
            events::record(EventKind::FaultInjected, [fault_site::KILL_WORKER, 0, 0]);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).unwrap()
    }

    #[test]
    fn default_plan_injects_nothing() {
        let p = FaultPlan::new(FaultConfig::default());
        for _ in 0..1_000 {
            assert_eq!(p.on_wal_append(64), WalFault::None);
            assert_eq!(p.on_apply(), None);
            assert_eq!(p.on_frame(32), None);
            assert!(!p.should_kill_worker());
        }
        assert_eq!(p.injected(), InjectedCounts::default());
    }

    #[test]
    fn same_seed_replays_identically() {
        let spec = "seed=9,wal_drop=0.3,wal_short_write=0.3";
        let a = plan(spec);
        let b = plan(spec);
        let decisions_a: Vec<_> = (0..200).map(|_| a.on_wal_append(100)).collect();
        let decisions_b: Vec<_> = (0..200).map(|_| b.on_wal_append(100)).collect();
        assert_eq!(decisions_a, decisions_b);
        assert!(decisions_a.iter().any(|f| matches!(f, WalFault::Drop)));
        assert!(decisions_a
            .iter()
            .any(|f| matches!(f, WalFault::Short { .. })));
        // Different seeds diverge.
        let c = plan("seed=10,wal_drop=0.3,wal_short_write=0.3");
        let decisions_c: Vec<_> = (0..200).map(|_| c.on_wal_append(100)).collect();
        assert_ne!(decisions_a, decisions_c);
    }

    #[test]
    fn probabilities_roughly_respected() {
        let p = plan("seed=1,torn_frame=0.5");
        let torn = (0..2_000).filter(|_| p.on_frame(64).is_some()).count();
        assert!((700..1_300).contains(&torn), "torn {torn}/2000 at p=0.5");
        assert_eq!(p.injected().torn_frames, torn as u64);
    }

    #[test]
    fn short_writes_and_torn_frames_are_strict_prefixes() {
        let p = plan("seed=3,wal_short_write=1");
        for len in [1usize, 2, 17, 4096] {
            match p.on_wal_append(len) {
                WalFault::Short { keep } => assert!(keep < len, "keep {keep} >= len {len}"),
                other => panic!("expected Short, got {other:?}"),
            }
        }
        let q = plan("seed=3,torn_frame=1");
        for len in [1usize, 5, 100] {
            let keep = q.on_frame(len).unwrap();
            assert!(keep < len);
        }
    }

    #[test]
    fn apply_delay_defaults_to_always_when_only_ms_given() {
        let p = plan("seed=2,apply_delay_ms=7");
        assert_eq!(p.on_apply(), Some(Duration::from_millis(7)));
        assert_eq!(p.config().apply_delay_prob, 1.0);
    }

    #[test]
    fn cluster_steps_replay_identically_and_target_valid_shards() {
        let spec = "seed=11,shard_kill=0.1,shard_hang=0.1,shard_slow=0.1,\
                    shard_partition=0.1,shard_fault_ms=40";
        let a = plan(spec);
        let b = plan(spec);
        let steps_a: Vec<_> = (0..400).map(|_| a.on_cluster_step(3)).collect();
        let steps_b: Vec<_> = (0..400).map(|_| b.on_cluster_step(3)).collect();
        assert_eq!(steps_a, steps_b);
        let fired: Vec<_> = steps_a.iter().flatten().collect();
        assert!(!fired.is_empty(), "no cluster fault fired in 400 steps");
        assert!(fired.iter().all(|f| f.shard() < 3));
        // Every flavor shows up at p=0.1 over 400 draws, with its pause.
        assert!(fired.iter().any(|f| matches!(f, ClusterFault::Kill { .. })));
        assert!(fired.iter().any(
            |f| matches!(f, ClusterFault::Hang { pause, .. } if *pause == Duration::from_millis(40))
        ));
        assert!(fired.iter().any(|f| matches!(f, ClusterFault::Slow { .. })));
        assert!(fired
            .iter()
            .any(|f| matches!(f, ClusterFault::Partition { .. })));
        let counts = a.injected();
        assert_eq!(
            counts.total(),
            counts.shard_kills + counts.shard_hangs + counts.shard_slows + counts.shard_partitions
        );
        assert_eq!(counts.total(), fired.len() as u64);
        // A zero-shard cluster draws nothing.
        assert_eq!(plan(spec).on_cluster_step(0), None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("not-a-spec").is_err());
        assert!(FaultPlan::parse("frobnicate=1").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
        // Empty and whitespace specs are the no-fault plan.
        assert_eq!(plan("").config(), &FaultConfig::default());
    }
}
