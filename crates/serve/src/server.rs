//! The service runtime: request handling, the writer thread, and the TCP
//! front-end.
//!
//! Ownership layout (single-writer / many-reader):
//!
//! - The **writer thread** exclusively owns the [`IncrementalCc`]. It
//!   drains the ingest queue in coalesced batches, links each batch in
//!   parallel, compresses, and publishes the next epoch to the
//!   [`SnapshotStore`].
//! - **Request handlers** (TCP workers or in-process callers) only ever
//!   see immutable `Arc<Snapshot>`s and the ingest queue's producer side,
//!   so reads never wait on the writer.
//!
//! [`Server::handle`] is the transport-independent request evaluator; the
//! TCP layer and the deterministic in-process tests both go through it.

use crate::ingest::{BatchPolicy, Drained, IngestQueue, ServeStats};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, Response,
    StatsReport, WireError,
};
use crate::snapshot::{Snapshot, SnapshotStore};
use afforest_core::IncrementalCc;
use afforest_graph::Node;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a blocked worker sleeps between accept attempts / shutdown
/// checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so a parked reader re-checks the shutdown
/// flag. Requests are single small frames, so a timeout mid-frame only
/// happens when the peer itself stalled mid-write.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// State shared between request handlers and the writer thread.
struct Shared {
    store: SnapshotStore,
    ingest: IngestQueue,
    stats: ServeStats,
    shutdown: AtomicBool,
}

/// A running connectivity service over one graph.
///
/// Dropping the server shuts the writer down cleanly (remaining queued
/// edges are applied first).
pub struct Server {
    shared: Arc<Shared>,
    vertices: usize,
    writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds the epoch-0 snapshot from `edges` synchronously, then starts
    /// the writer thread for subsequent inserts.
    pub fn new(n: usize, edges: &[(Node, Node)], policy: BatchPolicy) -> Self {
        let mut cc = IncrementalCc::new(n);
        cc.insert_batch(edges);
        let initial = Snapshot::new(0, &cc.labels());
        let shared = Arc::new(Shared {
            store: SnapshotStore::new(initial),
            ingest: IngestQueue::default(),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("afforest-serve-writer".into())
                .spawn(move || writer_loop(cc, &shared, &policy))
                .expect("spawn writer thread")
        };
        Self {
            shared,
            vertices: n,
            writer: Some(writer),
        }
    }

    /// The currently served epoch.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.store.load()
    }

    /// Always-on service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown (same effect as a `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Evaluates one request against the current epoch. This is the
    /// transport-independent core: the TCP front-end and in-process tests
    /// both call it. Never panics; unanswerable requests become
    /// [`Response::Err`].
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Connected(u, v) => match self.snapshot().connected(*u, *v) {
                Some(b) => Response::Connected(b),
                None => self.range_error(*u.max(v)),
            },
            Request::Component(u) => match self.snapshot().component(*u) {
                Some(l) => Response::Component(l),
                None => self.range_error(*u),
            },
            Request::ComponentSize(u) => match self.snapshot().component_size(*u) {
                Some(s) => Response::ComponentSize(s),
                None => self.range_error(*u),
            },
            Request::NumComponents => {
                Response::NumComponents(self.snapshot().num_components() as u64)
            }
            Request::InsertEdges(edges) => {
                if let Some(&(u, v)) = edges
                    .iter()
                    .find(|&&(u, v)| u as usize >= self.vertices || v as usize >= self.vertices)
                {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    return Response::Err(format!(
                        "edge ({u}, {v}) out of range for {} vertices",
                        self.vertices
                    ));
                }
                let depth = self.shared.ingest.push(edges);
                self.shared
                    .stats
                    .queue_depth
                    .store(depth as u64, Ordering::Relaxed);
                Response::Accepted {
                    edges: edges.len() as u32,
                }
            }
            Request::Stats => Response::Stats(self.stats_report()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
        }
    }

    fn range_error(&self, v: Node) -> Response {
        ServeStats::add(&self.shared.stats.protocol_errors, 1);
        Response::Err(format!(
            "vertex {v} out of range for {} vertices",
            self.vertices
        ))
    }

    /// Builds the stats answer from the served snapshot and the always-on
    /// counters.
    pub fn stats_report(&self) -> StatsReport {
        let snap = self.snapshot();
        StatsReport {
            epoch: snap.epoch,
            vertices: snap.vertices() as u64,
            num_components: snap.num_components() as u64,
            edges_ingested: ServeStats::get(&self.shared.stats.edges_ingested),
            epochs_published: ServeStats::get(&self.shared.stats.epochs_published),
            queue_depth: self.shared.ingest.depth() as u64,
        }
    }

    /// Waits until every queued edge has been applied and published (or
    /// `timeout` elapses). Returns whether the queue fully drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.ingest.depth() == 0 && !self.shared.stats.is_applying() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Serves `listener` with a pool of `workers` accept threads until a
    /// `Shutdown` request arrives. Each worker handles one connection at a
    /// time, so the pool size bounds concurrent connections.
    pub fn serve_tcp(&self, listener: TcpListener, workers: usize) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        thread::scope(|s| {
            for i in 0..workers.max(1) {
                let listener = &listener;
                thread::Builder::new()
                    .name(format!("afforest-serve-worker-{i}"))
                    .spawn_scoped(s, move || self.accept_loop(listener))
                    .expect("spawn accept worker");
            }
        });
        Ok(())
    }

    fn accept_loop(&self, listener: &TcpListener) {
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => self.serve_connection(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept failure (e.g. the peer aborted the
                // handshake): back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Runs one connection's request/response loop until the peer closes,
    /// the stream desynchronizes, or shutdown is requested.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        while !self.shutdown_requested() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                // Peer closed between frames.
                Ok(None) => return,
                // Read timeout: loop to re-check the shutdown flag.
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue
                }
                // Socket died.
                Err(WireError::Io(_)) => return,
                // Unframeable bytes: report, then drop the connection (a
                // bad length prefix means the stream is desynchronized).
                Err(WireError::Frame(e)) => {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    let _ = write_frame(&mut stream, &encode_response(&frame_err(&e)));
                    return;
                }
            };
            let _span = afforest_obs::span!("serve-request");
            // A malformed payload inside a well-delimited frame keeps the
            // stream in sync: answer Err and keep going.
            let resp = match decode_request(&payload) {
                Ok(req) => self.handle(&req),
                Err(e) => {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    frame_err(&e)
                }
            };
            let done = matches!(resp, Response::Bye);
            if write_frame(&mut stream, &encode_response(&resp)).is_err() || done {
                return;
            }
        }
    }

    /// Stops the writer (applying any still-queued edges first) and joins
    /// it. Idempotent.
    pub fn join_writer(&mut self) {
        self.shared.ingest.shutdown();
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_writer();
    }
}

fn frame_err(e: &FrameError) -> Response {
    Response::Err(e.to_string())
}

/// The single writer: drain → link → compress → publish, one epoch per
/// coalesced batch.
fn writer_loop(mut cc: IncrementalCc, shared: &Shared, policy: &BatchPolicy) {
    let mut epoch = 0u64;
    loop {
        let batch = match shared.ingest.next_batch(policy) {
            Drained::Batch(batch) => batch,
            Drained::Shutdown => return,
        };
        epoch += 1;
        let applied = batch.len() as u64;
        shared.stats.applying.store(true, Ordering::Relaxed);
        {
            let _span = afforest_obs::span!("ingest-batch[{epoch}]");
            cc.insert_batch(&batch);
            if let Some(d) = policy.apply_delay {
                thread::sleep(d);
            }
            shared.store.publish(Snapshot::new(epoch, &cc.labels()));
        }
        shared.stats.applying.store(false, Ordering::Relaxed);
        ServeStats::add(&shared.stats.edges_ingested, applied);
        ServeStats::add(&shared.stats.epochs_published, 1);
        shared
            .stats
            .queue_depth
            .store(shared.ingest.depth() as u64, Ordering::Relaxed);
        afforest_obs::count(afforest_obs::Counter::EdgesIngested, applied);
        afforest_obs::count(afforest_obs::Counter::EpochsPublished, 1);
        afforest_obs::count(afforest_obs::Counter::QueueDepth, applied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> BatchPolicy {
        BatchPolicy {
            max_edges: 64,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        }
    }

    fn path_server(n: usize) -> Server {
        let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
        Server::new(n, &edges, quick_policy())
    }

    #[test]
    fn serves_epoch_zero_queries() {
        let server = Server::new(6, &[(0, 1), (1, 2), (4, 5)], quick_policy());
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::Component(2)),
            Response::Component(0)
        );
        assert_eq!(
            server.handle(&Request::ComponentSize(4)),
            Response::ComponentSize(2)
        );
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(3)
        );
    }

    #[test]
    fn inserts_become_visible_after_flush() {
        let server = Server::new(4, &[], quick_policy());
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])),
            Response::Accepted { edges: 3 }
        );
        assert!(server.flush(Duration::from_secs(5)));
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(true)
        );
        let snap = server.snapshot();
        assert!(snap.epoch >= 1);
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 3);
    }

    #[test]
    fn out_of_range_requests_get_err_not_panic() {
        let server = path_server(5);
        for req in [
            Request::Connected(0, 5),
            Request::Connected(9, 9),
            Request::Component(5),
            Request::ComponentSize(u32::MAX),
            Request::InsertEdges(vec![(0, 1), (2, 5)]),
        ] {
            match server.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
        assert_eq!(ServeStats::get(&server.stats().protocol_errors), 5);
        // Rejected insert must not have queued anything.
        assert!(server.flush(Duration::from_secs(1)));
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 0);
    }

    #[test]
    fn stats_reflect_ingest_progress() {
        let server = Server::new(8, &[(0, 1)], quick_policy());
        server.handle(&Request::InsertEdges(vec![(2, 3), (4, 5)]));
        assert!(server.flush(Duration::from_secs(5)));
        match server.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 8);
                assert_eq!(s.edges_ingested, 2);
                assert!(s.epochs_published >= 1);
                assert_eq!(s.queue_depth, 0);
                assert!(s.epoch >= 1);
                assert_eq!(s.num_components, 5);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_request_sets_flag_and_answers_bye() {
        let server = path_server(3);
        assert!(!server.shutdown_requested());
        assert_eq!(server.handle(&Request::Shutdown), Response::Bye);
        assert!(server.shutdown_requested());
    }

    #[test]
    fn many_small_inserts_coalesce_into_few_epochs() {
        let server = Server::new(
            1_000,
            &[],
            BatchPolicy {
                max_edges: 256,
                max_delay: Duration::from_millis(20),
                apply_delay: None,
            },
        );
        for v in 1..1_000u32 {
            server.handle(&Request::InsertEdges(vec![(v - 1, v)]));
        }
        assert!(server.flush(Duration::from_secs(10)));
        let published = ServeStats::get(&server.stats().epochs_published);
        assert!(published >= 1);
        // 999 single-edge inserts must not mean 999 epochs: coalescing is
        // what makes the write path batched. The writer keeps up with the
        // producer, so well under half the inserts get their own epoch.
        assert!(published < 500, "no coalescing: {published} epochs");
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 999);
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(1)
        );
    }

    #[test]
    fn drop_applies_queued_edges_before_exit() {
        let mut server = Server::new(
            4,
            &[],
            BatchPolicy {
                // Deadline far away: edges sit queued until shutdown drain.
                max_edges: 1_000_000,
                max_delay: Duration::from_secs(600),
                apply_delay: None,
            },
        );
        server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2)]));
        server.join_writer();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
    }
}
