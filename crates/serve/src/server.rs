//! The service runtime: request handling, the writer thread, and the TCP
//! front-end.
//!
//! Ownership layout (single-writer / many-reader):
//!
//! - The **writer thread** exclusively owns the [`IncrementalCc`]. It
//!   drains the ingest queue in coalesced batches, links each batch in
//!   parallel, compresses, and publishes the next epoch to the
//!   [`SnapshotStore`].
//! - **Request handlers** (TCP workers or in-process callers) only ever
//!   see immutable `Arc<Snapshot>`s and the ingest queue's producer side,
//!   so reads never wait on the writer.
//!
//! [`Server::handle`] is the transport-independent request evaluator; the
//! TCP layer and the deterministic in-process tests both go through it.

use crate::events::{self, EventKind};
use crate::faults::FaultPlan;
use crate::ingest::{BatchPolicy, Drained, IngestQueue, ServeStats};
use crate::metrics::{metrics, op_index};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, Response,
    StatsReport, WireError,
};
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::wal::{Wal, WalError};
use afforest_core::IncrementalCc;
use afforest_graph::Node;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How long a blocked worker sleeps between accept attempts / shutdown
/// checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so a parked reader re-checks the shutdown
/// flag. Requests are single small frames, so a timeout mid-frame only
/// happens when the peer itself stalled mid-write.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Why the service failed to start or serve.
#[derive(Debug)]
pub enum ServeError {
    /// The OS refused to start a service thread (named in `what`).
    Spawn {
        /// Which thread failed to start.
        what: &'static str,
    },
    /// The write-ahead log could not be opened or recovered.
    Wal(WalError),
    /// Transport-level failure (e.g. configuring the listener).
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spawn { what } => write!(f, "failed to spawn {what} thread"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Everything configurable about a server beyond the graph itself.
#[derive(Default)]
pub struct ServerOptions {
    /// When the writer cuts a batch.
    pub policy: BatchPolicy,
    /// Admission bound: pending edges above this shed new inserts with
    /// [`Response::Overloaded`] (`0` = unbounded).
    pub max_queue_depth: usize,
    /// Close a connection idle longer than this (`None` = never). Framed
    /// requests are small, so an idle deadline doubles as a torn-frame
    /// deadline: a peer that stalls mid-frame is cut off too.
    pub read_deadline: Option<Duration>,
    /// Durability: append each batch here before applying it.
    pub wal: Option<Wal>,
    /// Chaos: consulted at every injection site when present.
    pub faults: Option<Arc<FaultPlan>>,
}

/// State shared between request handlers and the writer thread.
struct Shared {
    store: SnapshotStore,
    ingest: IngestQueue,
    stats: ServeStats,
    shutdown: AtomicBool,
    max_queue_depth: usize,
    read_deadline: Option<Duration>,
    faults: Option<Arc<FaultPlan>>,
}

/// A running connectivity service over one graph.
///
/// Dropping the server shuts the writer down cleanly (remaining queued
/// edges are applied first).
pub struct Server {
    shared: Arc<Shared>,
    vertices: usize,
    writer: Option<JoinHandle<()>>,
}

impl Server {
    /// Builds the epoch-0 snapshot from `edges` synchronously, then starts
    /// the writer thread for subsequent inserts.
    pub fn new(n: usize, edges: &[(Node, Node)], policy: BatchPolicy) -> Result<Self, ServeError> {
        Self::with_options(
            n,
            edges,
            ServerOptions {
                policy,
                ..ServerOptions::default()
            },
        )
    }

    /// [`Server::new`] with the full option set (WAL, admission bound,
    /// read deadline, chaos plan).
    pub fn with_options(
        n: usize,
        edges: &[(Node, Node)],
        options: ServerOptions,
    ) -> Result<Self, ServeError> {
        Self::from_cc(
            {
                let mut cc = IncrementalCc::new(n);
                cc.insert_batch(edges);
                cc
            },
            options,
        )
    }

    /// Starts a server over an already-built structure (the recovery
    /// path: `wal::recover` yields the `IncrementalCc`, this serves it).
    pub fn from_cc(mut cc: IncrementalCc, options: ServerOptions) -> Result<Self, ServeError> {
        let ServerOptions {
            policy,
            max_queue_depth,
            read_deadline,
            mut wal,
            faults,
        } = options;
        if let Some(f) = faults.as_ref() {
            wal = wal.map(|w| w.with_faults(Arc::clone(f)));
        }
        let n = cc.len();
        let initial = Snapshot::new(0, &cc.labels());
        let shared = Arc::new(Shared {
            store: SnapshotStore::new(initial),
            ingest: IngestQueue::default(),
            stats: ServeStats::default(),
            shutdown: AtomicBool::new(false),
            max_queue_depth,
            read_deadline,
            faults,
        });
        let writer = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("afforest-serve-writer".into())
                .spawn(move || writer_loop(cc, &shared, &policy, wal))
                .map_err(|_| ServeError::Spawn { what: "writer" })?
        };
        Ok(Self {
            shared,
            vertices: n,
            writer: Some(writer),
        })
    }

    /// The currently served epoch.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.store.load()
    }

    /// Always-on service counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown (same effect as a `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
    }

    /// Evaluates one request against the current epoch. This is the
    /// transport-independent core: the TCP front-end and in-process tests
    /// both call it. Never panics; unanswerable requests become
    /// [`Response::Err`].
    ///
    /// Every call lands in the live telemetry plane: one per-op request
    /// counter and one per-op latency histogram, measured around the
    /// whole evaluation (including the registry scrape a `Metrics`
    /// request performs).
    pub fn handle(&self, req: &Request) -> Response {
        let op = op_index(req);
        let start = Instant::now();
        let resp = self.handle_inner(req);
        let m = metrics();
        m.requests[op].inc();
        m.latency[op].record(start.elapsed().as_nanos() as u64);
        resp
    }

    fn handle_inner(&self, req: &Request) -> Response {
        match req {
            Request::Connected(u, v) => match self.snapshot().connected(*u, *v) {
                Some(b) => Response::Connected(b),
                None => self.range_error(*u.max(v)),
            },
            Request::Component(u) => match self.snapshot().component(*u) {
                Some(l) => Response::Component(l),
                None => self.range_error(*u),
            },
            Request::ComponentSize(u) => match self.snapshot().component_size(*u) {
                Some(s) => Response::ComponentSize(s),
                None => self.range_error(*u),
            },
            Request::NumComponents => {
                Response::NumComponents(self.snapshot().num_components() as u64)
            }
            Request::InsertEdges(edges) => {
                if let Some(&(u, v)) = edges
                    .iter()
                    .find(|&&(u, v)| u as usize >= self.vertices || v as usize >= self.vertices)
                {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    metrics().protocol_errors.inc();
                    return Response::Err(format!(
                        "edge ({u}, {v}) out of range for {} vertices",
                        self.vertices
                    ));
                }
                match self
                    .shared
                    .ingest
                    .try_push(edges, self.shared.max_queue_depth)
                {
                    Ok(depth) => {
                        self.shared
                            .stats
                            .queue_depth
                            .store(depth as u64, Ordering::Relaxed);
                        metrics().queue_depth.set(depth as u64);
                        Response::Accepted {
                            edges: edges.len() as u32,
                        }
                    }
                    Err(depth) => {
                        ServeStats::add(&self.shared.stats.requests_shed, 1);
                        afforest_obs::count(afforest_obs::Counter::RequestsShed, 1);
                        metrics().requests_shed.inc();
                        events::record(
                            EventKind::OverloadShed,
                            [depth as u64, edges.len() as u64, 0],
                        );
                        Response::Overloaded {
                            queue_depth: depth as u64,
                        }
                    }
                }
            }
            Request::Stats => Response::Stats(self.stats_report()),
            Request::Metrics => Response::Metrics(afforest_obs::registry::expose()),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
        }
    }

    fn range_error(&self, v: Node) -> Response {
        ServeStats::add(&self.shared.stats.protocol_errors, 1);
        metrics().protocol_errors.inc();
        Response::Err(format!(
            "vertex {v} out of range for {} vertices",
            self.vertices
        ))
    }

    /// Builds the stats answer from the served snapshot and the always-on
    /// counters.
    pub fn stats_report(&self) -> StatsReport {
        let snap = self.snapshot();
        StatsReport {
            epoch: snap.epoch,
            vertices: snap.vertices() as u64,
            num_components: snap.num_components() as u64,
            edges_ingested: ServeStats::get(&self.shared.stats.edges_ingested),
            epochs_published: ServeStats::get(&self.shared.stats.epochs_published),
            queue_depth: self.shared.ingest.depth() as u64,
            requests_shed: ServeStats::get(&self.shared.stats.requests_shed),
            wal_records: ServeStats::get(&self.shared.stats.wal_records),
            faults_injected: self
                .shared
                .faults
                .as_deref()
                .map_or(0, |f| f.injected().total()),
        }
    }

    /// Waits until every queued edge has been applied and published (or
    /// `timeout` elapses). Returns whether the queue fully drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.ingest.depth() == 0 && !self.shared.stats.is_applying() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Serves `listener` with a pool of `workers` accept threads until a
    /// `Shutdown` request arrives. Each worker handles one connection at a
    /// time, so the pool size bounds concurrent connections.
    pub fn serve_tcp(&self, listener: TcpListener, workers: usize) -> Result<(), ServeError> {
        listener.set_nonblocking(true)?;
        let mut spawn_failed = false;
        thread::scope(|s| {
            for i in 0..workers.max(1) {
                let listener = &listener;
                let spawned = thread::Builder::new()
                    .name(format!("afforest-serve-worker-{i}"))
                    .spawn_scoped(s, move || self.accept_loop(listener, i));
                if spawned.is_err() {
                    // Tell the workers that did start to exit; the scope
                    // then joins them and we report the failure.
                    spawn_failed = true;
                    self.request_shutdown();
                    break;
                }
            }
        });
        if spawn_failed {
            return Err(ServeError::Spawn {
                what: "accept worker",
            });
        }
        Ok(())
    }

    fn accept_loop(&self, listener: &TcpListener, worker: usize) {
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Chaos: a worker may die instead of serving. The rest
                    // of the pool (and the listener) keep going.
                    if let Some(f) = self.shared.faults.as_deref() {
                        if f.should_kill_worker() {
                            metrics().worker_deaths.inc();
                            events::record(EventKind::WorkerDeath, [worker as u64, 0, 0]);
                            return;
                        }
                    }
                    metrics().connections.inc();
                    self.serve_connection(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept failure (e.g. the peer aborted the
                // handshake): back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Runs one connection's request/response loop until the peer closes,
    /// the stream desynchronizes, or shutdown is requested.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let mut last_activity = Instant::now();
        while !self.shutdown_requested() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                // Peer closed between frames.
                Ok(None) => return,
                // Read timeout: enforce the idle deadline, else loop to
                // re-check the shutdown flag.
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(deadline) = self.shared.read_deadline {
                        if last_activity.elapsed() >= deadline {
                            return;
                        }
                    }
                    continue;
                }
                // Socket died.
                Err(WireError::Io(_)) => return,
                // Unframeable bytes: report, then drop the connection (a
                // bad length prefix means the stream is desynchronized).
                Err(WireError::Frame(e)) => {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    metrics().protocol_errors.inc();
                    let _ = write_frame(&mut stream, &encode_response(&frame_err(&e)));
                    return;
                }
            };
            last_activity = Instant::now();
            metrics().bytes_read.add(4 + payload.len() as u64);
            let _span = afforest_obs::span!("serve-request");
            // A malformed payload inside a well-delimited frame keeps the
            // stream in sync: answer Err and keep going.
            let resp = match decode_request(&payload) {
                Ok(req) => self.handle(&req),
                Err(e) => {
                    ServeStats::add(&self.shared.stats.protocol_errors, 1);
                    metrics().protocol_errors.inc();
                    frame_err(&e)
                }
            };
            let encoded = encode_response(&resp);
            // Chaos: tear the response frame mid-write. A torn frame
            // desynchronizes the stream, so the connection dies with it —
            // exactly what a crashed server looks like to the client.
            if let Some(f) = self.shared.faults.as_deref() {
                if let Some(keep) = f.on_frame(4 + encoded.len()) {
                    let mut framed = (encoded.len() as u32).to_le_bytes().to_vec();
                    framed.extend_from_slice(&encoded);
                    let _ = stream.write_all(&framed[..keep]);
                    metrics().bytes_written.add(keep as u64);
                    return;
                }
            }
            let done = matches!(resp, Response::Bye);
            if write_frame(&mut stream, &encoded).is_err() {
                return;
            }
            metrics().bytes_written.add(4 + encoded.len() as u64);
            if done {
                return;
            }
        }
    }

    /// Stops the writer (applying any still-queued edges first) and joins
    /// it. Idempotent.
    pub fn join_writer(&mut self) {
        self.shared.ingest.shutdown();
        if let Some(h) = self.writer.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_writer();
    }
}

fn frame_err(e: &FrameError) -> Response {
    Response::Err(e.to_string())
}

/// The single writer: drain → log → link → compress → publish, one epoch
/// per coalesced batch. The WAL append comes *before* the apply, so any
/// batch a reader can observe is already durable (modulo OS buffering;
/// DESIGN.md §11).
fn writer_loop(mut cc: IncrementalCc, shared: &Shared, policy: &BatchPolicy, mut wal: Option<Wal>) {
    let mut epoch = 0u64;
    loop {
        let (batch, oldest) = match shared.ingest.next_batch(policy) {
            Drained::Batch { edges, oldest } => (edges, oldest),
            Drained::Shutdown => {
                // Shutdown fully drained the queue: the final Stats answer
                // must say 0, not the depth of the last pre-drain push.
                shared.stats.queue_depth.store(0, Ordering::Relaxed);
                metrics().queue_depth.set(0);
                return;
            }
        };
        if let Some(w) = wal.as_mut() {
            // A failed append does not block the batch: the service stays
            // available and the gap surfaces in wal_errors instead.
            match w.append(&batch) {
                Ok(crate::wal::AppendOutcome::Logged) => {
                    ServeStats::add(&shared.stats.wal_records, 1);
                }
                Ok(_) => {} // injected fault: counted at the fault site
                Err(_) => {
                    ServeStats::add(&shared.stats.wal_errors, 1);
                    metrics().wal_errors.inc();
                    events::record(EventKind::WalError, [epoch + 1, 0, 0]);
                }
            }
        }
        epoch += 1;
        let applied = batch.len() as u64;
        shared.stats.applying.store(true, Ordering::Relaxed);
        let apply_start = Instant::now();
        {
            let _span = afforest_obs::span!("ingest-batch[{epoch}]");
            cc.insert_batch(&batch);
            if let Some(d) = policy.apply_delay {
                thread::sleep(d);
            }
            if let Some(d) = shared.faults.as_deref().and_then(|f| f.on_apply()) {
                thread::sleep(d);
            }
            shared.store.publish(Snapshot::new(epoch, &cc.labels()));
        }
        shared.stats.applying.store(false, Ordering::Relaxed);
        // Lag from the batch's oldest edge arriving to its epoch being
        // visible: queue wait + WAL append + link/compress + publish.
        let lag = oldest.elapsed();
        events::record(
            EventKind::BatchApplied,
            [epoch, applied, apply_start.elapsed().as_micros() as u64],
        );
        events::record(
            EventKind::EpochPublished,
            [epoch, applied, lag.as_micros() as u64],
        );
        let m = metrics();
        m.epoch.set(epoch);
        m.epochs_published.inc();
        m.edges_ingested.add(applied);
        m.epoch_publish_lag.record(lag.as_nanos() as u64);
        let depth = shared.ingest.depth() as u64;
        m.queue_depth.set(depth);
        ServeStats::add(&shared.stats.edges_ingested, applied);
        ServeStats::add(&shared.stats.epochs_published, 1);
        shared.stats.queue_depth.store(depth, Ordering::Relaxed);
        afforest_obs::count(afforest_obs::Counter::EdgesIngested, applied);
        afforest_obs::count(afforest_obs::Counter::EpochsPublished, 1);
        afforest_obs::count(afforest_obs::Counter::QueueDepth, applied);
        if let Some(w) = wal.as_mut() {
            if w.maybe_compact(&cc).is_err() {
                ServeStats::add(&shared.stats.wal_errors, 1);
                metrics().wal_errors.inc();
                events::record(EventKind::WalError, [epoch, 0, 0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> BatchPolicy {
        BatchPolicy {
            max_edges: 64,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        }
    }

    fn path_server(n: usize) -> Server {
        let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
        Server::new(n, &edges, quick_policy()).expect("start server")
    }

    #[test]
    fn serves_epoch_zero_queries() {
        let server = Server::new(6, &[(0, 1), (1, 2), (4, 5)], quick_policy()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::Component(2)),
            Response::Component(0)
        );
        assert_eq!(
            server.handle(&Request::ComponentSize(4)),
            Response::ComponentSize(2)
        );
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(3)
        );
    }

    #[test]
    fn inserts_become_visible_after_flush() {
        let server = Server::new(4, &[], quick_policy()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])),
            Response::Accepted { edges: 3 }
        );
        assert!(server.flush(Duration::from_secs(5)));
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(true)
        );
        let snap = server.snapshot();
        assert!(snap.epoch >= 1);
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 3);
    }

    #[test]
    fn out_of_range_requests_get_err_not_panic() {
        let server = path_server(5);
        for req in [
            Request::Connected(0, 5),
            Request::Connected(9, 9),
            Request::Component(5),
            Request::ComponentSize(u32::MAX),
            Request::InsertEdges(vec![(0, 1), (2, 5)]),
        ] {
            match server.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
        assert_eq!(ServeStats::get(&server.stats().protocol_errors), 5);
        // Rejected insert must not have queued anything.
        assert!(server.flush(Duration::from_secs(1)));
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 0);
    }

    #[test]
    fn stats_reflect_ingest_progress() {
        let server = Server::new(8, &[(0, 1)], quick_policy()).unwrap();
        server.handle(&Request::InsertEdges(vec![(2, 3), (4, 5)]));
        assert!(server.flush(Duration::from_secs(5)));
        match server.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 8);
                assert_eq!(s.edges_ingested, 2);
                assert!(s.epochs_published >= 1);
                assert_eq!(s.queue_depth, 0);
                assert!(s.epoch >= 1);
                assert_eq!(s.num_components, 5);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_request_sets_flag_and_answers_bye() {
        let server = path_server(3);
        assert!(!server.shutdown_requested());
        assert_eq!(server.handle(&Request::Shutdown), Response::Bye);
        assert!(server.shutdown_requested());
    }

    #[test]
    fn many_small_inserts_coalesce_into_few_epochs() {
        let server = Server::new(
            1_000,
            &[],
            BatchPolicy {
                max_edges: 256,
                max_delay: Duration::from_millis(20),
                apply_delay: None,
            },
        )
        .unwrap();
        for v in 1..1_000u32 {
            server.handle(&Request::InsertEdges(vec![(v - 1, v)]));
        }
        assert!(server.flush(Duration::from_secs(10)));
        let published = ServeStats::get(&server.stats().epochs_published);
        assert!(published >= 1);
        // 999 single-edge inserts must not mean 999 epochs: coalescing is
        // what makes the write path batched. The writer keeps up with the
        // producer, so well under half the inserts get their own epoch.
        assert!(published < 500, "no coalescing: {published} epochs");
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 999);
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(1)
        );
    }

    #[test]
    fn drop_applies_queued_edges_before_exit() {
        let mut server = Server::new(
            4,
            &[],
            BatchPolicy {
                // Deadline far away: edges sit queued until shutdown drain.
                max_edges: 1_000_000,
                max_delay: Duration::from_secs(600),
                apply_delay: None,
            },
        )
        .unwrap();
        server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2)]));
        server.join_writer();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
    }

    #[test]
    fn final_stats_after_shutdown_drain_report_empty_queue() {
        let mut server = Server::new(
            4,
            &[],
            BatchPolicy {
                max_edges: 1_000_000,
                max_delay: Duration::from_secs(600),
                apply_delay: None,
            },
        )
        .unwrap();
        server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2)]));
        // The push recorded a nonzero depth; the shutdown drain applies
        // the edges, so the final answer must say the queue is empty.
        assert_eq!(ServeStats::get(&server.stats().queue_depth), 2);
        server.join_writer();
        assert_eq!(ServeStats::get(&server.stats().queue_depth), 0);
        match server.handle(&Request::Stats) {
            Response::Stats(s) => assert_eq!(s.queue_depth, 0),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn full_queue_sheds_writes_but_keeps_answering_reads() {
        let server = Server::with_options(
            8,
            &[(0, 1)],
            ServerOptions {
                policy: BatchPolicy {
                    // The writer never wakes on its own: the queue only
                    // empties at shutdown, so the bound is actually hit.
                    max_edges: 1_000_000,
                    max_delay: Duration::from_secs(600),
                    apply_delay: None,
                },
                max_queue_depth: 4,
                ..ServerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])),
            Response::Accepted { edges: 3 }
        );
        // 3 pending + 2 > 4: shed.
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(3, 4), (4, 5)])),
            Response::Overloaded { queue_depth: 3 }
        );
        // A batch that still fits is admitted.
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(5, 6)])),
            Response::Accepted { edges: 1 }
        );
        assert_eq!(ServeStats::get(&server.stats().requests_shed), 1);
        // Reads keep answering while the write path sheds.
        assert_eq!(
            server.handle(&Request::Connected(0, 1)),
            Response::Connected(true)
        );
    }

    #[test]
    fn wal_backed_server_survives_restart() {
        let dir = std::env::temp_dir().join(format!("afforest-server-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed: Vec<(Node, Node)> = vec![(0, 1)];
        {
            let wal = crate::wal::Wal::open(&dir, 8, 0).unwrap();
            let server = Server::with_options(
                8,
                &seed,
                ServerOptions {
                    policy: quick_policy(),
                    wal: Some(wal),
                    ..ServerOptions::default()
                },
            )
            .unwrap();
            server.handle(&Request::InsertEdges(vec![(1, 2), (4, 5)]));
            assert!(server.flush(Duration::from_secs(5)));
            // Server drops here — simulating an orderly exit; a kill is
            // equivalent because the append preceded the apply.
        }
        let rec = crate::wal::recover(&dir, &seed).unwrap();
        let server = Server::from_cc(
            rec.cc,
            ServerOptions {
                policy: quick_policy(),
                ..ServerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(4, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 4)),
            Response::Connected(false)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
