//! The service runtime: tenant routing, the TCP front-end, and the
//! process-wide lifecycle.
//!
//! Since the multi-tenant refactor the server owns no graph state of its
//! own: every snapshot store, ingest queue, and writer thread lives in a
//! per-tenant [`crate::engine::Engine`], and the server is the
//! [`EngineRegistry`] that routes to them plus the shared concerns — the
//! TCP accept pool, the shutdown flag, the read deadline, the
//! process-wide admission backstop, and tenant lifecycle (create / drop
//! / list) itself.
//!
//! Wire compatibility: the TCP layer decodes *either* protocol version.
//! A v1 frame (no tenant envelope) is routed to the `default` tenant and
//! answered in v1; a v2 frame names its tenant and is answered in v2. A
//! pre-tenancy client binary therefore keeps working unmodified.
//!
//! [`Server::handle_for`] is the transport-independent request
//! evaluator; the TCP layer and the deterministic in-process tests both
//! go through it.

use crate::config::ServeConfig;
use crate::engine::{AdmitError, Backstop, Engine, EngineRegistry};
use crate::events::{self, EventKind};
use crate::ingest::ServeStats;
use crate::metrics::{metrics, op_index};
use crate::protocol::{
    decode_request_traced, encode_response, encode_response_v2, read_frame, write_frame,
    FrameError, Request, Response, StatsReport, WireError, WireVersion,
};
use crate::snapshot::Snapshot;
use crate::tenant::TenantId;
use crate::wal::{self, Wal, WalError};
use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_obs::reqtrace::{self, RootSpan, Stage};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// How long a blocked worker sleeps between accept attempts / shutdown
/// checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so a parked reader re-checks the shutdown
/// flag. Requests are single small frames, so a timeout mid-frame only
/// happens when the peer itself stalled mid-write.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Largest vertex universe a `CreateTenant` request may ask for; vertex
/// ids are `u32`, so anything past this could never be addressed.
const MAX_TENANT_VERTICES: u64 = u32::MAX as u64;

/// Why the service failed to start or serve.
#[derive(Debug)]
pub enum ServeError {
    /// The OS refused to start a service thread (named in `what`).
    Spawn {
        /// Which thread failed to start.
        what: &'static str,
    },
    /// The write-ahead log could not be opened or recovered.
    Wal(WalError),
    /// Transport-level failure (e.g. configuring the listener).
    Io(std::io::Error),
    /// Startup found more persisted tenant WAL directories than
    /// `max_tenants` allows.
    TenantCapacity {
        /// Tenants found on disk (including `default`).
        found: usize,
        /// The configured registry capacity.
        max: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Spawn { what } => write!(f, "failed to spawn {what} thread"),
            ServeError::Wal(e) => write!(f, "{e}"),
            ServeError::Io(e) => write!(f, "{e}"),
            ServeError::TenantCapacity { found, max } => write!(
                f,
                "recovered {found} tenant WAL directories but max_tenants is {max}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<WalError> for ServeError {
    fn from(e: WalError) -> Self {
        ServeError::Wal(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// A running multi-tenant connectivity service.
///
/// Dropping the server shuts every tenant's writer down cleanly
/// (remaining queued edges are applied first).
pub struct Server {
    registry: EngineRegistry,
    default: Arc<Engine>,
    backstop: Arc<Backstop>,
    config: ServeConfig,
    shutdown: AtomicBool,
}

impl Server {
    /// Builds the `default` tenant's epoch-0 snapshot from `edges`
    /// synchronously, then starts its writer thread. When
    /// `config.wal_root` is set, persisted non-default tenants found
    /// under it are recovered and started too.
    pub fn new(n: usize, edges: &[(Node, Node)], config: ServeConfig) -> Result<Self, ServeError> {
        Self::from_cc(
            {
                let mut cc = IncrementalCc::new(n);
                cc.insert_batch(edges);
                cc
            },
            config,
        )
    }

    /// Starts a server over an already-built structure for the `default`
    /// tenant (the recovery path: `wal::recover` yields the
    /// `IncrementalCc`, this serves it). The default tenant's existing
    /// log — if any — is appended to, not replayed: replay is the
    /// caller's explicit step.
    pub fn from_cc(cc: IncrementalCc, config: ServeConfig) -> Result<Self, ServeError> {
        let backstop = Arc::new(Backstop::new(config.max_total_queue_depth));
        // The builder validates max_tenants >= 1, but ServeConfig's
        // fields are public; clamp so a hand-rolled zero cannot make the
        // default tenant unadmittable.
        let registry = EngineRegistry::new(config.max_tenants.max(1));

        let mut persisted: Vec<(String, std::path::PathBuf)> = Vec::new();
        if let Some(root) = &config.wal_root {
            persisted = wal::tenant_dirs(root);
        }
        let non_default = persisted.iter().filter(|(n, _)| n != "default").count();
        if non_default + 1 > config.max_tenants.max(1) {
            return Err(ServeError::TenantCapacity {
                found: non_default + 1,
                max: config.max_tenants.max(1),
            });
        }

        let default_id = TenantId::default_tenant();
        let default_wal = open_tenant_wal(&config, &default_id, cc.len())?;
        let ordinal = registry.next_ordinal();
        let vertices = cc.len() as u64;
        let engine = Arc::new(Engine::start(
            default_id,
            ordinal,
            cc,
            &config,
            default_wal,
            Arc::clone(&backstop),
        )?);
        let default = Arc::clone(&engine);
        if let Err((engine, _)) = registry.admit(engine) {
            engine.join_writer();
            return Err(ServeError::Spawn { what: "registry" });
        }
        events::record(EventKind::TenantCreated, [ordinal, vertices, 0]);

        let server = Self {
            registry,
            default,
            backstop,
            config,
            shutdown: AtomicBool::new(false),
        };
        for (name, dir) in persisted {
            if name == "default" {
                continue;
            }
            // Persisted names passed TenantId validation in tenant_dirs.
            let Ok(tenant) = TenantId::new(&name) else {
                continue;
            };
            server.recover_tenant(&tenant, &dir)?;
        }
        Ok(server)
    }

    /// Recovers one persisted non-default tenant and admits it.
    fn recover_tenant(&self, tenant: &TenantId, dir: &std::path::Path) -> Result<(), ServeError> {
        let rec = wal::recover(dir, &[])?;
        let wal = Wal::open(dir, rec.vertices, self.config.wal_snapshot_every)?;
        let ordinal = self.registry.next_ordinal();
        let vertices = rec.vertices as u64;
        let engine = Arc::new(Engine::start(
            tenant.clone(),
            ordinal,
            rec.cc,
            &self.config,
            Some(wal),
            Arc::clone(&self.backstop),
        )?);
        match self.registry.admit(engine) {
            Ok(()) => {
                events::record(EventKind::TenantCreated, [ordinal, vertices, 0]);
                Ok(())
            }
            Err((engine, _)) => {
                engine.join_writer();
                Err(ServeError::TenantCapacity {
                    found: self.registry.len() + 1,
                    max: self.config.max_tenants.max(1),
                })
            }
        }
    }

    /// The `default` tenant's currently served epoch.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.default.snapshot()
    }

    /// The `default` tenant's always-on counters. Transport-level
    /// protocol errors (unframeable bytes, undecodable payloads,
    /// unknown tenants) are accounted here too.
    pub fn stats(&self) -> &ServeStats {
        self.default.stats()
    }

    /// Registered tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.registry.list()
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown (same effect as a `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Evaluates one request against the `default` tenant — the v1
    /// compatibility path, and what in-process single-tenant callers
    /// use.
    pub fn handle(&self, req: &Request) -> Response {
        self.handle_for(&TenantId::default_tenant(), req)
    }

    /// Evaluates one request against `tenant`'s engine. This is the
    /// transport-independent core: the TCP front-end and in-process
    /// tests both call it. Never panics; unanswerable requests become
    /// [`Response::Err`].
    ///
    /// Every call lands in the live telemetry plane: one per-op request
    /// counter and one per-op latency histogram (process-wide), plus the
    /// routed tenant's `tenant="..."`-labelled request counter.
    pub fn handle_for(&self, tenant: &TenantId, req: &Request) -> Response {
        let op = op_index(req);
        let start = Instant::now();
        let resp = self.handle_inner(tenant, req);
        let m = metrics();
        m.requests[op].inc();
        // The latency sample doubles as the histogram's exemplar when the
        // request is traced: /metrics then links p99 to a trace id.
        m.latency[op].record_traced(
            start.elapsed().as_nanos() as u64,
            reqtrace::current().trace_id,
        );
        resp
    }

    fn handle_inner(&self, tenant: &TenantId, req: &Request) -> Response {
        match req {
            Request::CreateTenant { name, vertices } => self.create_tenant(name, *vertices),
            Request::DropTenant { name } => self.drop_tenant(name),
            Request::ListTenants => Response::Tenants(self.registry.list()),
            Request::Metrics => Response::Metrics(afforest_obs::registry::expose()),
            Request::DumpTraces => Response::Traces {
                node: reqtrace::node().to_string(),
                spans: reqtrace::ring().snapshot(),
            },
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
            Request::Stats => match self.registry.get(tenant) {
                Some(e) => {
                    e.tenant_metrics().requests.inc();
                    Response::Stats(e.stats_report(self.registry.len() as u64))
                }
                None => self.unknown_tenant(tenant),
            },
            _ => match self.registry.get(tenant) {
                Some(e) => {
                    e.tenant_metrics().requests.inc();
                    e.handle(req)
                }
                None => self.unknown_tenant(tenant),
            },
        }
    }

    fn unknown_tenant(&self, tenant: &TenantId) -> Response {
        ServeStats::add(&self.default.stats().protocol_errors, 1);
        metrics().protocol_errors.inc();
        Response::Err(format!("no such tenant '{tenant}'"))
    }

    fn create_tenant(&self, name: &TenantId, vertices: u64) -> Response {
        if self.registry.get(name).is_some() {
            return Response::Err(format!("tenant '{name}' already exists"));
        }
        if vertices > MAX_TENANT_VERTICES {
            return Response::Err(format!(
                "vertices {vertices} exceeds the {MAX_TENANT_VERTICES} addressable by u32 ids"
            ));
        }
        let wal = match open_tenant_wal(&self.config, name, vertices as usize) {
            Ok(w) => w,
            Err(e) => return Response::Err(format!("tenant WAL: {e}")),
        };
        let ordinal = self.registry.next_ordinal();
        let engine = match Engine::start(
            name.clone(),
            ordinal,
            IncrementalCc::new(vertices as usize),
            &self.config,
            wal,
            Arc::clone(&self.backstop),
        ) {
            Ok(e) => Arc::new(e),
            Err(e) => return Response::Err(e.to_string()),
        };
        match self.registry.admit(engine) {
            Ok(()) => {
                events::record(EventKind::TenantCreated, [ordinal, vertices, 0]);
                Response::TenantCreated
            }
            Err((engine, AdmitError::Exists)) => {
                // Lost a create/create race: the winner owns the WAL
                // directory now, so only the speculative engine is torn
                // down.
                engine.join_writer();
                Response::Err(format!("tenant '{name}' already exists"))
            }
            Err((engine, AdmitError::Full)) => {
                engine.join_writer();
                if let Some(root) = &self.config.wal_root {
                    // The directory was created for a tenant that never
                    // existed; leaving it would resurrect it at restart.
                    let _ = std::fs::remove_dir_all(root.join(name.as_str()));
                }
                Response::Err(format!(
                    "tenant capacity reached ({} max)",
                    self.config.max_tenants.max(1)
                ))
            }
        }
    }

    fn drop_tenant(&self, name: &TenantId) -> Response {
        if name.is_default() {
            return Response::Err(
                "cannot drop tenant 'default': v1 clients route there".to_string(),
            );
        }
        match self.registry.remove(name) {
            None => {
                ServeStats::add(&self.default.stats().protocol_errors, 1);
                metrics().protocol_errors.inc();
                Response::Err(format!("no such tenant '{name}'"))
            }
            Some(engine) => {
                // The map guard is long released; winding the writer down
                // joins a thread, which must never happen under the lock.
                engine.join_writer();
                events::record(EventKind::TenantDropped, [engine.ordinal(), 0, 0]);
                if let Some(root) = &self.config.wal_root {
                    let _ = std::fs::remove_dir_all(root.join(name.as_str()));
                }
                Response::TenantDropped
            }
        }
    }

    /// Builds the `default` tenant's stats answer.
    pub fn stats_report(&self) -> StatsReport {
        self.default.stats_report(self.registry.len() as u64)
    }

    /// Waits until every tenant's queued edges have been applied and
    /// published (or `timeout` elapses). Returns whether every queue
    /// fully drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        for engine in self.registry.engines() {
            let left = deadline.saturating_duration_since(Instant::now());
            if !engine.flush(left) {
                return false;
            }
        }
        true
    }

    /// Serves `listener` with a pool of `workers` accept threads until a
    /// `Shutdown` request arrives. Each worker handles one connection at a
    /// time, so the pool size bounds concurrent connections.
    pub fn serve_tcp(&self, listener: TcpListener, workers: usize) -> Result<(), ServeError> {
        listener.set_nonblocking(true)?;
        let mut spawn_failed = false;
        thread::scope(|s| {
            for i in 0..workers.max(1) {
                let listener = &listener;
                let spawned = thread::Builder::new()
                    .name(format!("afforest-serve-worker-{i}"))
                    .spawn_scoped(s, move || self.accept_loop(listener, i));
                if spawned.is_err() {
                    // Tell the workers that did start to exit; the scope
                    // then joins them and we report the failure.
                    spawn_failed = true;
                    self.request_shutdown();
                    break;
                }
            }
        });
        if spawn_failed {
            return Err(ServeError::Spawn {
                what: "accept worker",
            });
        }
        Ok(())
    }

    fn accept_loop(&self, listener: &TcpListener, worker: usize) {
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Chaos: a worker may die instead of serving. The rest
                    // of the pool (and the listener) keep going.
                    if let Some(f) = self.config.faults.as_deref() {
                        if f.should_kill_worker() {
                            metrics().worker_deaths.inc();
                            events::record(EventKind::WorkerDeath, [worker as u64, 0, 0]);
                            return;
                        }
                    }
                    metrics().connections.inc();
                    self.serve_connection(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                // Transient accept failure (e.g. the peer aborted the
                // handshake): back off briefly and keep serving.
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Runs one connection's request/response loop until the peer closes,
    /// the stream desynchronizes, or shutdown is requested. Each frame is
    /// answered in the wire version it arrived in.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let mut last_activity = Instant::now();
        while !self.shutdown_requested() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                // Peer closed between frames.
                Ok(None) => return,
                // Read timeout: enforce the idle deadline, else loop to
                // re-check the shutdown flag.
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(deadline) = self.config.read_deadline {
                        if last_activity.elapsed() >= deadline {
                            return;
                        }
                    }
                    continue;
                }
                // Socket died.
                Err(WireError::Io(_)) => return,
                // Unframeable bytes: report, then drop the connection (a
                // bad length prefix means the stream is desynchronized).
                Err(WireError::Frame(e)) => {
                    ServeStats::add(&self.default.stats().protocol_errors, 1);
                    metrics().protocol_errors.inc();
                    let _ = write_frame(&mut stream, &encode_response(&frame_err(&e)));
                    return;
                }
            };
            last_activity = Instant::now();
            metrics().bytes_read.add(4 + payload.len() as u64);
            let _span = afforest_obs::span!("serve-request");
            // A malformed payload inside a well-delimited frame keeps the
            // stream in sync: answer Err and keep going.
            let (encoded, done) = match decode_request_traced(&payload) {
                Ok((version, tenant, ctx, req)) => {
                    // One root span per frame: children recorded while it
                    // is open (queue pushes, the engine's writer stages)
                    // hang off it, and the whole tree is retained only if
                    // the request was slow or degraded (tail sampling).
                    let root = RootSpan::begin(ctx, Stage::ShardRequest);
                    let _trace_scope = reqtrace::scoped(root.ctx());
                    let resp = self.handle_for(&tenant, &req);
                    if matches!(
                        resp,
                        Response::Err(_) | Response::Overloaded { .. } | Response::Degraded(_)
                    ) {
                        root.force_retain();
                    }
                    let done = matches!(resp, Response::Bye);
                    let encoded = match version {
                        WireVersion::V1 => encode_response(&resp),
                        WireVersion::V2 => encode_response_v2(&resp),
                    };
                    (encoded, done)
                }
                Err(e) => {
                    ServeStats::add(&self.default.stats().protocol_errors, 1);
                    metrics().protocol_errors.inc();
                    (encode_response(&frame_err(&e)), false)
                }
            };
            // Chaos: tear the response frame mid-write. A torn frame
            // desynchronizes the stream, so the connection dies with it —
            // exactly what a crashed server looks like to the client.
            if let Some(f) = self.config.faults.as_deref() {
                if let Some(keep) = f.on_frame(4 + encoded.len()) {
                    let mut framed = (encoded.len() as u32).to_le_bytes().to_vec();
                    framed.extend_from_slice(&encoded);
                    let _ = stream.write_all(&framed[..keep]);
                    metrics().bytes_written.add(keep as u64);
                    return;
                }
            }
            if write_frame(&mut stream, &encoded).is_err() {
                return;
            }
            metrics().bytes_written.add(4 + encoded.len() as u64);
            if done {
                return;
            }
        }
    }

    /// Stops every tenant's writer (applying any still-queued edges
    /// first) and joins them. Idempotent.
    pub fn join_writer(&mut self) {
        for engine in self.registry.engines() {
            engine.join_writer();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join_writer();
    }
}

/// Opens (creating as needed) `tenant`'s WAL under the configured root,
/// honouring the legacy single-tenant layout for `default`.
fn open_tenant_wal(
    config: &ServeConfig,
    tenant: &TenantId,
    vertices: usize,
) -> Result<Option<Wal>, WalError> {
    let Some(root) = &config.wal_root else {
        return Ok(None);
    };
    let dir = if tenant.is_default() {
        wal::default_wal_dir(root)
    } else {
        root.join(tenant.as_str())
    };
    Ok(Some(Wal::open(&dir, vertices, config.wal_snapshot_every)?))
}

fn frame_err(e: &FrameError) -> Response {
    Response::Err(e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::BatchPolicy;

    fn quick_policy() -> BatchPolicy {
        BatchPolicy {
            max_edges: 64,
            max_delay: Duration::from_millis(1),
            apply_delay: None,
        }
    }

    fn quick_config() -> ServeConfig {
        ServeConfig::builder()
            .policy(quick_policy())
            .build()
            .unwrap()
    }

    fn parked_policy() -> BatchPolicy {
        BatchPolicy {
            // Deadline far away: edges sit queued until shutdown drain.
            max_edges: 1_000_000,
            max_delay: Duration::from_secs(600),
            apply_delay: None,
        }
    }

    fn path_server(n: usize) -> Server {
        let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
        Server::new(n, &edges, quick_config()).expect("start server")
    }

    #[test]
    fn serves_epoch_zero_queries() {
        let server = Server::new(6, &[(0, 1), (1, 2), (4, 5)], quick_config()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::Component(2)),
            Response::Component(0)
        );
        assert_eq!(
            server.handle(&Request::ComponentSize(4)),
            Response::ComponentSize(2)
        );
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(3)
        );
    }

    #[test]
    fn inserts_become_visible_after_flush() {
        let server = Server::new(4, &[], quick_config()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(false)
        );
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])),
            Response::Accepted { edges: 3 }
        );
        assert!(server.flush(Duration::from_secs(5)));
        assert_eq!(
            server.handle(&Request::Connected(0, 3)),
            Response::Connected(true)
        );
        let snap = server.snapshot();
        assert!(snap.epoch >= 1);
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 3);
    }

    #[test]
    fn out_of_range_requests_get_err_not_panic() {
        let server = path_server(5);
        for req in [
            Request::Connected(0, 5),
            Request::Connected(9, 9),
            Request::Component(5),
            Request::ComponentSize(u32::MAX),
            Request::InsertEdges(vec![(0, 1), (2, 5)]),
        ] {
            match server.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
        assert_eq!(ServeStats::get(&server.stats().protocol_errors), 5);
        // Rejected insert must not have queued anything.
        assert!(server.flush(Duration::from_secs(1)));
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 0);
    }

    #[test]
    fn stats_reflect_ingest_progress() {
        let server = Server::new(8, &[(0, 1)], quick_config()).unwrap();
        server.handle(&Request::InsertEdges(vec![(2, 3), (4, 5)]));
        assert!(server.flush(Duration::from_secs(5)));
        match server.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 8);
                assert_eq!(s.edges_ingested, 2);
                assert!(s.epochs_published >= 1);
                assert_eq!(s.queue_depth, 0);
                assert!(s.epoch >= 1);
                assert_eq!(s.num_components, 5);
                assert_eq!(s.tenants, 1);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_request_sets_flag_and_answers_bye() {
        let server = path_server(3);
        assert!(!server.shutdown_requested());
        assert_eq!(server.handle(&Request::Shutdown), Response::Bye);
        assert!(server.shutdown_requested());
    }

    #[test]
    fn many_small_inserts_coalesce_into_few_epochs() {
        let server = Server::new(
            1_000,
            &[],
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_edges: 256,
                    max_delay: Duration::from_millis(20),
                    apply_delay: None,
                })
                .build()
                .unwrap(),
        )
        .unwrap();
        for v in 1..1_000u32 {
            server.handle(&Request::InsertEdges(vec![(v - 1, v)]));
        }
        assert!(server.flush(Duration::from_secs(10)));
        let published = ServeStats::get(&server.stats().epochs_published);
        assert!(published >= 1);
        // 999 single-edge inserts must not mean 999 epochs: coalescing is
        // what makes the write path batched. The writer keeps up with the
        // producer, so well under half the inserts get their own epoch.
        assert!(published < 500, "no coalescing: {published} epochs");
        assert_eq!(ServeStats::get(&server.stats().edges_ingested), 999);
        assert_eq!(
            server.handle(&Request::NumComponents),
            Response::NumComponents(1)
        );
    }

    #[test]
    fn drop_applies_queued_edges_before_exit() {
        let mut server = Server::new(
            4,
            &[],
            ServeConfig::builder()
                .policy(parked_policy())
                .build()
                .unwrap(),
        )
        .unwrap();
        server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2)]));
        server.join_writer();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
    }

    #[test]
    fn final_stats_after_shutdown_drain_report_empty_queue() {
        let mut server = Server::new(
            4,
            &[],
            ServeConfig::builder()
                .policy(parked_policy())
                .build()
                .unwrap(),
        )
        .unwrap();
        server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2)]));
        // The push recorded a nonzero depth; the shutdown drain applies
        // the edges, so the final answer must say the queue is empty.
        assert_eq!(ServeStats::get(&server.stats().queue_depth), 2);
        server.join_writer();
        assert_eq!(ServeStats::get(&server.stats().queue_depth), 0);
        match server.handle(&Request::Stats) {
            Response::Stats(s) => assert_eq!(s.queue_depth, 0),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn full_queue_sheds_writes_but_keeps_answering_reads() {
        let server = Server::new(
            8,
            &[(0, 1)],
            ServeConfig::builder()
                .policy(parked_policy())
                .max_queue_depth(4)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(0, 1), (1, 2), (2, 3)])),
            Response::Accepted { edges: 3 }
        );
        // 3 pending + 2 > 4: shed.
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(3, 4), (4, 5)])),
            Response::Overloaded { queue_depth: 3 }
        );
        // A batch that still fits is admitted.
        assert_eq!(
            server.handle(&Request::InsertEdges(vec![(5, 6)])),
            Response::Accepted { edges: 1 }
        );
        assert_eq!(ServeStats::get(&server.stats().requests_shed), 1);
        // Reads keep answering while the write path sheds.
        assert_eq!(
            server.handle(&Request::Connected(0, 1)),
            Response::Connected(true)
        );
    }

    #[test]
    fn tenants_are_created_listed_isolated_and_dropped() {
        let server = Server::new(4, &[(0, 1)], quick_config()).unwrap();
        let t = TenantId::new("acme").unwrap();
        assert_eq!(
            server.handle(&Request::CreateTenant {
                name: t.clone(),
                vertices: 3
            }),
            Response::TenantCreated
        );
        // Duplicate create is refused.
        match server.handle(&Request::CreateTenant {
            name: t.clone(),
            vertices: 3,
        }) {
            Response::Err(msg) => assert!(msg.contains("already exists"), "{msg}"),
            other => panic!("duplicate create answered {other:?}"),
        }
        assert_eq!(
            server.handle(&Request::ListTenants),
            Response::Tenants(vec!["acme".to_string(), "default".to_string()])
        );
        // The tenants are isolated: default's seed edge is invisible to
        // acme, and acme's smaller universe rejects default-sized ids.
        assert_eq!(
            server.handle_for(&t, &Request::Connected(0, 1)),
            Response::Connected(false)
        );
        match server.handle_for(&t, &Request::Connected(0, 3)) {
            Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected range error, got {other:?}"),
        }
        server.handle_for(&t, &Request::InsertEdges(vec![(0, 2)]));
        assert!(server.flush(Duration::from_secs(5)));
        assert_eq!(
            server.handle_for(&t, &Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(false)
        );
        // Per-tenant stats see only that tenant's ingest.
        match server.handle_for(&t, &Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 3);
                assert_eq!(s.edges_ingested, 1);
                assert_eq!(s.tenants, 2);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        // Drop, and the tenant stops routing.
        assert_eq!(
            server.handle(&Request::DropTenant { name: t.clone() }),
            Response::TenantDropped
        );
        match server.handle_for(&t, &Request::NumComponents) {
            Response::Err(msg) => assert!(msg.contains("no such tenant"), "{msg}"),
            other => panic!("expected unknown tenant, got {other:?}"),
        }
    }

    #[test]
    fn default_tenant_cannot_be_dropped() {
        let server = path_server(3);
        match server.handle(&Request::DropTenant {
            name: TenantId::default_tenant(),
        }) {
            Response::Err(msg) => assert!(msg.contains("cannot drop"), "{msg}"),
            other => panic!("expected refusal, got {other:?}"),
        }
        assert_eq!(server.tenants(), vec!["default".to_string()]);
    }

    #[test]
    fn tenant_capacity_is_enforced() {
        let server = Server::new(
            3,
            &[],
            ServeConfig::builder()
                .policy(quick_policy())
                .max_tenants(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            server.handle(&Request::CreateTenant {
                name: TenantId::new("one").unwrap(),
                vertices: 2
            }),
            Response::TenantCreated
        );
        match server.handle(&Request::CreateTenant {
            name: TenantId::new("two").unwrap(),
            vertices: 2,
        }) {
            Response::Err(msg) => assert!(msg.contains("capacity"), "{msg}"),
            other => panic!("expected capacity refusal, got {other:?}"),
        }
    }

    #[test]
    fn wal_backed_server_survives_restart() {
        let dir = std::env::temp_dir().join(format!("afforest-server-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let seed: Vec<(Node, Node)> = vec![(0, 1)];
        let wal_config = || {
            ServeConfig::builder()
                .policy(quick_policy())
                .wal_root(Some(dir.clone()))
                .build()
                .unwrap()
        };
        {
            let server = Server::new(8, &seed, wal_config()).unwrap();
            server.handle(&Request::InsertEdges(vec![(1, 2), (4, 5)]));
            assert!(server.flush(Duration::from_secs(5)));
            // Server drops here — simulating an orderly exit; a kill is
            // equivalent because the append preceded the apply.
        }
        let rec = crate::wal::recover(&wal::default_wal_dir(&dir), &seed).unwrap();
        let server = Server::from_cc(rec.cc, wal_config()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(4, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(0, 4)),
            Response::Connected(false)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_wal_layout_is_served_in_place() {
        // A pre-tenancy deployment has wal.log directly in the root; the
        // default tenant must keep using it there rather than starting a
        // fresh log under <root>/default/.
        let dir = std::env::temp_dir().join(format!("afforest-legacy-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut wal = Wal::open(&dir, 8, 0).unwrap();
            wal.append(&[(0, 1), (1, 2)]).unwrap();
        }
        assert_eq!(wal::default_wal_dir(&dir), dir);
        let rec = crate::wal::recover(&dir, &[]).unwrap();
        {
            let server = Server::from_cc(
                rec.cc,
                ServeConfig::builder()
                    .policy(quick_policy())
                    .wal_root(Some(dir.clone()))
                    .build()
                    .unwrap(),
            )
            .unwrap();
            server.handle(&Request::InsertEdges(vec![(4, 5)]));
            assert!(server.flush(Duration::from_secs(5)));
        }
        // Everything — legacy seed and new appends — recovers from the
        // root-level log.
        let rec = crate::wal::recover(&dir, &[]).unwrap();
        assert!(!dir.join("default").exists());
        let server = Server::from_cc(rec.cc, quick_config()).unwrap();
        assert_eq!(
            server.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        assert_eq!(
            server.handle(&Request::Connected(4, 5)),
            Response::Connected(true)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_tenants_restart_with_the_server() {
        let dir = std::env::temp_dir().join(format!("afforest-tenant-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = TenantId::new("persisted").unwrap();
        let wal_config = || {
            ServeConfig::builder()
                .policy(quick_policy())
                .wal_root(Some(dir.clone()))
                .build()
                .unwrap()
        };
        {
            let server = Server::new(4, &[], wal_config()).unwrap();
            assert_eq!(
                server.handle(&Request::CreateTenant {
                    name: t.clone(),
                    vertices: 6
                }),
                Response::TenantCreated
            );
            server.handle_for(&t, &Request::InsertEdges(vec![(3, 4)]));
            assert!(server.flush(Duration::from_secs(5)));
        }
        let server = Server::new(4, &[], wal_config()).unwrap();
        assert_eq!(
            server.tenants(),
            vec!["default".to_string(), "persisted".to_string()]
        );
        assert_eq!(
            server.handle_for(&t, &Request::Connected(3, 4)),
            Response::Connected(true)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
