//! Mixed-workload load generator for the service.
//!
//! Spawns `connections` client threads, each driving its own transport
//! with a seeded RNG: reads (`Connected` / `Component` / `ComponentSize`
//! / `NumComponents`, rotated uniformly) versus writes (`InsertEdges` of
//! `insert_batch` random edges) in a configurable ratio. Every request's
//! wall-clock latency lands in a per-thread log₂ [`Histogram`]
//! (`afforest-obs`), merged at the end into a [`LoadgenReport`] with
//! throughput and p50/p95/p99.
//!
//! The generator is transport-generic: the CLI runs it over TCP, the
//! tests run it over the in-process [`Transport`] impl on
//! [`crate::Server`], so the workload logic itself is exercised without a
//! socket.

use crate::protocol::{Request, Response, WireError};
use crate::server::Server;
use afforest_graph::Node;
use afforest_obs::Histogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Anything that can answer a [`Request`]: a TCP connection or the server
/// itself (in-process, for deterministic tests).
pub trait Transport {
    /// Performs one blocking request/response exchange.
    fn call(&mut self, req: &Request) -> Result<Response, WireError>;
}

impl Transport for std::net::TcpStream {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        crate::protocol::call(self, req)
    }
}

/// In-process transport: no socket, no frame encoding, same semantics.
impl Transport for &Server {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        Ok(self.handle(req))
    }
}

/// Workload shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Percentage of requests that are reads (0–100).
    pub read_pct: u32,
    /// Edges per `InsertEdges` request.
    pub insert_batch: usize,
    /// Base RNG seed (each connection derives its own stream).
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests: 20_000,
            read_pct: 90,
            insert_batch: 64,
            seed: 42,
        }
    }
}

/// Aggregated result of one load-generator run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests completed.
    pub requests: u64,
    /// Read requests completed.
    pub reads: u64,
    /// Write (`InsertEdges`) requests completed.
    pub writes: u64,
    /// `Response::Err` answers received (protocol errors).
    pub errors: u64,
    /// Connections used.
    pub connections: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-request latency distribution (log₂ buckets).
    pub latency: Histogram,
}

impl LoadgenReport {
    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// `(p50, p95, p99)` request latency in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.latency.percentile(0.50),
            self.latency.percentile(0.95),
            self.latency.percentile(0.99),
        )
    }

    /// Human-readable summary (the `loadgen` subcommand's output).
    pub fn render(&self) -> String {
        let (p50, p95, p99) = self.percentiles();
        let read_share = if self.requests > 0 {
            100.0 * self.reads as f64 / self.requests as f64
        } else {
            0.0
        };
        format!(
            "loadgen: {} requests ({:.0}% reads) over {} connections in {:.3} s\n\
             throughput: {:.0} req/s\n\
             latency:    p50 {}  p95 {}  p99 {}  max {}\n\
             errors:     {}\n",
            self.requests,
            read_share,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            fmt_ns(p50),
            fmt_ns(p95),
            fmt_ns(p99),
            fmt_ns(if self.latency.count > 0 {
                self.latency.max_ns
            } else {
                0
            }),
            self.errors,
        )
    }

    /// Canonical JSON encoding (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> String {
        let (p50, p95, p99) = self.percentiles();
        format!(
            "{{\n  \"requests\": {},\n  \"reads\": {},\n  \"writes\": {},\n  \
             \"errors\": {},\n  \"connections\": {},\n  \"elapsed_s\": {:.6},\n  \
             \"throughput_rps\": {:.1},\n  \"latency_ns\": {{ \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {} }}\n}}\n",
            self.requests,
            self.reads,
            self.writes,
            self.errors,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            p50,
            p95,
            p99,
            if self.latency.count > 0 {
                self.latency.max_ns
            } else {
                0
            },
        )
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-thread tally folded into the report after join.
#[derive(Default)]
struct ThreadTally {
    requests: u64,
    reads: u64,
    writes: u64,
    errors: u64,
    latency: Histogram,
}

/// Runs the workload. `connect(i)` opens the `i`-th connection's
/// transport. The vertex universe is learned from an initial `Stats`
/// probe on connection 0's transport.
pub fn run<T, F>(cfg: &LoadgenConfig, connect: F) -> Result<LoadgenReport, WireError>
where
    T: Transport,
    F: Fn(usize) -> Result<T, WireError> + Sync,
{
    // Learn the graph size once; the probe is not part of the timed run.
    let vertices = {
        let mut probe = connect(0)?;
        match probe.call(&Request::Stats)? {
            Response::Stats(s) => s.vertices as usize,
            other => {
                return Err(WireError::Io(std::io::Error::other(format!(
                    "stats probe answered {other:?}"
                ))))
            }
        }
    };
    if vertices == 0 {
        return Err(WireError::Io(std::io::Error::other(
            "cannot generate load against an empty graph",
        )));
    }

    let connections = cfg.connections.max(1);
    let started = Instant::now();
    let tallies: Vec<Result<ThreadTally, WireError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                // Split cfg.requests evenly; the first threads absorb the
                // remainder.
                let share =
                    cfg.requests / connections + usize::from(i < cfg.requests % connections);
                let connect = &connect;
                s.spawn(move || {
                    let mut transport = connect(i)?;
                    drive(cfg, i, share, vertices, &mut transport)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadgenReport {
        requests: 0,
        reads: 0,
        writes: 0,
        errors: 0,
        connections,
        elapsed,
        latency: Histogram::new("request"),
    };
    for tally in tallies {
        let t = tally?;
        report.requests += t.requests;
        report.reads += t.reads;
        report.writes += t.writes;
        report.errors += t.errors;
        report.latency.merge(&t.latency);
    }
    Ok(report)
}

/// One connection's request loop.
fn drive<T: Transport>(
    cfg: &LoadgenConfig,
    conn_idx: usize,
    share: usize,
    vertices: usize,
    transport: &mut T,
) -> Result<ThreadTally, WireError> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9E37));
    let mut tally = ThreadTally {
        latency: Histogram::new("request"),
        ..Default::default()
    };
    let n = vertices as Node;
    for _ in 0..share {
        let is_read = rng.random_bool(f64::from(cfg.read_pct.min(100)) / 100.0);
        let req = if is_read {
            match rng.random_range(0u32..4) {
                0 => Request::Connected(rng.random_range(0..n), rng.random_range(0..n)),
                1 => Request::Component(rng.random_range(0..n)),
                2 => Request::ComponentSize(rng.random_range(0..n)),
                _ => Request::NumComponents,
            }
        } else {
            let edges = (0..cfg.insert_batch.max(1))
                .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                .collect();
            Request::InsertEdges(edges)
        };
        let t = Instant::now();
        let resp = transport.call(&req)?;
        tally.latency.record(t.elapsed().as_nanos() as u64);
        tally.requests += 1;
        if is_read {
            tally.reads += 1;
        } else {
            tally.writes += 1;
        }
        if matches!(resp, Response::Err(_)) {
            tally.errors += 1;
        }
    }
    Ok(tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::BatchPolicy;

    fn tiny_server(n: usize) -> Server {
        let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
        Server::new(n, &edges, BatchPolicy::default())
    }

    #[test]
    fn in_process_mixed_workload_has_zero_errors() {
        let server = tiny_server(500);
        let cfg = LoadgenConfig {
            connections: 3,
            requests: 3_000,
            read_pct: 80,
            insert_batch: 8,
            seed: 7,
        };
        let report = run(&cfg, |_| Ok(&server)).unwrap();
        assert_eq!(report.requests, 3_000);
        assert_eq!(report.errors, 0, "{}", report.render());
        assert_eq!(report.reads + report.writes, report.requests);
        assert!(report.reads > report.writes);
        assert_eq!(report.latency.count, 3_000);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn all_reads_and_all_writes_extremes() {
        let server = tiny_server(100);
        let reads = run(
            &LoadgenConfig {
                connections: 1,
                requests: 200,
                read_pct: 100,
                insert_batch: 4,
                seed: 1,
            },
            |_| Ok(&server),
        )
        .unwrap();
        assert_eq!(reads.writes, 0);
        assert_eq!(reads.reads, 200);

        let writes = run(
            &LoadgenConfig {
                connections: 1,
                requests: 50,
                read_pct: 0,
                insert_batch: 4,
                seed: 1,
            },
            |_| Ok(&server),
        )
        .unwrap();
        assert_eq!(writes.reads, 0);
        assert_eq!(writes.writes, 50);
        assert!(server.flush(Duration::from_secs(10)));
        assert_eq!(
            crate::ingest::ServeStats::get(&server.stats().edges_ingested),
            50 * 4
        );
    }

    #[test]
    fn report_renders_and_encodes() {
        let server = tiny_server(64);
        let report = run(
            &LoadgenConfig {
                connections: 2,
                requests: 100,
                read_pct: 90,
                insert_batch: 2,
                seed: 3,
            },
            |_| Ok(&server),
        )
        .unwrap();
        let text = report.render();
        assert!(text.contains("throughput"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"throughput_rps\""), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        // Requests split across 2 connections must still total 100.
        assert_eq!(report.requests, 100);
    }

    #[test]
    fn empty_graph_is_rejected_up_front() {
        let server = Server::new(0, &[], BatchPolicy::default());
        let err = run(&LoadgenConfig::default(), |_| Ok(&server)).unwrap_err();
        assert!(err.to_string().contains("empty graph"), "{err}");
    }
}
