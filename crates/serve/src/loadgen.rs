//! Mixed-workload load generator for the service.
//!
//! Spawns `connections` client threads, each driving its own transport
//! with a seeded RNG: reads (`Connected` / `Component` / `ComponentSize`
//! / `NumComponents`, rotated uniformly) versus writes (`InsertEdges` of
//! `insert_batch` random edges) in a configurable ratio. Every request's
//! wall-clock latency lands in a per-thread log₂ [`Histogram`]
//! (`afforest-obs`), merged at the end into a [`LoadgenReport`] with
//! throughput and p50/p95/p99.
//!
//! The generator is transport-generic: the CLI runs it over TCP, the
//! tests run it over the in-process [`Transport`] impl on
//! [`crate::Server`], so the workload logic itself is exercised without a
//! socket.
//!
//! Writes the server sheds ([`Response::Overloaded`]), calls that time
//! out, and calls that die with the connection (a torn frame or a reset —
//! routine against a `--faults` server) are retried with capped
//! exponential backoff plus jitter (up to [`LoadgenConfig::max_retries`]
//! attempts, reopening the transport after a disconnect), and each class
//! is reported separately from protocol errors — a load-shedding or
//! chaos-injected server is degraded, not broken, and the report keeps
//! the distinctions legible.

use crate::client::{backoff, is_disconnect, Client};
use crate::protocol::{Request, Response, WireError};
use crate::server::Server;
use crate::tenant::TenantId;
use afforest_graph::Node;
use afforest_obs::Histogram;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

pub use crate::client::MAX_BACKOFF;

/// Anything that can answer a [`Request`]: a typed [`Client`] over TCP
/// or the server itself (in-process, for deterministic tests).
pub trait Transport {
    /// Performs one blocking request/response exchange.
    fn call(&mut self, req: &Request) -> Result<Response, WireError>;
}

/// The TCP transport is the typed client — a single attempt per call;
/// the load generator owns retries so it can tally them.
impl Transport for Client {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        Client::call(self, req)
    }
}

/// In-process transport: no socket, no frame encoding, same semantics.
impl Transport for &Server {
    fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        Ok(self.handle(req))
    }
}

/// Workload shape.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Percentage of requests that are reads (0–100).
    pub read_pct: u32,
    /// Edges per `InsertEdges` request.
    pub insert_batch: usize,
    /// Base RNG seed (each connection derives its own stream).
    pub seed: u64,
    /// Retry a shed or timed-out request at most this many times before
    /// giving up on it (0 = never retry).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (jittered ±50%, capped at
    /// [`MAX_BACKOFF`]).
    pub retry_backoff: Duration,
    /// Tenant to aim the workload at (`None` = the `default` tenant over
    /// wire v1). Consumed by the transport factory — the CLI scopes its
    /// [`Client`]s with it; the in-process test transport routes to
    /// `default` regardless.
    pub tenant: Option<TenantId>,
    /// Shard-locality for writes: when `> 1`, the vertex space is
    /// treated as that many contiguous `Block` slices
    /// (`distrib::VertexPartition`) and a `local_pct` share of insert
    /// batches draw both endpoints inside one randomly chosen slice —
    /// the workload shape a sharded router rewards. `0` or `1` keeps
    /// writes uniform over the whole vertex space.
    pub write_shards: usize,
    /// Percentage (0–100) of insert batches that are shard-local when
    /// `write_shards > 1`; the remainder stay uniform and so are mostly
    /// cut edges.
    pub local_pct: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            requests: 20_000,
            read_pct: 90,
            insert_batch: 64,
            seed: 42,
            max_retries: 3,
            retry_backoff: Duration::from_micros(500),
            tenant: None,
            write_shards: 0,
            local_pct: 90,
        }
    }
}

/// Aggregated result of one load-generator run.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Requests completed.
    pub requests: u64,
    /// Read requests completed.
    pub reads: u64,
    /// Write (`InsertEdges`) requests completed.
    pub writes: u64,
    /// `Response::Err` answers received (protocol errors).
    pub errors: u64,
    /// [`Response::Overloaded`] answers received (shed writes; each
    /// attempt counts).
    pub shed: u64,
    /// Calls that timed out at the transport (each attempt counts).
    pub timeouts: u64,
    /// Connections that died mid-call and were reopened (each attempt
    /// counts) — torn frames and resets land here.
    pub reconnects: u64,
    /// Backed-off re-attempts performed after a shed, timeout, or
    /// disconnect.
    pub retries: u64,
    /// Requests abandoned after exhausting [`LoadgenConfig::max_retries`].
    pub gave_up: u64,
    /// Connections used.
    pub connections: usize,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-request latency distribution (log₂ buckets).
    pub latency: Histogram,
}

impl LoadgenReport {
    /// Requests per second over the whole run.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// `(p50, p95, p99)` request latency in nanoseconds.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (
            self.latency.percentile(0.50),
            self.latency.percentile(0.95),
            self.latency.percentile(0.99),
        )
    }

    /// Human-readable summary (the `loadgen` subcommand's output).
    pub fn render(&self) -> String {
        let (p50, p95, p99) = self.percentiles();
        let read_share = if self.requests > 0 {
            100.0 * self.reads as f64 / self.requests as f64
        } else {
            0.0
        };
        // An empty histogram's percentiles are the NO_SAMPLES sentinel;
        // "0ns" would read as a real measurement, so show dashes.
        let quantile = |v: u64| {
            if self.latency.count > 0 {
                fmt_ns(v)
            } else {
                "-".to_string()
            }
        };
        format!(
            "loadgen: {} requests ({:.0}% reads) over {} connections in {:.3} s\n\
             throughput: {:.0} req/s\n\
             latency:    p50 {}  p95 {}  p99 {}  max {}\n\
             errors:     {}\n\
             shed:       {} (timeouts {}, reconnects {}, retries {}, gave up {})\n",
            self.requests,
            read_share,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            quantile(p50),
            quantile(p95),
            quantile(p99),
            quantile(self.latency.max_ns),
            self.errors,
            self.shed,
            self.timeouts,
            self.reconnects,
            self.retries,
            self.gave_up,
        )
    }

    /// Canonical JSON encoding (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> String {
        let (p50, p95, p99) = self.percentiles();
        format!(
            "{{\n  \"requests\": {},\n  \"reads\": {},\n  \"writes\": {},\n  \
             \"errors\": {},\n  \"shed\": {},\n  \"timeouts\": {},\n  \
             \"reconnects\": {},\n  \"retries\": {},\n  \"gave_up\": {},\n  \
             \"connections\": {},\n  \"elapsed_s\": {:.6},\n  \
             \"throughput_rps\": {:.1},\n  \"latency_ns\": {{ \"p50\": {}, \
             \"p95\": {}, \"p99\": {}, \"max\": {} }}\n}}\n",
            self.requests,
            self.reads,
            self.writes,
            self.errors,
            self.shed,
            self.timeouts,
            self.reconnects,
            self.retries,
            self.gave_up,
            self.connections,
            self.elapsed.as_secs_f64(),
            self.throughput_rps(),
            p50,
            p95,
            p99,
            if self.latency.count > 0 {
                self.latency.max_ns
            } else {
                0
            },
        )
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Per-thread tally folded into the report after join.
#[derive(Default)]
struct ThreadTally {
    requests: u64,
    reads: u64,
    writes: u64,
    errors: u64,
    shed: u64,
    timeouts: u64,
    reconnects: u64,
    retries: u64,
    gave_up: u64,
    latency: Histogram,
}

/// Runs the workload. `connect(i)` opens the `i`-th connection's
/// transport. The vertex universe is learned from an initial `Stats`
/// probe on connection 0's transport.
pub fn run<T, F>(cfg: &LoadgenConfig, connect: F) -> Result<LoadgenReport, WireError>
where
    T: Transport,
    F: Fn(usize) -> Result<T, WireError> + Sync,
{
    // Learn the graph size once; the probe is not part of the timed run.
    // A chaos server can tear even this first response, so the probe gets
    // a few reconnect attempts of its own.
    let vertices = {
        let mut probe = connect(0)?;
        let mut attempts = 0u32;
        loop {
            match probe.call(&Request::Stats) {
                Ok(Response::Stats(s)) => break s.vertices as usize,
                // A sharded router with a dead shard degrades the
                // aggregate; the surviving shards still carry the
                // vertex count, which is all the probe wants.
                Ok(Response::Degraded(inner)) => match *inner {
                    Response::Stats(s) => break s.vertices as usize,
                    other => {
                        return Err(WireError::Io(std::io::Error::other(format!(
                            "stats probe answered Degraded({other:?})"
                        ))))
                    }
                },
                Ok(other) => {
                    return Err(WireError::Io(std::io::Error::other(format!(
                        "stats probe answered {other:?}"
                    ))))
                }
                Err(e) if is_disconnect(&e) && attempts < 5 => {
                    attempts += 1;
                    probe = connect(0)?;
                }
                Err(e) => return Err(e),
            }
        }
    };
    if vertices == 0 {
        return Err(WireError::Io(std::io::Error::other(
            "cannot generate load against an empty graph",
        )));
    }

    let connections = cfg.connections.max(1);
    let started = Instant::now();
    let tallies: Vec<Result<ThreadTally, WireError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                // Split cfg.requests evenly; the first threads absorb the
                // remainder.
                let share =
                    cfg.requests / connections + usize::from(i < cfg.requests % connections);
                let connect = &connect;
                s.spawn(move || drive(cfg, i, share, vertices, connect))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadgenReport {
        requests: 0,
        reads: 0,
        writes: 0,
        errors: 0,
        shed: 0,
        timeouts: 0,
        reconnects: 0,
        retries: 0,
        gave_up: 0,
        connections,
        elapsed,
        latency: Histogram::new("request"),
    };
    for tally in tallies {
        let t = tally?;
        report.requests += t.requests;
        report.reads += t.reads;
        report.writes += t.writes;
        report.errors += t.errors;
        report.shed += t.shed;
        report.timeouts += t.timeouts;
        report.reconnects += t.reconnects;
        report.retries += t.retries;
        report.gave_up += t.gave_up;
        report.latency.merge(&t.latency);
    }
    Ok(report)
}

/// One connection's request loop. Owns its transport and reopens it via
/// `connect` when a call dies with the connection.
fn drive<T, F>(
    cfg: &LoadgenConfig,
    conn_idx: usize,
    share: usize,
    vertices: usize,
    connect: &F,
) -> Result<ThreadTally, WireError>
where
    T: Transport,
    F: Fn(usize) -> Result<T, WireError>,
{
    let mut transport = connect(conn_idx)?;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (conn_idx as u64).wrapping_mul(0x9E37));
    let mut tally = ThreadTally {
        latency: Histogram::new("request"),
        ..Default::default()
    };
    let n = vertices as Node;
    // Contiguous Block slices for shard-local writes; computed once per
    // connection (the partition itself is O(n) to build).
    let slices: Vec<std::ops::Range<Node>> = if cfg.write_shards > 1 {
        let part = afforest_distrib::VertexPartition::new(
            vertices,
            cfg.write_shards,
            afforest_distrib::PartitionKind::Block,
        );
        (0..cfg.write_shards)
            .filter_map(|k| part.rank_range(k))
            .filter(|r| !r.is_empty())
            .collect()
    } else {
        Vec::new()
    };
    for _ in 0..share {
        let is_read = rng.random_bool(f64::from(cfg.read_pct.min(100)) / 100.0);
        let req = if is_read {
            match rng.random_range(0u32..4) {
                0 => Request::Connected(rng.random_range(0..n), rng.random_range(0..n)),
                1 => Request::Component(rng.random_range(0..n)),
                2 => Request::ComponentSize(rng.random_range(0..n)),
                _ => Request::NumComponents,
            }
        } else {
            let local = !slices.is_empty() && rng.random_range(0u32..100) < cfg.local_pct.min(100);
            let edges = if local {
                let slice = slices[rng.random_range(0..slices.len())].clone();
                (0..cfg.insert_batch.max(1))
                    .map(|_| {
                        (
                            rng.random_range(slice.clone()),
                            rng.random_range(slice.clone()),
                        )
                    })
                    .collect()
            } else {
                (0..cfg.insert_batch.max(1))
                    .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
                    .collect()
            };
            Request::InsertEdges(edges)
        };
        let resp = call_with_retry(cfg, &mut transport, &req, &mut rng, &mut tally, || {
            connect(conn_idx)
        })?;
        tally.requests += 1;
        if is_read {
            tally.reads += 1;
        } else {
            tally.writes += 1;
        }
        if matches!(resp, Some(Response::Err(_))) {
            tally.errors += 1;
        }
    }
    Ok(tally)
}

/// Issues one request, retrying shed, timed-out, and disconnected
/// attempts with capped exponential backoff + jitter (a disconnect
/// reopens the transport first — the request's fate on the server is
/// unknown, but edge insertion is idempotent for connectivity, so a
/// blind re-send is safe). Returns `None` if every attempt failed (the
/// request is abandoned, not an error); hard transport failures —
/// including a reconnect that cannot be established — still propagate.
/// Latency is recorded per *attempt*, so backoff sleeps never inflate
/// the latency distribution.
fn call_with_retry<T: Transport>(
    cfg: &LoadgenConfig,
    transport: &mut T,
    req: &Request,
    rng: &mut SmallRng,
    tally: &mut ThreadTally,
    reconnect: impl Fn() -> Result<T, WireError>,
) -> Result<Option<Response>, WireError> {
    let mut attempt = 0u32;
    loop {
        let t = Instant::now();
        let outcome = transport.call(req);
        tally.latency.record(t.elapsed().as_nanos() as u64);
        match outcome {
            Ok(Response::Overloaded { .. }) => tally.shed += 1,
            Ok(resp) => return Ok(Some(resp)),
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                tally.timeouts += 1;
            }
            Err(e) if is_disconnect(&e) => {
                tally.reconnects += 1;
                *transport = reconnect()?;
            }
            Err(e) => return Err(e),
        }
        if attempt >= cfg.max_retries {
            tally.gave_up += 1;
            return Ok(None);
        }
        attempt += 1;
        tally.retries += 1;
        afforest_obs::count(afforest_obs::Counter::Retries, 1);
        afforest_obs::registry::counter("afforest_client_retries_total").inc();
        std::thread::sleep(backoff(cfg.retry_backoff, attempt, rng));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::ingest::BatchPolicy;

    fn tiny_server(n: usize) -> Server {
        let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
        Server::new(n, &edges, ServeConfig::builder().build().unwrap()).expect("start server")
    }

    #[test]
    fn in_process_mixed_workload_has_zero_errors() {
        let server = tiny_server(500);
        let cfg = LoadgenConfig {
            connections: 3,
            requests: 3_000,
            read_pct: 80,
            insert_batch: 8,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let report = run(&cfg, |_| Ok(&server)).unwrap();
        assert_eq!(report.requests, 3_000);
        assert_eq!(report.errors, 0, "{}", report.render());
        assert_eq!(report.reads + report.writes, report.requests);
        assert!(report.reads > report.writes);
        assert_eq!(report.latency.count, 3_000);
        assert!(report.throughput_rps() > 0.0);
    }

    #[test]
    fn empty_report_renders_dashes_not_zero_latency() {
        let server = tiny_server(10);
        let report = run(
            &LoadgenConfig {
                connections: 1,
                requests: 0,
                ..LoadgenConfig::default()
            },
            |_| Ok(&server),
        )
        .unwrap();
        assert_eq!(report.latency.count, 0);
        let text = report.render();
        // The NO_SAMPLES sentinel must not surface as a "0ns" reading.
        assert!(text.contains("p50 -  p95 -  p99 -  max -"), "{text}");
    }

    #[test]
    fn all_reads_and_all_writes_extremes() {
        let server = tiny_server(100);
        let reads = run(
            &LoadgenConfig {
                connections: 1,
                requests: 200,
                read_pct: 100,
                insert_batch: 4,
                seed: 1,
                ..LoadgenConfig::default()
            },
            |_| Ok(&server),
        )
        .unwrap();
        assert_eq!(reads.writes, 0);
        assert_eq!(reads.reads, 200);

        let writes = run(
            &LoadgenConfig {
                connections: 1,
                requests: 50,
                read_pct: 0,
                insert_batch: 4,
                seed: 1,
                ..LoadgenConfig::default()
            },
            |_| Ok(&server),
        )
        .unwrap();
        assert_eq!(writes.reads, 0);
        assert_eq!(writes.writes, 50);
        assert!(server.flush(Duration::from_secs(10)));
        assert_eq!(
            crate::ingest::ServeStats::get(&server.stats().edges_ingested),
            50 * 4
        );
    }

    #[test]
    fn report_renders_and_encodes() {
        let server = tiny_server(64);
        let report = run(
            &LoadgenConfig {
                connections: 2,
                requests: 100,
                read_pct: 90,
                insert_batch: 2,
                seed: 3,
                ..LoadgenConfig::default()
            },
            |_| Ok(&server),
        )
        .unwrap();
        let text = report.render();
        assert!(text.contains("throughput"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"throughput_rps\""), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        // Requests split across 2 connections must still total 100.
        assert_eq!(report.requests, 100);
    }

    #[test]
    fn empty_graph_is_rejected_up_front() {
        let server = Server::new(0, &[], ServeConfig::builder().build().unwrap()).unwrap();
        let err = run(&LoadgenConfig::default(), |_| Ok(&server)).unwrap_err();
        assert!(err.to_string().contains("empty graph"), "{err}");
    }

    #[test]
    fn overloaded_server_sheds_writes_while_reads_keep_answering() {
        // The writer never wakes (distant deadline, huge size trigger), so
        // the 4-edge queue fills and stays full: every write past the
        // bound is shed, retried, and eventually abandoned.
        let server = Server::new(
            64,
            &[(0, 1)],
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_edges: 1_000_000,
                    max_delay: Duration::from_secs(600),
                    apply_delay: None,
                })
                .max_queue_depth(4)
                .build()
                .unwrap(),
        )
        .unwrap();
        let report = run(
            &LoadgenConfig {
                connections: 2,
                requests: 400,
                read_pct: 50,
                insert_batch: 4,
                seed: 11,
                max_retries: 2,
                retry_backoff: Duration::from_micros(50),
                ..LoadgenConfig::default()
            },
            |_| Ok(&server),
        )
        .unwrap();
        // The run completes — shedding degrades writes, it does not error.
        assert_eq!(report.requests, 400);
        assert_eq!(report.errors, 0, "{}", report.render());
        assert!(report.shed > 0, "{}", report.render());
        assert!(report.retries > 0, "{}", report.render());
        assert!(report.gave_up > 0, "{}", report.render());
        // Every read answered despite the saturated write path.
        assert!(report.reads > 150, "{}", report.render());
        // Shed attempts = retries + first attempts of abandoned requests
        // + first attempts of eventually-admitted requests; at minimum
        // every abandoned request was shed max_retries + 1 times.
        assert!(report.shed >= report.gave_up * 3);
        let text = report.render();
        assert!(text.contains("shed"), "{text}");
        let json = report.to_json();
        assert!(json.contains("\"gave_up\""), "{json}");
    }

    #[test]
    fn torn_connections_are_reopened_not_fatal() {
        use crate::faults::FaultPlan;
        use std::net::TcpListener;
        use std::sync::Arc;

        let faults = Arc::new(FaultPlan::parse("seed=13,torn_frame=0.05").expect("fault spec"));
        let server = Server::new(
            256,
            &[(0, 1), (1, 2)],
            ServeConfig::builder()
                .faults(Some(Arc::clone(&faults)))
                .build()
                .unwrap(),
        )
        .expect("start server");
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let report = std::thread::scope(|s| {
            s.spawn(|| server.serve_tcp(listener, 4).expect("serve_tcp"));
            let report = run(
                &LoadgenConfig {
                    connections: 2,
                    requests: 600,
                    read_pct: 80,
                    insert_batch: 4,
                    seed: 5,
                    max_retries: 8,
                    retry_backoff: Duration::from_micros(100),
                    ..LoadgenConfig::default()
                },
                |_| Client::connect(addr)?.with_read_timeout(Some(Duration::from_secs(5))),
            )
            .expect("a chaos server must degrade loadgen, not abort it");
            server.request_shutdown();
            report
        });

        assert!(
            faults.injected().torn_frames > 0,
            "no frames torn at p=0.05"
        );
        assert!(report.reconnects > 0, "{}", report.render());
        // Every request completed: each tear cost a reconnect + retry, and
        // torn_frame=0.05 with 8 retries makes exhaustion (0.05^9) absurd.
        assert_eq!(report.requests, 600);
        assert_eq!(report.errors, 0, "{}", report.render());
        assert_eq!(report.gave_up, 0, "{}", report.render());
    }

    #[test]
    fn shard_local_writes_stay_inside_one_block() {
        use crate::protocol::StatsReport;
        use std::sync::{Arc, Mutex};

        // A transport that records every inserted edge, so the locality
        // of the generated workload is directly observable.
        struct Recorder {
            vertices: u64,
            edges: Arc<Mutex<Vec<(Node, Node)>>>,
        }
        impl Transport for Recorder {
            fn call(&mut self, req: &Request) -> Result<Response, WireError> {
                match req {
                    Request::Stats => Ok(Response::Stats(StatsReport {
                        epoch: 0,
                        vertices: self.vertices,
                        num_components: self.vertices,
                        edges_ingested: 0,
                        epochs_published: 0,
                        queue_depth: 0,
                        requests_shed: 0,
                        wal_records: 0,
                        faults_injected: 0,
                        tenants: 1,
                    })),
                    Request::InsertEdges(es) => {
                        self.edges.lock().unwrap().extend(es.iter().copied());
                        Ok(Response::Accepted {
                            edges: es.len() as u32,
                        })
                    }
                    _ => Ok(Response::NumComponents(self.vertices)),
                }
            }
        }

        let edges = Arc::new(Mutex::new(Vec::new()));
        let cfg = LoadgenConfig {
            connections: 2,
            requests: 200,
            read_pct: 0,
            insert_batch: 8,
            seed: 9,
            write_shards: 4,
            local_pct: 100,
            ..LoadgenConfig::default()
        };
        run(&cfg, |_| {
            Ok(Recorder {
                vertices: 1_000,
                edges: Arc::clone(&edges),
            })
        })
        .unwrap();

        // With local_pct=100 every edge must be internal to one of the
        // four Block slices — the partition's own owner rule agrees.
        let part = afforest_distrib::VertexPartition::new(
            1_000,
            4,
            afforest_distrib::PartitionKind::Block,
        );
        let recorded = edges.lock().unwrap().clone();
        assert_eq!(recorded.len(), 200 * 8);
        assert!(recorded.iter().all(|&(u, v)| !part.is_cut(u, v)));
    }

    #[test]
    fn backoff_grows_and_stays_capped() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base = Duration::from_micros(500);
        for attempt in 1..=20u32 {
            let d = backoff(base, attempt, &mut rng);
            assert!(d <= MAX_BACKOFF, "attempt {attempt}: {d:?}");
            // Jitter floor: at least half the un-jittered delay (pre-cap).
            let floor = (base * (1 << attempt.saturating_sub(1).min(16))) / 2;
            assert!(d >= floor.min(MAX_BACKOFF / 4), "attempt {attempt}: {d:?}");
        }
    }
}
