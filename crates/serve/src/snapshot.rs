//! Epoch snapshots: the read path of the service.
//!
//! Readers never touch the incremental structure. Each published epoch is
//! an immutable, *fully compressed* labeling: `labels[v]` is already the
//! component representative, so `Connected(u, v)` is two array loads and
//! `ComponentSize(u)` is two loads plus one more — no `find_root` walk,
//! no atomics, no locks on the hot path.
//!
//! The store hands out `Arc<Snapshot>`s. Publishing swaps the `Arc`
//! behind an `RwLock` whose critical sections are O(1) (clone on read,
//! pointer swap on write); the expensive work — applying a batch,
//! compressing, building the next snapshot — happens entirely outside
//! the lock, which is what makes reads non-blocking with respect to the
//! writer (the acceptance property tested in `tests/epoch_isolation.rs`).

use afforest_core::ComponentLabels;
use afforest_graph::Node;
use std::sync::{Arc, RwLock};

/// One immutable published epoch.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonically increasing epoch number (0 = the initial graph).
    pub epoch: u64,
    /// Fully flattened labels: `labels[v]` is `v`'s representative.
    labels: Vec<Node>,
    /// `sizes[r]` is the component size when `r` is a representative
    /// (untouched slots are 0).
    sizes: Vec<u32>,
    /// Number of components.
    num_components: usize,
}

impl Snapshot {
    /// Builds a snapshot from a validated labeling.
    pub fn new(epoch: u64, labels: &ComponentLabels) -> Self {
        let vec = labels.as_slice().to_vec();
        let mut sizes = vec![0u32; vec.len()];
        for &l in &vec {
            sizes[l as usize] += 1;
        }
        Self {
            epoch,
            labels: vec,
            sizes,
            num_components: labels.num_components(),
        }
    }

    /// Vertex count.
    pub fn vertices(&self) -> usize {
        self.labels.len()
    }

    /// Whether `v` is a valid vertex of this snapshot.
    pub fn contains(&self, v: Node) -> bool {
        (v as usize) < self.labels.len()
    }

    /// Whether `u` and `v` share a component (`None` if out of range).
    pub fn connected(&self, u: Node, v: Node) -> Option<bool> {
        let lu = self.labels.get(u as usize)?;
        let lv = self.labels.get(v as usize)?;
        Some(lu == lv)
    }

    /// The representative of `u` (`None` if out of range).
    pub fn component(&self, u: Node) -> Option<Node> {
        self.labels.get(u as usize).copied()
    }

    /// Size of `u`'s component (`None` if out of range).
    pub fn component_size(&self, u: Node) -> Option<u64> {
        let l = self.labels.get(u as usize)?;
        Some(self.sizes[*l as usize] as u64)
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }
}

/// The single-writer / many-reader epoch store.
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotStore {
    /// Starts the store at `initial` (conventionally epoch 0).
    pub fn new(initial: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(initial)),
        }
    }

    /// The currently served epoch. O(1): clones the `Arc` under a read
    /// lock held for the duration of a pointer copy.
    pub fn load(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Atomically replaces the served epoch. O(1): the new snapshot is
    /// fully built before this is called.
    ///
    /// # Panics
    ///
    /// Debug-asserts that epochs only move forward.
    pub fn publish(&self, next: Snapshot) {
        let mut cur = self.current.write().unwrap_or_else(|e| e.into_inner());
        debug_assert!(next.epoch > cur.epoch, "epochs must advance");
        *cur = Arc::new(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_core::IncrementalCc;

    fn snap(epoch: u64, cc: &mut IncrementalCc) -> Snapshot {
        Snapshot::new(epoch, &cc.labels())
    }

    #[test]
    fn snapshot_answers_all_queries() {
        let mut cc = IncrementalCc::new(6);
        cc.insert_batch(&[(0, 1), (1, 2), (4, 5)]);
        let s = snap(0, &mut cc);
        assert_eq!(s.vertices(), 6);
        assert_eq!(s.num_components(), 3);
        assert_eq!(s.connected(0, 2), Some(true));
        assert_eq!(s.connected(0, 3), Some(false));
        assert_eq!(s.component(2), Some(0));
        assert_eq!(s.component_size(5), Some(2));
        assert_eq!(s.component_size(3), Some(1));
    }

    #[test]
    fn out_of_range_is_none_not_panic() {
        let mut cc = IncrementalCc::new(3);
        let s = snap(0, &mut cc);
        assert_eq!(s.connected(0, 3), None);
        assert_eq!(s.connected(9, 0), None);
        assert_eq!(s.component(3), None);
        assert_eq!(s.component_size(100), None);
        assert!(!s.contains(3));
        assert!(s.contains(2));
    }

    #[test]
    fn store_publishes_new_epochs() {
        let mut cc = IncrementalCc::new(4);
        let store = SnapshotStore::new(snap(0, &mut cc));
        let old = store.load();
        assert_eq!(old.epoch, 0);
        assert_eq!(old.connected(0, 1), Some(false));

        cc.insert(0, 1);
        store.publish(snap(1, &mut cc));
        // The old Arc still answers from its epoch; new loads see epoch 1.
        assert_eq!(old.connected(0, 1), Some(false));
        let new = store.load();
        assert_eq!(new.epoch, 1);
        assert_eq!(new.connected(0, 1), Some(true));
    }

    #[test]
    fn empty_graph_snapshot() {
        let mut cc = IncrementalCc::new(0);
        let s = snap(0, &mut cc);
        assert_eq!(s.vertices(), 0);
        assert_eq!(s.num_components(), 0);
        assert_eq!(s.connected(0, 0), None);
    }
}
