//! Validated server configuration, replacing the old positional
//! `Server::new(n, edges, policy)` / `ServerOptions` pair.
//!
//! Same idiom as `AfforestConfig::builder()` in `afforest-core`: a
//! plain-data config struct, a chainable builder seeded with the
//! defaults, and a typed [`ServeConfigError`] from `build()` so an
//! invalid quota or deadline combination is a compile-visible error
//! path, not a runtime surprise.

use crate::faults::FaultPlan;
use crate::ingest::BatchPolicy;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Everything configurable about a [`crate::Server`] beyond the graphs
/// it serves. Construct via [`ServeConfig::builder`].
#[derive(Clone, Default)]
pub struct ServeConfig {
    /// When each tenant's writer cuts a batch.
    pub policy: BatchPolicy,
    /// Per-tenant admission bound: pending edges above this shed new
    /// inserts with `Response::Overloaded` (`0` = unbounded).
    pub max_queue_depth: usize,
    /// Process-wide backstop: pending edges summed over every tenant
    /// above this shed new inserts regardless of the per-tenant quota
    /// (`0` = unbounded). Must be at least `max_queue_depth` when both
    /// are bounded — a backstop tighter than one tenant's quota would
    /// make the per-tenant bound unreachable.
    pub max_total_queue_depth: usize,
    /// Most tenants the registry admits (the `default` tenant counts).
    pub max_tenants: usize,
    /// Close a connection idle longer than this (`None` = never).
    pub read_deadline: Option<Duration>,
    /// Durability root: each tenant logs under `<wal_root>/<tenant>/`
    /// (`None` = no WAL). The `default` tenant also accepts the legacy
    /// pre-tenancy layout with `wal.log` directly in the root.
    pub wal_root: Option<PathBuf>,
    /// Compact a tenant's WAL every this many appended records
    /// (`0` = never compact).
    pub wal_snapshot_every: u64,
    /// Chaos: consulted at every injection site when present.
    pub faults: Option<Arc<FaultPlan>>,
}

/// Default tenant capacity of [`ServeConfig`].
pub const DEFAULT_MAX_TENANTS: usize = 64;

impl ServeConfig {
    /// Starts a validating [`ServeConfigBuilder`] seeded with the
    /// defaults.
    ///
    /// ```
    /// use afforest_serve::ServeConfig;
    /// use std::time::Duration;
    ///
    /// let cfg = ServeConfig::builder()
    ///     .max_queue_depth(1024)
    ///     .read_deadline(Some(Duration::from_secs(30)))
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.max_queue_depth, 1024);
    /// assert!(ServeConfig::builder()
    ///     .max_queue_depth(100)
    ///     .max_total_queue_depth(10)
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::new()
    }
}

/// Validation failure from [`ServeConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `policy.max_edges` was 0: the size trigger could never fire and
    /// an empty "full" batch would spin the writer.
    ZeroBatchEdges,
    /// `policy.max_delay` was zero: the deadline trigger would fire
    /// continuously, degenerating batching to one epoch per edge.
    ZeroBatchDelay,
    /// `max_tenants` was 0: not even the `default` tenant would fit.
    ZeroMaxTenants,
    /// `read_deadline` was `Some(0)`: every connection would be cut off
    /// on its first poll tick.
    ZeroReadDeadline,
    /// The process-wide backstop is tighter than one tenant's quota, so
    /// the per-tenant bound could never be reached.
    BackstopBelowTenantQuota {
        /// `max_total_queue_depth` as configured.
        total: usize,
        /// `max_queue_depth` as configured.
        per_tenant: usize,
    },
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::ZeroBatchEdges => write!(f, "policy.max_edges must be at least 1"),
            ServeConfigError::ZeroBatchDelay => {
                write!(f, "policy.max_delay must be nonzero")
            }
            ServeConfigError::ZeroMaxTenants => write!(f, "max_tenants must be at least 1"),
            ServeConfigError::ZeroReadDeadline => {
                write!(
                    f,
                    "read_deadline must be nonzero (use None for no deadline)"
                )
            }
            ServeConfigError::BackstopBelowTenantQuota { total, per_tenant } => write!(
                f,
                "max_total_queue_depth ({total}) is below max_queue_depth ({per_tenant}): \
                 the per-tenant quota would be unreachable"
            ),
        }
    }
}

impl std::error::Error for ServeConfigError {}

/// Validating builder for [`ServeConfig`]; start from
/// [`ServeConfig::builder`].
#[derive(Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl Default for ServeConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeConfigBuilder {
    /// A builder seeded with the defaults: default batch policy,
    /// unbounded queues, [`DEFAULT_MAX_TENANTS`] tenants, no deadline,
    /// no WAL, no chaos.
    pub fn new() -> Self {
        Self {
            cfg: ServeConfig {
                max_tenants: DEFAULT_MAX_TENANTS,
                ..ServeConfig::default()
            },
        }
    }

    /// Sets the batch policy every tenant's writer runs.
    pub fn policy(mut self, policy: BatchPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Sets the per-tenant admission bound (`0` = unbounded).
    pub fn max_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.max_queue_depth = depth;
        self
    }

    /// Sets the process-wide pending-edge backstop (`0` = unbounded).
    pub fn max_total_queue_depth(mut self, depth: usize) -> Self {
        self.cfg.max_total_queue_depth = depth;
        self
    }

    /// Sets the registry's tenant capacity (must be ≥ 1).
    pub fn max_tenants(mut self, n: usize) -> Self {
        self.cfg.max_tenants = n;
        self
    }

    /// Sets the idle-connection deadline.
    pub fn read_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.cfg.read_deadline = deadline;
        self
    }

    /// Enables per-tenant write-ahead logging under `root`.
    pub fn wal_root(mut self, root: Option<PathBuf>) -> Self {
        self.cfg.wal_root = root;
        self
    }

    /// Sets the WAL compaction cadence (`0` = never compact).
    pub fn wal_snapshot_every(mut self, every: u64) -> Self {
        self.cfg.wal_snapshot_every = every;
        self
    }

    /// Attaches a chaos plan.
    pub fn faults(mut self, faults: Option<Arc<FaultPlan>>) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ServeConfig, ServeConfigError> {
        if self.cfg.policy.max_edges == 0 {
            return Err(ServeConfigError::ZeroBatchEdges);
        }
        if self.cfg.policy.max_delay.is_zero() {
            return Err(ServeConfigError::ZeroBatchDelay);
        }
        if self.cfg.max_tenants == 0 {
            return Err(ServeConfigError::ZeroMaxTenants);
        }
        if self.cfg.read_deadline.is_some_and(|d| d.is_zero()) {
            return Err(ServeConfigError::ZeroReadDeadline);
        }
        let (total, per_tenant) = (self.cfg.max_total_queue_depth, self.cfg.max_queue_depth);
        if total > 0 && per_tenant > 0 && total < per_tenant {
            return Err(ServeConfigError::BackstopBelowTenantQuota { total, per_tenant });
        }
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let cfg = ServeConfig::builder().build().expect("defaults are valid");
        assert_eq!(cfg.max_tenants, DEFAULT_MAX_TENANTS);
        assert_eq!(cfg.max_queue_depth, 0);
        assert!(cfg.wal_root.is_none());
    }

    #[test]
    fn each_invalid_combination_gets_its_typed_error() {
        assert!(matches!(
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_edges: 0,
                    ..BatchPolicy::default()
                })
                .build(),
            Err(ServeConfigError::ZeroBatchEdges)
        ));
        assert!(matches!(
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_delay: Duration::ZERO,
                    ..BatchPolicy::default()
                })
                .build(),
            Err(ServeConfigError::ZeroBatchDelay)
        ));
        assert!(matches!(
            ServeConfig::builder().max_tenants(0).build(),
            Err(ServeConfigError::ZeroMaxTenants)
        ));
        assert!(matches!(
            ServeConfig::builder()
                .read_deadline(Some(Duration::ZERO))
                .build(),
            Err(ServeConfigError::ZeroReadDeadline)
        ));
        assert!(matches!(
            ServeConfig::builder()
                .max_queue_depth(8)
                .max_total_queue_depth(4)
                .build(),
            Err(ServeConfigError::BackstopBelowTenantQuota {
                total: 4,
                per_tenant: 8
            })
        ));
        // Errors render their cause.
        assert!(ServeConfigError::BackstopBelowTenantQuota {
            total: 4,
            per_tenant: 8
        }
        .to_string()
        .contains("unreachable"));
    }

    #[test]
    fn valid_quota_combinations_build() {
        for (per_tenant, total) in [(0, 0), (8, 0), (0, 8), (8, 8), (8, 64)] {
            assert!(
                ServeConfig::builder()
                    .max_queue_depth(per_tenant)
                    .max_total_queue_depth(total)
                    .build()
                    .is_ok(),
                "({per_tenant}, {total})"
            );
        }
    }
}
