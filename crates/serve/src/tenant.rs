//! Tenant identity: the `TenantId` newtype threaded through the whole
//! request path.
//!
//! A tenant name doubles as a WAL directory name (`<wal-dir>/<tenant>/`)
//! and as a metric label value (`tenant="…"`), so the charset is locked
//! down to lowercase ASCII alphanumerics plus `-` and `_`, at most
//! [`MAX_TENANT_LEN`] bytes. Keeping the alphabet case-insensitive-safe
//! avoids directory collisions on case-folding filesystems, and the `"`
//! / `\` / `/` exclusions make both the exposition format and the path
//! join injection-free by construction.
//!
//! Validation happens at the edges — wire decode and `CreateTenant`
//! handling — so everything behind the [`TenantId`] type can treat the
//! name as trusted.

use std::fmt;

/// Longest accepted tenant name, in bytes.
pub const MAX_TENANT_LEN: usize = 64;

/// The tenant every v1 (un-enveloped) frame is routed to.
pub const DEFAULT_TENANT: &str = "default";

/// A validated tenant name.
///
/// Construct with [`TenantId::new`]; the default tenant (the v1
/// compatibility target) via [`TenantId::default_tenant`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

/// Why a tenant name was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// The name was empty.
    Empty,
    /// The name exceeded [`MAX_TENANT_LEN`] bytes.
    TooLong(usize),
    /// The name contained a byte outside `[a-z0-9_-]`.
    BadChar(char),
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantError::Empty => write!(f, "tenant name is empty"),
            TenantError::TooLong(n) => {
                write!(f, "tenant name is {n} bytes (max {MAX_TENANT_LEN})")
            }
            TenantError::BadChar(c) => write!(
                f,
                "tenant name contains {c:?} (allowed: lowercase ASCII alphanumerics, `-`, `_`)"
            ),
        }
    }
}

impl std::error::Error for TenantError {}

impl TenantId {
    /// Validates `name` and wraps it.
    pub fn new(name: &str) -> Result<TenantId, TenantError> {
        if name.is_empty() {
            return Err(TenantError::Empty);
        }
        if name.len() > MAX_TENANT_LEN {
            return Err(TenantError::TooLong(name.len()));
        }
        if let Some(bad) = name
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-' || *c == '_'))
        {
            return Err(TenantError::BadChar(bad));
        }
        Ok(TenantId(name.to_string()))
    }

    /// The `default` tenant, target of all v1 frames.
    pub fn default_tenant() -> TenantId {
        TenantId(DEFAULT_TENANT.to_string())
    }

    /// Whether this is the `default` tenant.
    pub fn is_default(&self) -> bool {
        self.0 == DEFAULT_TENANT
    }

    /// The validated name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_documented_alphabet() {
        for name in ["default", "a", "tenant-1", "t_2", "0", &"x".repeat(64)] {
            let t = TenantId::new(name).expect(name);
            assert_eq!(t.as_str(), name);
            assert_eq!(t.to_string(), name);
        }
        assert!(TenantId::default_tenant().is_default());
        assert!(!TenantId::new("other").unwrap().is_default());
    }

    #[test]
    fn rejects_empty_long_and_bad_chars() {
        assert_eq!(TenantId::new(""), Err(TenantError::Empty));
        assert_eq!(
            TenantId::new(&"x".repeat(65)),
            Err(TenantError::TooLong(65))
        );
        for (name, bad) in [
            ("Tenant", 'T'),
            ("a b", ' '),
            ("a/b", '/'),
            ("a\"b", '"'),
            ("a\\b", '\\'),
            ("café", 'é'),
        ] {
            assert_eq!(TenantId::new(name), Err(TenantError::BadChar(bad)));
        }
        // Errors render their cause.
        assert!(TenantError::Empty.to_string().contains("empty"));
        assert!(TenantError::TooLong(65).to_string().contains("65"));
        assert!(TenantError::BadChar('/').to_string().contains("'/'"));
    }
}
