//! The wire protocol: length-prefixed binary frames.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; the payload is a one-byte opcode followed by fixed-width
//! little-endian fields. Requests and responses share the framing but use
//! disjoint opcode ranges (`0x01..` vs `0x81..`), so a desynchronized
//! peer is detected as an unknown opcode rather than misparsed silently.
//!
//! Decoding never panics: every malformed input — truncated payload,
//! oversized length prefix, unknown opcode, inconsistent element count,
//! trailing garbage — surfaces as a typed [`FrameError`], which the
//! server renders into a [`Response::Err`] frame.
//!
//! ## Protocol v2: the tenant envelope
//!
//! A v2 request payload wraps a v1 payload in an envelope that names the
//! tenant the request is scoped to:
//!
//! ```text
//! [ENVELOPE_MARKER][version][tenant_len: u8][tenant bytes][v1 payload]
//! ```
//!
//! The marker byte `0x7E` sits outside the request op range, so the two
//! wire versions are distinguished by the first payload byte alone:
//! [`decode_request_any`] routes marker-less (v1) payloads to the
//! `default` tenant, which is what keeps pre-v2 client binaries working
//! unmodified against a multi-tenant server. Responses reuse the v1
//! shapes except `Stats`, whose v2 payload is the versioned
//! self-describing encoding (see [`StatsReport`]); the server answers
//! each frame in the version it arrived in.
//!
//! ## Trace context
//!
//! A v2 envelope may carry a request's trace context (DESIGN.md §16)
//! between the tenant name and the inner payload, tagged by
//! [`TRACE_MARKER`] — a byte outside both the request-op range and the
//! envelope marker, so its presence is unambiguous from one byte:
//!
//! ```text
//! [0x7E][2][tenant_len][tenant][0x7D][trace_id: u64][parent_span: u64][v1 payload]
//! ```
//!
//! The field is optional: contextless v2 frames (and all v1 frames)
//! decode exactly as before, with [`TraceCtx::NONE`]. This keeps the
//! version byte at [`WIRE_V2`] — adding the field is not a version
//! bump, because old payloads remain a strict subset.

use crate::tenant::TenantId;
use afforest_graph::Node;
use afforest_obs::reqtrace::{Span, TraceCtx};
use std::io::{Read, Write};

/// Hard ceiling on payload size (16 MiB ≈ 2M edges per insert frame). A
/// length prefix above this is rejected before any allocation, so a
/// garbage prefix cannot trigger a huge read buffer.
pub const MAX_FRAME_LEN: usize = 1 << 24;

/// First payload byte of a v2 (tenant-enveloped) request. Reserved: no
/// request op will ever be assigned this value, so the first byte alone
/// distinguishes the wire versions.
pub const ENVELOPE_MARKER: u8 = 0x7E;

/// The version byte carried inside a v2 envelope.
pub const WIRE_V2: u8 = 2;

/// Tag of the optional trace-context block inside a v2 envelope.
/// Reserved like [`ENVELOPE_MARKER`]: no request op will ever be
/// assigned this value, so the byte after the tenant name alone tells
/// whether a context rides along.
pub const TRACE_MARKER: u8 = 0x7D;

/// Version byte of the self-describing `Stats` payload (v2 frames only;
/// v1 frames keep the frozen nine-`u64` layout).
pub const STATS_VERSION: u8 = 2;

/// Which wire version a request arrived in. The server answers in kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireVersion {
    /// Bare payload, routed to the `default` tenant.
    V1,
    /// Tenant-enveloped payload.
    V2,
}

/// A client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Are `u` and `v` in the same component (in the served epoch)?
    Connected(Node, Node),
    /// The component representative of `u`.
    Component(Node),
    /// Size of `u`'s component.
    ComponentSize(Node),
    /// Number of components (isolated vertices included).
    NumComponents,
    /// Append edges to the graph; applied asynchronously by the writer.
    InsertEdges(Vec<(Node, Node)>),
    /// Server + ingest statistics.
    Stats,
    /// The full metric registry as a Prometheus text exposition.
    Metrics,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
    /// Register a new tenant serving an empty graph of `vertices`
    /// vertices. Independent of the envelope's routing tenant.
    CreateTenant {
        /// The tenant to create.
        name: TenantId,
        /// Vertex-universe size of the tenant's graph.
        vertices: u64,
    },
    /// Drop a tenant: its engine is stopped and unregistered. The
    /// `default` tenant cannot be dropped (it is the v1 routing target).
    DropTenant {
        /// The tenant to drop.
        name: TenantId,
    },
    /// List registered tenants.
    ListTenants,
    /// Snapshot this process's retained span ring (DESIGN.md §16);
    /// answered with [`Response::Traces`]. Served by routers and
    /// workers alike, so `afforest trace` can merge one tree across
    /// processes.
    DumpTraces,
}

/// A server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Answer to [`Request::Connected`].
    Connected(bool),
    /// Answer to [`Request::Component`].
    Component(Node),
    /// Answer to [`Request::ComponentSize`].
    ComponentSize(u64),
    /// Answer to [`Request::NumComponents`].
    NumComponents(u64),
    /// Edges accepted into the ingest queue (not yet visible to reads).
    Accepted {
        /// Number of edges queued.
        edges: u32,
    },
    /// Answer to [`Request::Stats`].
    Stats(StatsReport),
    /// Answer to [`Request::Metrics`]: the Prometheus text exposition
    /// (same bytes the `--metrics-addr` HTTP sidecar serves).
    Metrics(String),
    /// Acknowledges [`Request::Shutdown`]; the connection closes next.
    Bye,
    /// The ingest queue is full: the insert was shed, not queued. Clients
    /// should back off and retry (reads are unaffected — load shedding
    /// applies to the write path only).
    Overloaded {
        /// Pending edges at rejection time.
        queue_depth: u64,
    },
    /// The request was malformed or unanswerable; the message says why.
    Err(String),
    /// Acknowledges [`Request::CreateTenant`].
    TenantCreated,
    /// Acknowledges [`Request::DropTenant`].
    TenantDropped,
    /// Answer to [`Request::ListTenants`]: registered tenant names,
    /// sorted.
    Tenants(Vec<String>),
    /// Answer to [`Request::DumpTraces`]: the retained spans of this
    /// process's ring, oldest first.
    Traces {
        /// The answering process's node name (`"router"`, `"serve"`).
        node: String,
        /// Retained spans, oldest first.
        spans: Vec<Span>,
    },
    /// A *degraded* answer: correct for the reachable part of the
    /// cluster, but computed while one or more shards were unavailable
    /// (see the shard router's failure model, DESIGN.md §15). The inner
    /// response is never itself `Degraded`. Only wire v2 can carry the
    /// tag; a v1 frame renders a degraded answer as the conservative
    /// [`Response::Err`] instead, because a pre-v2 client has no way to
    /// learn the answer is partial.
    Degraded(Box<Response>),
}

/// Server-side statistics, answering [`Request::Stats`] for one tenant.
///
/// ## Wire encodings
///
/// The v1 payload is the frozen positional layout: nine `u64`s in
/// declaration order (the `tenants` field is not carried — v1 predates
/// multi-tenancy and its layout can never change again). The v2 payload
/// is versioned and self-describing:
///
/// ```text
/// [STATS_VERSION][field_count: u8][field_count × (tag: u8, value: u64)]
/// ```
///
/// Decoders skip unknown tags, so adding a field is a one-sided change —
/// old v2 clients keep working against new servers and vice versa,
/// instead of silently misparsing a longer positional layout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReport {
    /// Epoch of the currently served snapshot (0 = initial graph).
    pub epoch: u64,
    /// Vertex count of the served graph.
    pub vertices: u64,
    /// Component count in the served snapshot.
    pub num_components: u64,
    /// Edges applied by the writer since startup.
    pub edges_ingested: u64,
    /// Snapshots published by the writer since startup (excludes epoch 0).
    pub epochs_published: u64,
    /// Edges currently waiting in the ingest queue.
    pub queue_depth: u64,
    /// Insert requests rejected by bounded-queue admission
    /// (`Response::Overloaded`) since startup.
    pub requests_shed: u64,
    /// Edge-batch records appended to the write-ahead log since startup
    /// (0 when running without a WAL).
    pub wal_records: u64,
    /// Total faults injected by an attached chaos plan (0 in production:
    /// no plan, no faults).
    pub faults_injected: u64,
    /// Registered tenants in the whole process (v2 frames only; a v1
    /// `Stats` answer cannot carry this field and decodes it as 0).
    pub tenants: u64,
}

/// Bytes of one encoded span in a [`Response::Traces`] payload: seven
/// fixed-width `u64` fields.
const SPAN_WIRE_BYTES: usize = 7 * 8;

// Field tags of the self-describing v2 `Stats` payload. Tags are stable;
// new fields take fresh tags and old decoders skip them.
const TAG_EPOCH: u8 = 1;
const TAG_VERTICES: u8 = 2;
const TAG_NUM_COMPONENTS: u8 = 3;
const TAG_EDGES_INGESTED: u8 = 4;
const TAG_EPOCHS_PUBLISHED: u8 = 5;
const TAG_QUEUE_DEPTH: u8 = 6;
const TAG_REQUESTS_SHED: u8 = 7;
const TAG_WAL_RECORDS: u8 = 8;
const TAG_FAULTS_INJECTED: u8 = 9;
const TAG_TENANTS: u8 = 10;

/// Why a payload failed to decode. Mirrors the shape of
/// `afforest_graph::Error`: one variant per failure class, each carrying
/// enough context to render a useful message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The payload ended before a fixed-width field.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared payload length.
        len: usize,
    },
    /// The first payload byte is not a known opcode.
    UnknownOpcode(u8),
    /// A structurally invalid payload (reason attached).
    BadPayload(&'static str),
    /// Well-formed value followed by `extra` unexpected bytes.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "oversized frame: {len} bytes exceeds max {MAX_FRAME_LEN}"
                )
            }
            FrameError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            FrameError::BadPayload(reason) => write!(f, "bad payload: {reason}"),
            FrameError::Trailing { extra } => {
                write!(f, "{extra} trailing byte(s) after a complete frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A transport-level failure: either the socket died or the peer sent an
/// unparseable frame.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The bytes arrived but were not a valid frame.
    Frame(FrameError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "{e}"),
            WireError::Frame(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        WireError::Frame(e)
    }
}

// Request opcodes.
const OP_CONNECTED: u8 = 0x01;
const OP_COMPONENT: u8 = 0x02;
const OP_COMPONENT_SIZE: u8 = 0x03;
const OP_NUM_COMPONENTS: u8 = 0x04;
const OP_INSERT_EDGES: u8 = 0x05;
const OP_STATS: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;
const OP_METRICS: u8 = 0x08;
const OP_CREATE_TENANT: u8 = 0x09;
const OP_DROP_TENANT: u8 = 0x0A;
const OP_LIST_TENANTS: u8 = 0x0B;
const OP_DUMP_TRACES: u8 = 0x0C;

// Response opcodes.
const OP_R_CONNECTED: u8 = 0x81;
const OP_R_COMPONENT: u8 = 0x82;
const OP_R_COMPONENT_SIZE: u8 = 0x83;
const OP_R_NUM_COMPONENTS: u8 = 0x84;
const OP_R_ACCEPTED: u8 = 0x85;
const OP_R_STATS: u8 = 0x86;
const OP_R_BYE: u8 = 0x87;
const OP_R_OVERLOADED: u8 = 0x88;
const OP_R_METRICS: u8 = 0x89;
const OP_R_TENANT_CREATED: u8 = 0x8A;
const OP_R_TENANT_DROPPED: u8 = 0x8B;
const OP_R_TENANTS: u8 = 0x8C;
const OP_R_DEGRADED: u8 = 0x8D;
const OP_R_TRACES: u8 = 0x8E;
const OP_R_ERR: u8 = 0xC0;

/// Incremental little-endian payload reader with typed errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::BadPayload(
            "field length overflows the payload cursor",
        ))?;
        if end > self.buf.len() {
            return Err(FrameError::Truncated {
                needed: end,
                got: self.buf.len(),
            });
        }
        // PANIC-OK: `end <= buf.len()` checked above and `pos <= end`
        // by construction (pos only ever advances to a checked `end`).
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        // PANIC-OK: `take(1)` returned exactly one byte.
        Ok(self.take(1)?[0])
    }

    /// The next byte without consuming it (`None` at end of payload).
    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        // PANIC-OK: `take(4)` returned exactly four bytes.
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        // PANIC-OK: `take(8)` returned exactly eight bytes, so the
        // slice-to-array conversion cannot fail.
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Trailing {
                extra: self.buf.len() - self.pos,
            })
        }
    }

    /// Everything not yet consumed (used by the envelope decoder to hand
    /// the inner payload to the v1 decoder).
    fn rest(self) -> &'a [u8] {
        // PANIC-OK: `pos <= buf.len()` is the cursor invariant (`pos`
        // only advances to an `end` bounds-checked in `take`).
        &self.buf[self.pos..]
    }
}

/// Appends a length-prefixed (`u8`) tenant name. Names are validated at
/// construction to at most [`crate::tenant::MAX_TENANT_LEN`] (= 64)
/// bytes, so the cast cannot truncate.
fn push_tenant(out: &mut Vec<u8>, name: &TenantId) {
    out.push(name.as_str().len() as u8);
    out.extend_from_slice(name.as_str().as_bytes());
}

/// Reads a length-prefixed tenant name written by [`push_tenant`].
fn take_tenant(c: &mut Cursor<'_>) -> Result<TenantId, FrameError> {
    let len = c.u8()? as usize;
    let raw = c.take(len)?;
    let name =
        std::str::from_utf8(raw).map_err(|_| FrameError::BadPayload("tenant name is not UTF-8"))?;
    TenantId::new(name)
        .map_err(|_| FrameError::BadPayload("invalid tenant name (1..=64 bytes of [a-z0-9_-])"))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a request payload (opcode + fields, no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match req {
        Request::Connected(u, v) => {
            out.push(OP_CONNECTED);
            push_u32(&mut out, *u);
            push_u32(&mut out, *v);
        }
        Request::Component(u) => {
            out.push(OP_COMPONENT);
            push_u32(&mut out, *u);
        }
        Request::ComponentSize(u) => {
            out.push(OP_COMPONENT_SIZE);
            push_u32(&mut out, *u);
        }
        Request::NumComponents => out.push(OP_NUM_COMPONENTS),
        Request::InsertEdges(edges) => {
            out.reserve(5 + edges.len() * 8);
            out.push(OP_INSERT_EDGES);
            push_u32(&mut out, edges.len() as u32);
            for &(u, v) in edges {
                push_u32(&mut out, u);
                push_u32(&mut out, v);
            }
        }
        Request::Stats => out.push(OP_STATS),
        Request::Metrics => out.push(OP_METRICS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
        Request::CreateTenant { name, vertices } => {
            out.push(OP_CREATE_TENANT);
            push_tenant(&mut out, name);
            push_u64(&mut out, *vertices);
        }
        Request::DropTenant { name } => {
            out.push(OP_DROP_TENANT);
            push_tenant(&mut out, name);
        }
        Request::ListTenants => out.push(OP_LIST_TENANTS),
        Request::DumpTraces => out.push(OP_DUMP_TRACES),
    }
    out
}

/// Encodes a v2 request payload: the tenant envelope wrapping the v1
/// encoding of `req`, with no trace context.
pub fn encode_request_v2(tenant: &TenantId, req: &Request) -> Vec<u8> {
    encode_request_traced(tenant, TraceCtx::NONE, req)
}

/// Encodes a v2 request payload carrying `ctx` (omitted when
/// unsampled, so an untraced call is byte-identical to
/// [`encode_request_v2`]).
pub fn encode_request_traced(tenant: &TenantId, ctx: TraceCtx, req: &Request) -> Vec<u8> {
    let inner = encode_request(req);
    let mut out = Vec::with_capacity(20 + tenant.as_str().len() + inner.len());
    out.push(ENVELOPE_MARKER);
    out.push(WIRE_V2);
    push_tenant(&mut out, tenant);
    if ctx.sampled() {
        out.push(TRACE_MARKER);
        push_u64(&mut out, ctx.trace_id);
        push_u64(&mut out, ctx.parent_span);
    }
    out.extend_from_slice(&inner);
    out
}

/// Decodes a request payload of either wire version: enveloped payloads
/// yield their tenant, bare (v1) payloads route to `default`. Total
/// function, like [`decode_request`]. Drops any trace context; servers
/// use [`decode_request_traced`].
pub fn decode_request_any(payload: &[u8]) -> Result<(WireVersion, TenantId, Request), FrameError> {
    decode_request_traced(payload).map(|(ver, tenant, _, req)| (ver, tenant, req))
}

/// [`decode_request_any`] plus the envelope's trace context
/// ([`TraceCtx::NONE`] for v1 and contextless v2 payloads).
pub fn decode_request_traced(
    payload: &[u8],
) -> Result<(WireVersion, TenantId, TraceCtx, Request), FrameError> {
    if payload.first() != Some(&ENVELOPE_MARKER) {
        return Ok((
            WireVersion::V1,
            TenantId::default_tenant(),
            TraceCtx::NONE,
            decode_request(payload)?,
        ));
    }
    let mut c = Cursor::new(payload);
    let _marker = c.u8()?;
    let version = c.u8()?;
    if version != WIRE_V2 {
        return Err(FrameError::BadPayload("unsupported wire version"));
    }
    let tenant = take_tenant(&mut c)?;
    let mut ctx = TraceCtx::NONE;
    if c.peek() == Some(TRACE_MARKER) {
        let _tag = c.u8()?;
        ctx = TraceCtx {
            trace_id: c.u64()?,
            parent_span: c.u64()?,
        };
    }
    let req = decode_request(c.rest())?;
    Ok((WireVersion::V2, tenant, ctx, req))
}

/// Decodes a request payload. Total function: every byte string yields
/// `Ok` or a typed [`FrameError`], never a panic.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let mut c = Cursor::new(payload);
    let req = match c.u8()? {
        OP_CONNECTED => Request::Connected(c.u32()?, c.u32()?),
        OP_COMPONENT => Request::Component(c.u32()?),
        OP_COMPONENT_SIZE => Request::ComponentSize(c.u32()?),
        OP_NUM_COMPONENTS => Request::NumComponents,
        OP_INSERT_EDGES => {
            let count = c.u32()? as usize;
            // The count must be consistent with the payload length before
            // any allocation (a lying count is not an OOM vector).
            let declared = count
                .checked_mul(8)
                .ok_or(FrameError::BadPayload("edge count overflows"))?;
            if payload.len() < 5 + declared {
                return Err(FrameError::Truncated {
                    needed: 5 + declared,
                    got: payload.len(),
                });
            }
            let mut edges = Vec::with_capacity(count);
            for _ in 0..count {
                edges.push((c.u32()?, c.u32()?));
            }
            Request::InsertEdges(edges)
        }
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_SHUTDOWN => Request::Shutdown,
        OP_CREATE_TENANT => Request::CreateTenant {
            name: take_tenant(&mut c)?,
            vertices: c.u64()?,
        },
        OP_DROP_TENANT => Request::DropTenant {
            name: take_tenant(&mut c)?,
        },
        OP_LIST_TENANTS => Request::ListTenants,
        OP_DUMP_TRACES => Request::DumpTraces,
        op => return Err(FrameError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(req)
}

/// Encodes a v1 response payload (opcode + fields, no length prefix).
/// `Stats` uses the frozen positional layout pre-v2 clients decode.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    encode_response_with(resp, WireVersion::V1)
}

/// Encodes a v2 response payload: identical to v1 except `Stats`, which
/// carries the versioned self-describing encoding.
pub fn encode_response_v2(resp: &Response) -> Vec<u8> {
    encode_response_with(resp, WireVersion::V2)
}

fn encode_response_with(resp: &Response, version: WireVersion) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match resp {
        Response::Connected(b) => {
            out.push(OP_R_CONNECTED);
            out.push(*b as u8);
        }
        Response::Component(l) => {
            out.push(OP_R_COMPONENT);
            push_u32(&mut out, *l);
        }
        Response::ComponentSize(s) => {
            out.push(OP_R_COMPONENT_SIZE);
            push_u64(&mut out, *s);
        }
        Response::NumComponents(c) => {
            out.push(OP_R_NUM_COMPONENTS);
            push_u64(&mut out, *c);
        }
        Response::Accepted { edges } => {
            out.push(OP_R_ACCEPTED);
            push_u32(&mut out, *edges);
        }
        Response::Stats(s) => {
            out.push(OP_R_STATS);
            match version {
                // Frozen positional layout: nine u64s, no version byte,
                // no `tenants` field. Never grows again.
                WireVersion::V1 => {
                    push_u64(&mut out, s.epoch);
                    push_u64(&mut out, s.vertices);
                    push_u64(&mut out, s.num_components);
                    push_u64(&mut out, s.edges_ingested);
                    push_u64(&mut out, s.epochs_published);
                    push_u64(&mut out, s.queue_depth);
                    push_u64(&mut out, s.requests_shed);
                    push_u64(&mut out, s.wal_records);
                    push_u64(&mut out, s.faults_injected);
                }
                WireVersion::V2 => {
                    let fields = [
                        (TAG_EPOCH, s.epoch),
                        (TAG_VERTICES, s.vertices),
                        (TAG_NUM_COMPONENTS, s.num_components),
                        (TAG_EDGES_INGESTED, s.edges_ingested),
                        (TAG_EPOCHS_PUBLISHED, s.epochs_published),
                        (TAG_QUEUE_DEPTH, s.queue_depth),
                        (TAG_REQUESTS_SHED, s.requests_shed),
                        (TAG_WAL_RECORDS, s.wal_records),
                        (TAG_FAULTS_INJECTED, s.faults_injected),
                        (TAG_TENANTS, s.tenants),
                    ];
                    out.push(STATS_VERSION);
                    out.push(fields.len() as u8);
                    for (tag, value) in fields {
                        out.push(tag);
                        push_u64(&mut out, value);
                    }
                }
            }
        }
        Response::Metrics(text) => {
            out.push(OP_R_METRICS);
            out.extend_from_slice(text.as_bytes());
        }
        Response::Bye => out.push(OP_R_BYE),
        Response::Overloaded { queue_depth } => {
            out.push(OP_R_OVERLOADED);
            push_u64(&mut out, *queue_depth);
        }
        Response::Err(msg) => {
            out.push(OP_R_ERR);
            out.extend_from_slice(msg.as_bytes());
        }
        Response::TenantCreated => out.push(OP_R_TENANT_CREATED),
        Response::TenantDropped => out.push(OP_R_TENANT_DROPPED),
        Response::Tenants(names) => {
            out.push(OP_R_TENANTS);
            push_u32(&mut out, names.len() as u32);
            for name in names {
                out.push(name.len() as u8);
                out.extend_from_slice(name.as_bytes());
            }
        }
        Response::Traces { node, spans } => {
            out.reserve(6 + node.len() + spans.len() * SPAN_WIRE_BYTES);
            out.push(OP_R_TRACES);
            out.push(node.len().min(255) as u8);
            // PANIC-OK: min(len, 255) never exceeds the slice length.
            out.extend_from_slice(&node.as_bytes()[..node.len().min(255)]);
            push_u32(&mut out, spans.len() as u32);
            for s in spans {
                push_u64(&mut out, s.trace_id);
                push_u64(&mut out, s.span_id);
                push_u64(&mut out, s.parent_span);
                push_u64(&mut out, u64::from(s.stage));
                push_u64(&mut out, s.arg);
                push_u64(&mut out, s.start_us);
                push_u64(&mut out, s.dur_ns);
            }
        }
        Response::Degraded(inner) => match version {
            // The degraded tag wraps the inner response's own encoding.
            WireVersion::V2 => {
                out.push(OP_R_DEGRADED);
                out.extend_from_slice(&encode_response_with(inner, version));
            }
            // v1 predates the tag: a partial answer a client cannot
            // recognize as partial must not look authoritative, so it
            // degrades to an in-band error.
            WireVersion::V1 => {
                out.push(OP_R_ERR);
                out.extend_from_slice(
                    "degraded answer (one or more shards unavailable); \
                     wire v2 clients receive the partial result"
                        .as_bytes(),
                );
            }
        },
    }
    out
}

/// Decodes a v1 response payload (`Stats` in the frozen positional
/// layout).
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    decode_response_with(payload, WireVersion::V1)
}

/// Decodes a v2 response payload (`Stats` in the versioned
/// self-describing layout).
pub fn decode_response_v2(payload: &[u8]) -> Result<Response, FrameError> {
    decode_response_with(payload, WireVersion::V2)
}

fn decode_response_with(payload: &[u8], version: WireVersion) -> Result<Response, FrameError> {
    let mut c = Cursor::new(payload);
    let resp = match c.u8()? {
        OP_R_CONNECTED => match c.u8()? {
            0 => Response::Connected(false),
            1 => Response::Connected(true),
            _ => return Err(FrameError::BadPayload("boolean must be 0 or 1")),
        },
        OP_R_COMPONENT => Response::Component(c.u32()?),
        OP_R_COMPONENT_SIZE => Response::ComponentSize(c.u64()?),
        OP_R_NUM_COMPONENTS => Response::NumComponents(c.u64()?),
        OP_R_ACCEPTED => Response::Accepted { edges: c.u32()? },
        OP_R_STATS => match version {
            WireVersion::V1 => Response::Stats(StatsReport {
                epoch: c.u64()?,
                vertices: c.u64()?,
                num_components: c.u64()?,
                edges_ingested: c.u64()?,
                epochs_published: c.u64()?,
                queue_depth: c.u64()?,
                requests_shed: c.u64()?,
                wal_records: c.u64()?,
                faults_injected: c.u64()?,
                tenants: 0,
            }),
            WireVersion::V2 => {
                if c.u8()? != STATS_VERSION {
                    return Err(FrameError::BadPayload("unsupported stats version"));
                }
                let count = c.u8()?;
                let mut s = StatsReport::default();
                for _ in 0..count {
                    let tag = c.u8()?;
                    let value = c.u64()?;
                    match tag {
                        TAG_EPOCH => s.epoch = value,
                        TAG_VERTICES => s.vertices = value,
                        TAG_NUM_COMPONENTS => s.num_components = value,
                        TAG_EDGES_INGESTED => s.edges_ingested = value,
                        TAG_EPOCHS_PUBLISHED => s.epochs_published = value,
                        TAG_QUEUE_DEPTH => s.queue_depth = value,
                        TAG_REQUESTS_SHED => s.requests_shed = value,
                        TAG_WAL_RECORDS => s.wal_records = value,
                        TAG_FAULTS_INJECTED => s.faults_injected = value,
                        TAG_TENANTS => s.tenants = value,
                        // Unknown tag: a field from a newer server.
                        // Self-describing means we can skip it instead of
                        // misparsing everything after it.
                        _ => {}
                    }
                }
                Response::Stats(s)
            }
        },
        OP_R_METRICS => {
            let rest = c.take(payload.len() - 1)?;
            let text = std::str::from_utf8(rest)
                .map_err(|_| FrameError::BadPayload("metrics exposition is not UTF-8"))?;
            Response::Metrics(text.to_string())
        }
        OP_R_BYE => Response::Bye,
        OP_R_OVERLOADED => Response::Overloaded {
            queue_depth: c.u64()?,
        },
        OP_R_ERR => {
            let rest = c.take(payload.len() - 1)?;
            let msg = std::str::from_utf8(rest)
                .map_err(|_| FrameError::BadPayload("error message is not UTF-8"))?;
            Response::Err(msg.to_string())
        }
        OP_R_TENANT_CREATED => Response::TenantCreated,
        OP_R_TENANT_DROPPED => Response::TenantDropped,
        OP_R_TENANTS => {
            let count = c.u32()? as usize;
            // Each entry is at least its one-byte length prefix, so a
            // lying count is caught before any allocation.
            if count > payload.len() {
                return Err(FrameError::Truncated {
                    needed: 5 + count,
                    got: payload.len(),
                });
            }
            let mut names = Vec::with_capacity(count);
            for _ in 0..count {
                let len = c.u8()? as usize;
                let raw = c.take(len)?;
                let name = std::str::from_utf8(raw)
                    .map_err(|_| FrameError::BadPayload("tenant name is not UTF-8"))?;
                names.push(name.to_string());
            }
            Response::Tenants(names)
        }
        OP_R_TRACES => {
            let node_len = c.u8()? as usize;
            let raw = c.take(node_len)?;
            let node = std::str::from_utf8(raw)
                .map_err(|_| FrameError::BadPayload("node name is not UTF-8"))?
                .to_string();
            let count = c.u32()? as usize;
            // Fixed-width spans: a lying count is caught against the
            // payload length before any allocation.
            let declared = count
                .checked_mul(SPAN_WIRE_BYTES)
                .ok_or(FrameError::BadPayload("span count overflows"))?;
            if payload.len() < 6 + node_len + declared {
                return Err(FrameError::Truncated {
                    needed: 6 + node_len + declared,
                    got: payload.len(),
                });
            }
            let mut spans = Vec::with_capacity(count);
            for _ in 0..count {
                spans.push(Span {
                    trace_id: c.u64()?,
                    span_id: c.u64()?,
                    parent_span: c.u64()?,
                    stage: c.u64()? as u16,
                    arg: c.u64()?,
                    start_us: c.u64()?,
                    dur_ns: c.u64()?,
                });
            }
            Response::Traces { node, spans }
        }
        OP_R_DEGRADED => {
            let rest = c.rest();
            // Reject nesting before recursing: a payload of repeated
            // degraded tags must not recurse once per byte.
            if rest.first() == Some(&OP_R_DEGRADED) {
                return Err(FrameError::BadPayload("nested degraded response"));
            }
            // The inner decoder consumes (and `finish`es) the rest.
            let inner = decode_response_with(rest, version)?;
            return Ok(Response::Degraded(Box::new(inner)));
        }
        op => return Err(FrameError::UnknownOpcode(op)),
    };
    c.finish()?;
    Ok(resp)
}

/// Writes one length-prefixed frame. The prefix and payload go out in a
/// single `write_all` so a frame is one TCP segment for small payloads.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME_LEN);
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF
/// (peer closed between frames); a mid-frame EOF or an oversized /
/// zero-length prefix is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        // PANIC-OK: `filled < 4` loop bound keeps the range in the array.
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(FrameError::Truncated {
                    needed: 4,
                    got: filled,
                }
                .into())
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len }.into());
    }
    if len == 0 {
        return Err(FrameError::BadPayload("zero-length payload").into());
    }
    let mut payload = vec![0u8; len];
    let mut read = 0;
    while read < len {
        // PANIC-OK: `read < len` loop bound keeps the range in the vec.
        match r.read(&mut payload[read..])? {
            0 => {
                return Err(FrameError::Truncated {
                    needed: len,
                    got: read,
                }
                .into())
            }
            n => read += n,
        }
    }
    Ok(Some(payload))
}

/// Sends `req` as a v1 frame and reads the matching response (simple
/// blocking RPC used by clients and the load generator).
pub fn call(stream: &mut (impl Read + Write), req: &Request) -> Result<Response, WireError> {
    write_frame(stream, &encode_request(req))?;
    let payload = read_frame(stream)?.ok_or_else(closed_early)?;
    Ok(decode_response(&payload)?)
}

/// Sends `req` as a v2 frame scoped to `tenant` and reads the matching
/// (v2-encoded) response.
pub fn call_v2(
    stream: &mut (impl Read + Write),
    tenant: &TenantId,
    req: &Request,
) -> Result<Response, WireError> {
    call_traced(stream, tenant, TraceCtx::NONE, req)
}

/// [`call_v2`] carrying a trace context in the envelope.
pub fn call_traced(
    stream: &mut (impl Read + Write),
    tenant: &TenantId,
    ctx: TraceCtx,
    req: &Request,
) -> Result<Response, WireError> {
    write_frame(stream, &encode_request_traced(tenant, ctx, req))?;
    let payload = read_frame(stream)?.ok_or_else(closed_early)?;
    Ok(decode_response_v2(&payload)?)
}

fn closed_early() -> WireError {
    WireError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "server closed before responding",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Connected(0, u32::MAX),
            Request::Component(7),
            Request::ComponentSize(123),
            Request::NumComponents,
            Request::InsertEdges(vec![]),
            Request::InsertEdges(vec![(1, 2), (3, 4), (0, 0)]),
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::CreateTenant {
                name: TenantId::new("tenant-a").unwrap(),
                vertices: 1 << 20,
            },
            Request::DropTenant {
                name: TenantId::new("tenant-a").unwrap(),
            },
            Request::ListTenants,
            Request::DumpTraces,
        ]
    }

    fn sample_span(i: u64) -> Span {
        Span {
            trace_id: 0xAB00 + i,
            span_id: (7 << 48) | i,
            parent_span: i / 2,
            stage: (i % 10 + 1) as u16,
            arg: i * 3,
            start_us: 1_700_000_000_000_000 + i,
            dur_ns: 42_000 + i,
        }
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Connected(true),
            Response::Connected(false),
            Response::Component(42),
            Response::ComponentSize(1 << 40),
            Response::NumComponents(3),
            Response::Accepted { edges: 512 },
            Response::Stats(StatsReport {
                epoch: 9,
                vertices: 1_000_000,
                num_components: 17,
                edges_ingested: 5_000_000,
                epochs_published: 8,
                queue_depth: 64,
                requests_shed: 12,
                wal_records: 7,
                faults_injected: 3,
                tenants: 0,
            }),
            Response::Metrics("# TYPE x counter\nx 1\n".into()),
            Response::Metrics(String::new()),
            Response::Bye,
            Response::Overloaded { queue_depth: 9999 },
            Response::Err("vertex 99 out of range".into()),
            Response::Err(String::new()),
            Response::TenantCreated,
            Response::TenantDropped,
            Response::Tenants(vec![]),
            Response::Tenants(vec!["default".into(), "tenant-a".into()]),
            Response::Traces {
                node: "router".into(),
                spans: vec![],
            },
            Response::Traces {
                node: "serve".into(),
                spans: (0..5).map(sample_span).collect(),
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let enc = encode_response(&resp);
            assert_eq!(decode_response(&enc).unwrap(), resp, "{resp:?}");
        }
    }

    /// Fuzz-ish: every strict prefix of every valid payload must decode
    /// to a typed error — never panic, never succeed.
    #[test]
    fn truncated_payloads_yield_typed_errors() {
        for req in sample_requests() {
            let enc = encode_request(&req);
            for cut in 0..enc.len() {
                let err = decode_request(&enc[..cut])
                    .expect_err(&format!("{req:?} truncated to {cut} bytes decoded"));
                assert!(
                    matches!(
                        err,
                        FrameError::Truncated { .. } | FrameError::BadPayload(_)
                    ),
                    "{req:?} cut at {cut}: unexpected error {err:?}"
                );
            }
        }
        type ResponseDecoder = fn(&[u8]) -> Result<Response, FrameError>;
        for resp in sample_responses() {
            let cases: [(Vec<u8>, ResponseDecoder); 2] = [
                (encode_response(&resp), decode_response),
                (encode_response_v2(&resp), decode_response_v2),
            ];
            for (enc, decode) in cases {
                for cut in 0..enc.len() {
                    if decode(&enc[..cut]).is_ok() {
                        // The only prefixes that may decode are shortened
                        // trailing-text payloads (Err and Metrics carry
                        // raw UTF-8 delimited by the frame length).
                        assert!(
                            matches!(resp, Response::Err(_) | Response::Metrics(_)),
                            "{resp:?} cut at {cut} decoded"
                        );
                    }
                }
            }
        }
        // The envelope itself: every strict prefix errs, never panics.
        let enc = encode_request_v2(
            &TenantId::new("tenant-a").unwrap(),
            &Request::Connected(1, 2),
        );
        for cut in 0..enc.len() {
            assert!(decode_request_any(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    /// Fuzz-ish: trailing garbage after a complete value is rejected.
    #[test]
    fn trailing_bytes_rejected() {
        for req in sample_requests() {
            let mut enc = encode_request(&req);
            enc.push(0xAB);
            assert_eq!(
                decode_request(&enc).unwrap_err(),
                FrameError::Trailing { extra: 1 },
                "{req:?}"
            );
        }
    }

    /// Fuzz-ish: deterministic pseudo-random byte soup never panics and
    /// never aliases to a valid frame silently growing huge buffers.
    #[test]
    fn garbage_payloads_never_panic() {
        let mut state = 0x12345678u64;
        for trial in 0..2_000 {
            let len = (trial % 64) + 1;
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            // Must return, not panic; both Ok and Err are acceptable.
            let _ = decode_request(&bytes);
            let _ = decode_request_any(&bytes);
            let _ = decode_response(&bytes);
            let _ = decode_response_v2(&bytes);
        }
    }

    #[test]
    fn v2_envelope_roundtrips_every_request() {
        for name in ["default", "tenant-a", "x"] {
            let tenant = TenantId::new(name).unwrap();
            for req in sample_requests() {
                let enc = encode_request_v2(&tenant, &req);
                assert_eq!(enc[0], ENVELOPE_MARKER);
                let (ver, got_tenant, got) = decode_request_any(&enc).expect("v2 decodes");
                assert_eq!(ver, WireVersion::V2);
                assert_eq!(got_tenant, tenant);
                assert_eq!(got, req, "{req:?} via {name}");
            }
        }
    }

    #[test]
    fn v1_payloads_route_to_the_default_tenant() {
        for req in sample_requests() {
            let (ver, tenant, got) = decode_request_any(&encode_request(&req)).unwrap();
            assert_eq!(ver, WireVersion::V1);
            assert!(tenant.is_default());
            assert_eq!(got, req);
        }
    }

    #[test]
    fn v2_envelope_rejects_bad_version_and_bad_names() {
        let tenant = TenantId::new("t").unwrap();
        let good = encode_request_v2(&tenant, &Request::Stats);

        let mut wrong_version = good.clone();
        wrong_version[1] = 3;
        assert_eq!(
            decode_request_any(&wrong_version).unwrap_err(),
            FrameError::BadPayload("unsupported wire version")
        );

        // Uppercase byte in the name: validation rejects at decode.
        let mut bad_name = good.clone();
        bad_name[3] = b'T';
        assert!(matches!(
            decode_request_any(&bad_name).unwrap_err(),
            FrameError::BadPayload(_)
        ));

        // Trailing garbage after the inner payload is still caught.
        let mut trailing = good;
        trailing.push(0xAB);
        assert_eq!(
            decode_request_any(&trailing).unwrap_err(),
            FrameError::Trailing { extra: 1 }
        );
    }

    #[test]
    fn traced_envelopes_roundtrip_and_contextless_frames_stay_none() {
        let tenant = TenantId::new("tenant-a").unwrap();
        let ctx = TraceCtx {
            trace_id: 0xDEAD_BEEF_CAFE_0001,
            parent_span: (9 << 48) | 3,
        };
        for req in sample_requests() {
            let enc = encode_request_traced(&tenant, ctx, &req);
            let (ver, got_tenant, got_ctx, got) =
                decode_request_traced(&enc).expect("traced v2 decodes");
            assert_eq!(ver, WireVersion::V2);
            assert_eq!(got_tenant, tenant);
            assert_eq!(got_ctx, ctx, "{req:?}");
            assert_eq!(got, req);
            // Every strict prefix errors, never panics.
            for cut in 0..enc.len() {
                assert!(decode_request_traced(&enc[..cut]).is_err(), "cut {cut}");
            }
            // Trailing garbage after the inner payload is still caught.
            let mut trailing = enc;
            trailing.push(0xAB);
            assert!(decode_request_traced(&trailing).is_err());
        }
        // An unsampled context encodes to the plain v2 envelope …
        let plain = encode_request_v2(&tenant, &Request::Stats);
        assert_eq!(
            encode_request_traced(&tenant, TraceCtx::NONE, &Request::Stats),
            plain
        );
        // … and contextless v2 / bare v1 payloads decode with NONE.
        let (_, _, got_ctx, _) = decode_request_traced(&plain).unwrap();
        assert_eq!(got_ctx, TraceCtx::NONE);
        let (ver, tenant, got_ctx, req) =
            decode_request_traced(&encode_request(&Request::NumComponents)).unwrap();
        assert_eq!(ver, WireVersion::V1);
        assert!(tenant.is_default());
        assert_eq!(got_ctx, TraceCtx::NONE);
        assert_eq!(req, Request::NumComponents);
    }

    #[test]
    fn traces_decode_rejects_lying_counts_and_bad_node_names() {
        // Claims 1M spans but carries none: caught before allocation.
        let mut enc = vec![OP_R_TRACES, 1, b'r'];
        enc.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            decode_response_v2(&enc).unwrap_err(),
            FrameError::Truncated { .. }
        ));
        // Node name must be UTF-8.
        let mut bad = vec![OP_R_TRACES, 1, 0xFF];
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_response_v2(&bad).unwrap_err(),
            FrameError::BadPayload(_)
        ));
    }

    #[test]
    fn stats_v2_carries_tenants_and_v1_stays_frozen() {
        let stats = StatsReport {
            epoch: 4,
            tenants: 3,
            ..StatsReport::default()
        };
        let resp = Response::Stats(stats.clone());

        // v1: the frozen 73-byte positional layout, `tenants` dropped.
        let v1 = encode_response(&resp);
        assert_eq!(v1.len(), 73);
        match decode_response(&v1).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.epoch, 4);
                assert_eq!(s.tenants, 0, "v1 cannot carry the tenants field");
            }
            other => panic!("expected stats, got {other:?}"),
        }

        // v2: lossless.
        let v2 = encode_response_v2(&resp);
        assert_eq!(decode_response_v2(&v2).unwrap(), resp);
    }

    #[test]
    fn stats_v2_skips_unknown_tags_and_rejects_unknown_versions() {
        // Hand-build a v2 stats payload with one known and one unknown
        // field: a newer server's extra field must not break decoding.
        let mut enc = vec![OP_R_STATS, STATS_VERSION, 2];
        enc.push(TAG_EPOCH);
        enc.extend_from_slice(&7u64.to_le_bytes());
        enc.push(200); // unknown tag
        enc.extend_from_slice(&99u64.to_le_bytes());
        match decode_response_v2(&enc).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.epoch, 7);
                assert_eq!(s.vertices, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }

        let bad = vec![OP_R_STATS, 9, 0];
        assert_eq!(
            decode_response_v2(&bad).unwrap_err(),
            FrameError::BadPayload("unsupported stats version")
        );
    }

    #[test]
    fn degraded_roundtrips_v2_and_degrades_to_err_on_v1() {
        let samples = vec![
            Response::Degraded(Box::new(Response::Connected(false))),
            Response::Degraded(Box::new(Response::Component(7))),
            Response::Degraded(Box::new(Response::ComponentSize(0))),
            Response::Degraded(Box::new(Response::NumComponents(3))),
            Response::Degraded(Box::new(Response::Stats(StatsReport {
                epoch: 2,
                tenants: 3,
                ..StatsReport::default()
            }))),
        ];
        for resp in &samples {
            // v2: tagged, lossless.
            let v2 = encode_response_v2(resp);
            assert_eq!(v2[0], OP_R_DEGRADED);
            assert_eq!(decode_response_v2(&v2).unwrap(), *resp, "{resp:?}");
            // v1: a partial answer must not look authoritative.
            let v1 = encode_response(resp);
            match decode_response(&v1).unwrap() {
                Response::Err(msg) => assert!(msg.contains("degraded"), "{msg}"),
                other => panic!("v1 degraded decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn degraded_decode_rejects_nesting_truncation_and_trailing() {
        // Nesting is rejected before recursing, so a payload of repeated
        // tags cannot recurse once per byte.
        let nested = vec![OP_R_DEGRADED, OP_R_DEGRADED, OP_R_CONNECTED, 1];
        assert_eq!(
            decode_response_v2(&nested).unwrap_err(),
            FrameError::BadPayload("nested degraded response")
        );
        // A payload that is nothing but degraded tags must error, not
        // overflow the stack.
        assert!(decode_response_v2(&[OP_R_DEGRADED; 64]).is_err());
        // Every strict prefix of a fixed-width inner payload errors.
        let enc = encode_response_v2(&Response::Degraded(Box::new(Response::NumComponents(9))));
        for cut in 0..enc.len() {
            assert!(decode_response_v2(&enc[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage after the inner payload is still caught.
        let mut trailing = enc;
        trailing.push(0xAB);
        assert!(matches!(
            decode_response_v2(&trailing).unwrap_err(),
            FrameError::Trailing { .. }
        ));
    }

    #[test]
    fn tenant_list_decode_rejects_lying_counts() {
        // Claims 1M names but carries none: caught before allocation.
        let mut enc = vec![OP_R_TENANTS];
        enc.extend_from_slice(&1_000_000u32.to_le_bytes());
        assert!(matches!(
            decode_response_v2(&enc).unwrap_err(),
            FrameError::Truncated { .. }
        ));
    }

    #[test]
    fn unknown_opcodes_are_named() {
        assert_eq!(
            decode_request(&[0x7F]).unwrap_err(),
            FrameError::UnknownOpcode(0x7F)
        );
        assert_eq!(
            decode_response(&[0x00]).unwrap_err(),
            FrameError::UnknownOpcode(0x00)
        );
        assert!(FrameError::UnknownOpcode(0x7F).to_string().contains("0x7f"));
    }

    #[test]
    fn insert_count_must_match_payload() {
        // Claims 1000 edges but carries one.
        let mut enc = vec![0x05];
        enc.extend_from_slice(&1000u32.to_le_bytes());
        enc.extend_from_slice(&[0u8; 8]);
        let err = decode_request(&enc).unwrap_err();
        assert!(matches!(err, FrameError::Truncated { .. }), "{err:?}");

        // Claims usize-overflowing count.
        let mut enc = vec![0x05];
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_request(&enc).unwrap_err();
        assert!(
            matches!(
                err,
                FrameError::Truncated { .. } | FrameError::BadPayload(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn frame_io_roundtrip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&Request::NumComponents)).unwrap();
        write_frame(&mut buf, &encode_request(&Request::Connected(1, 2))).unwrap();
        let mut r = &buf[..];
        assert_eq!(
            decode_request(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::NumComponents
        );
        assert_eq!(
            decode_request(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Connected(1, 2)
        );
        // Clean EOF between frames.
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn frame_reader_rejects_oversized_and_mid_frame_eof() {
        // Oversized declared length: rejected before allocation.
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        match read_frame(&mut &huge[..]) {
            Err(WireError::Frame(FrameError::Oversized { len })) => {
                assert_eq!(len, MAX_FRAME_LEN + 1)
            }
            other => panic!("expected Oversized, got {other:?}"),
        }

        // Zero-length payload.
        let zero = 0u32.to_le_bytes();
        assert!(matches!(
            read_frame(&mut &zero[..]),
            Err(WireError::Frame(FrameError::BadPayload(_)))
        ));

        // EOF inside the length prefix.
        let partial = [5u8, 0];
        assert!(matches!(
            read_frame(&mut &partial[..]),
            Err(WireError::Frame(FrameError::Truncated {
                needed: 4,
                got: 2
            }))
        ));

        // EOF inside the payload.
        let mut buf = 10u32.to_le_bytes().to_vec();
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(WireError::Frame(FrameError::Truncated {
                needed: 10,
                got: 3
            }))
        ));
    }

    #[test]
    fn error_display_is_readable() {
        let e = FrameError::Truncated { needed: 9, got: 2 };
        assert_eq!(e.to_string(), "truncated frame: needed 9 bytes, got 2");
        assert!(FrameError::Oversized { len: 1 << 30 }
            .to_string()
            .contains("exceeds max"));
        assert!(FrameError::Trailing { extra: 3 }.to_string().contains("3"));
        let w = WireError::from(FrameError::BadPayload("nope"));
        assert_eq!(w.to_string(), "bad payload: nope");
    }
}
