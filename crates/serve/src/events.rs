//! The serving stack's flight recorder: which events exist, the
//! process-global ring they land in, and the JSON dump format.
//!
//! The ring itself ([`afforest_obs::flight::Ring`]) is kind-agnostic;
//! this module pins down the serving vocabulary — every [`EventKind`],
//! its numeric code on the wire, and the meaning of its up-to-three
//! `u64` payload words — and owns the dump/ingest paths: a panic hook,
//! an explicit [`write_dump`] used on clean shutdown, and [`parse_dump`]
//! used by `afforest recover --events` and the chaos tests.
//!
//! Dump schema (`schema` key guards future changes):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "recorded": 17,
//!   "events": [
//!     {"seq": 0, "ts_us": 1203, "kind": "epoch_published",
//!      "fields": {"epoch": 1, "edges": 64, "lag_us": 812}}
//!   ]
//! }
//! ```

use afforest_obs::flight::{Event, Ring};
use afforest_obs::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Current dump schema version.
pub const SCHEMA: u64 = 1;

/// Every event the serving stack records. Codes are stable (dumps from
/// older binaries stay readable); new kinds append.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// The writer published a new epoch snapshot.
    /// Fields: epoch, edges applied, publish lag in µs.
    EpochPublished = 1,
    /// The writer applied a drained batch to the incremental structure.
    /// Fields: epoch it will publish as, edges, apply time in µs.
    BatchApplied = 2,
    /// The WAL compacted (snapshot written, log truncated).
    /// Fields: records dropped, log bytes dropped.
    WalCompaction = 3,
    /// Bounded-queue admission rejected an insert.
    /// Fields: queue depth at rejection, edges rejected, tenant ordinal.
    OverloadShed = 4,
    /// The chaos plan fired at one of its sites.
    /// Fields: site code (see [`fault_site`]), site-specific detail.
    FaultInjected = 5,
    /// An accept worker exited.
    /// Fields: worker index.
    WorkerDeath = 6,
    /// A WAL append or compaction failed with a real I/O error.
    /// Fields: epoch being written.
    WalError = 7,
    /// A tenant was admitted to the engine registry.
    /// Fields: tenant ordinal (registration order), vertex count.
    TenantCreated = 8,
    /// A tenant was removed from the engine registry.
    /// Fields: tenant ordinal.
    TenantDropped = 9,
    /// A shard's health state machine transitioned (router process).
    /// Fields: shard, old state code, new state code (0 = healthy,
    /// 1 = suspect, 2 = down, 3 = probing).
    ShardHealthChanged = 10,
    /// The router replayed a shard's parked write batches after the
    /// shard returned to healthy.
    /// Fields: shard, batches replayed, edges replayed.
    ParkReplayed = 11,
}

/// All kinds, for exhaustive iteration in tests and docs.
pub const KINDS: [EventKind; 11] = [
    EventKind::EpochPublished,
    EventKind::BatchApplied,
    EventKind::WalCompaction,
    EventKind::OverloadShed,
    EventKind::FaultInjected,
    EventKind::WorkerDeath,
    EventKind::WalError,
    EventKind::TenantCreated,
    EventKind::TenantDropped,
    EventKind::ShardHealthChanged,
    EventKind::ParkReplayed,
];

impl EventKind {
    /// The stable snake_case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EpochPublished => "epoch_published",
            EventKind::BatchApplied => "batch_applied",
            EventKind::WalCompaction => "wal_compaction",
            EventKind::OverloadShed => "overload_shed",
            EventKind::FaultInjected => "fault_injected",
            EventKind::WorkerDeath => "worker_death",
            EventKind::WalError => "wal_error",
            EventKind::TenantCreated => "tenant_created",
            EventKind::TenantDropped => "tenant_dropped",
            EventKind::ShardHealthChanged => "shard_health_changed",
            EventKind::ParkReplayed => "park_replayed",
        }
    }

    /// Names of the payload words this kind uses (≤ 3; unused words are
    /// omitted from dumps).
    pub fn field_names(self) -> &'static [&'static str] {
        match self {
            EventKind::EpochPublished => &["epoch", "edges", "lag_us"],
            EventKind::BatchApplied => &["epoch", "edges", "apply_us"],
            EventKind::WalCompaction => &["records", "bytes"],
            EventKind::OverloadShed => &["queue_depth", "edges", "tenant"],
            EventKind::FaultInjected => &["site", "detail"],
            EventKind::WorkerDeath => &["worker"],
            EventKind::WalError => &["epoch"],
            EventKind::TenantCreated => &["tenant", "vertices"],
            EventKind::TenantDropped => &["tenant"],
            EventKind::ShardHealthChanged => &["shard", "from", "to"],
            EventKind::ParkReplayed => &["shard", "batches", "edges"],
        }
    }

    fn from_code(code: u16) -> Option<EventKind> {
        KINDS.iter().copied().find(|k| *k as u16 == code)
    }
}

/// Site codes carried in `FaultInjected.site`.
pub mod fault_site {
    /// A WAL record was dropped whole (detail: record bytes dropped).
    pub const WAL_DROP: u64 = 1;
    /// A WAL record was torn short (detail: bytes kept).
    pub const WAL_SHORT_WRITE: u64 = 2;
    /// A batch apply was delayed (detail: delay in µs).
    pub const APPLY_DELAY: u64 = 3;
    /// A response frame was torn (detail: bytes kept).
    pub const TORN_FRAME: u64 = 4;
    /// An accept worker was killed (detail: 0).
    pub const KILL_WORKER: u64 = 5;
    /// A cluster fault plan killed a shard worker (detail: shard).
    pub const SHARD_KILL: u64 = 6;
    /// A cluster fault plan hung a shard worker (detail: shard).
    pub const SHARD_HANG: u64 = 7;
    /// A cluster fault plan slowed a shard worker (detail: shard).
    pub const SHARD_SLOW: u64 = 8;
    /// A cluster fault plan partitioned a shard worker (detail: shard).
    pub const SHARD_PARTITION: u64 = 9;

    /// Human name for a site code ("?" if unknown).
    pub fn name(code: u64) -> &'static str {
        match code {
            WAL_DROP => "wal_drop",
            WAL_SHORT_WRITE => "wal_short_write",
            APPLY_DELAY => "apply_delay",
            TORN_FRAME => "torn_frame",
            KILL_WORKER => "kill_worker",
            SHARD_KILL => "shard_kill",
            SHARD_HANG => "shard_hang",
            SHARD_SLOW => "shard_slow",
            SHARD_PARTITION => "shard_partition",
            _ => "?",
        }
    }
}

/// The process-global flight ring.
pub fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(Ring::new)
}

/// Records one event in the global ring.
pub fn record(kind: EventKind, args: [u64; 3]) {
    ring().record(kind as u16, args);
}

/// Serializes the global ring's current contents as a dump document.
pub fn dump_json() -> String {
    render_dump(ring().recorded(), &ring().snapshot())
}

fn render_dump(recorded: u64, events: &[Event]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    let _ = write!(
        out,
        "{{\"schema\": {SCHEMA}, \"recorded\": {recorded}, \"events\": ["
    );
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"seq\": {}, \"ts_us\": {}, \"kind\": ",
            ev.seq, ev.ts_us
        );
        match EventKind::from_code(ev.kind) {
            Some(kind) => {
                json::write_escaped(&mut out, kind.name());
                out.push_str(", \"fields\": {");
                for (j, field) in kind.field_names().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    json::write_escaped(&mut out, field);
                    let _ = write!(out, ": {}", ev.args[j]);
                }
                out.push('}');
            }
            // A lapped-slot torn write (see the ring docs) or a dump read
            // by an older binary can yield an unknown code; keep the raw
            // words so nothing is silently lost.
            None => {
                let _ = write!(
                    out,
                    "\"unknown_{}\", \"fields\": {{\"arg0\": {}, \"arg1\": {}, \"arg2\": {}}}",
                    ev.kind, ev.args[0], ev.args[1], ev.args[2]
                );
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// One event read back from a dump.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DumpEvent {
    /// Global sequence number.
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub ts_us: u64,
    /// Kind name (`epoch_published`, ... or `unknown_N`).
    pub kind: String,
    /// Named payload words.
    pub fields: BTreeMap<String, u64>,
}

/// A parsed dump document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dump {
    /// Total events ever recorded (≥ `events.len()`).
    pub recorded: u64,
    /// Retained events, oldest first.
    pub events: Vec<DumpEvent>,
}

impl Dump {
    /// Events of one kind, in order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &DumpEvent> {
        self.events.iter().filter(move |e| e.kind == kind.name())
    }

    /// Count of `fault_injected` events with the given site code.
    pub fn faults_at(&self, site: u64) -> usize {
        self.of_kind(EventKind::FaultInjected)
            .filter(|e| e.fields.get("site") == Some(&site))
            .count()
    }
}

/// Parses a dump document produced by [`dump_json`].
pub fn parse_dump(text: &str) -> Result<Dump, String> {
    let doc = json::parse(text)?;
    let schema = doc
        .get("schema")
        .and_then(Value::as_int)
        .ok_or("dump missing schema")?;
    if schema != SCHEMA {
        return Err(format!("unsupported dump schema {schema}"));
    }
    let recorded = doc
        .get("recorded")
        .and_then(Value::as_int)
        .ok_or("dump missing recorded")?;
    let raw = doc
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("dump missing events")?;
    let mut events = Vec::with_capacity(raw.len());
    for ev in raw {
        let seq = ev
            .get("seq")
            .and_then(Value::as_int)
            .ok_or("event missing seq")?;
        let ts_us = ev
            .get("ts_us")
            .and_then(Value::as_int)
            .ok_or("event missing ts_us")?;
        let kind = ev
            .get("kind")
            .and_then(Value::as_str)
            .ok_or("event missing kind")?
            .to_string();
        let mut fields = BTreeMap::new();
        for (k, v) in ev
            .get("fields")
            .and_then(Value::as_obj)
            .ok_or("event missing fields")?
        {
            fields.insert(k.clone(), v.as_int().ok_or("non-integer field")?);
        }
        events.push(DumpEvent {
            seq,
            ts_us,
            kind,
            fields,
        });
    }
    Ok(Dump { recorded, events })
}

/// Writes the current dump to `path` (best-effort parent creation).
pub fn write_dump(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, dump_json())
}

/// Installs a panic hook that writes the flight dump to `path` before
/// delegating to the previous hook. Safe to call once per process; the
/// dump write is infallible from the hook's perspective (errors are
/// reported to stderr, never panicked on).
pub fn install_panic_hook(path: PathBuf) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        match write_dump(&path) {
            Ok(()) => eprintln!("flight recorder dumped to {}", path.display()),
            Err(e) => eprintln!("flight recorder dump to {} failed: {e}", path.display()),
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_and_names_are_distinct() {
        for (i, a) in KINDS.iter().enumerate() {
            for b in &KINDS[i + 1..] {
                assert_ne!(*a as u16, *b as u16);
                assert_ne!(a.name(), b.name());
            }
            assert_eq!(EventKind::from_code(*a as u16), Some(*a));
            assert!(a.field_names().len() <= 3);
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(999), None);
    }

    #[test]
    fn render_parse_roundtrip() {
        let events = vec![
            Event {
                seq: 0,
                ts_us: 10,
                kind: EventKind::EpochPublished as u16,
                args: [1, 64, 812],
            },
            Event {
                seq: 1,
                ts_us: 20,
                kind: EventKind::FaultInjected as u16,
                args: [fault_site::WAL_DROP, 132, 0],
            },
            Event {
                seq: 2,
                ts_us: 30,
                kind: 999, // unknown code survives the roundtrip
                args: [7, 8, 9],
            },
        ];
        let text = render_dump(5, &events);
        let dump = parse_dump(&text).expect("dump parses");
        assert_eq!(dump.recorded, 5);
        assert_eq!(dump.events.len(), 3);
        assert_eq!(dump.events[0].kind, "epoch_published");
        assert_eq!(dump.events[0].fields["lag_us"], 812);
        assert_eq!(dump.faults_at(fault_site::WAL_DROP), 1);
        assert_eq!(dump.faults_at(fault_site::KILL_WORKER), 0);
        assert_eq!(dump.events[2].kind, "unknown_999");
        assert_eq!(dump.events[2].fields["arg2"], 9);
    }

    #[test]
    fn empty_dump_parses() {
        let dump = parse_dump(&render_dump(0, &[])).unwrap();
        assert_eq!(dump.recorded, 0);
        assert!(dump.events.is_empty());
    }

    #[test]
    fn parse_rejects_wrong_schema_and_shape() {
        assert!(parse_dump("{}").is_err());
        assert!(parse_dump("{\"schema\": 2, \"recorded\": 0, \"events\": []}").is_err());
        assert!(parse_dump("{\"schema\": 1, \"recorded\": 0}").is_err());
        assert!(parse_dump("not json").is_err());
    }

    #[test]
    fn global_ring_records_and_dumps() {
        // Global state: assert via deltas only, and don't assume other
        // tests haven't recorded events.
        let before = ring().recorded();
        record(EventKind::WorkerDeath, [3, 0, 0]);
        assert!(ring().recorded() > before);
        let dump = parse_dump(&dump_json()).expect("global dump parses");
        assert!(dump
            .of_kind(EventKind::WorkerDeath)
            .any(|e| e.fields.get("worker") == Some(&3)));
    }

    #[test]
    fn write_dump_creates_parent_dirs() {
        let dir = std::env::temp_dir().join(format!("afforest-events-{}", std::process::id()));
        let path = dir.join("sub").join("flight.json");
        write_dump(&path).expect("write dump");
        let text = std::fs::read_to_string(&path).unwrap();
        parse_dump(&text).expect("written dump parses");
        std::fs::remove_dir_all(&dir).ok();
    }
}
