//! Typed TCP client for the serving protocol.
//!
//! Before this module, every consumer of the wire protocol — the load
//! generator, the xtask smokes, the integration tests — hand-rolled its
//! own frame encode/decode against raw `TcpStream`s. [`Client`] is the
//! one typed implementation: it owns the connection, speaks either wire
//! version (v1 when scoped to the `default` tenant the legacy way, v2
//! when a tenant is set), carries the retry policy the load generator
//! introduced in PR 4 (capped exponential backoff with jitter, transport
//! reopen on disconnect), and exposes one typed method per request so
//! callers never pattern-match payload bytes again.
//!
//! ```no_run
//! use afforest_serve::{Client, TenantId};
//!
//! let mut client = Client::connect("127.0.0.1:7878")?
//!     .with_tenant(TenantId::new("acme")?);
//! client.insert_edges(&[(0, 1), (1, 2)])?;
//! assert!(client.connected(0, 2)? || client.stats()?.queue_depth > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::protocol::{self, Request, Response, StatsReport, WireError};
use crate::tenant::TenantId;
use afforest_graph::Node;
use afforest_obs::reqtrace::{self, Span, TraceCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Ceiling on a single retry backoff sleep.
pub const MAX_BACKOFF: Duration = Duration::from_millis(100);

/// How a [`Client`] retries shed, timed-out, and disconnected calls.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Re-attempt a failed call at most this many times (0 = never).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry (jittered ±50%, capped at
    /// [`MAX_BACKOFF`]).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff: Duration::from_micros(500),
        }
    }
}

/// Why a typed client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (I/O error or malformed frame) beyond what
    /// the retry policy absorbs.
    Wire(WireError),
    /// The server answered `Response::Err` (e.g. out-of-range vertex,
    /// unknown tenant, refused tenant op).
    Server(String),
    /// Every attempt was shed or lost; the request was abandoned per the
    /// retry policy.
    Exhausted,
    /// The server answered with a response type the request cannot
    /// produce — a protocol bug, not a user error.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Exhausted => write!(f, "request abandoned after exhausting retries"),
            ClientError::Unexpected(msg) => write!(f, "unexpected response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A call outcome that means "the connection is gone", not "the protocol
/// broke": a frame cut short mid-bytes (the server died or tore the
/// response) or a socket-level disconnect. Distinct from a *malformed*
/// frame — an unknown opcode or bad payload on an intact connection is a
/// real protocol error and still propagates.
pub fn is_disconnect(e: &WireError) -> bool {
    use std::io::ErrorKind;
    match e {
        WireError::Frame(crate::protocol::FrameError::Truncated { .. }) => true,
        WireError::Frame(_) => false,
        WireError::Io(io) => matches!(
            io.kind(),
            ErrorKind::UnexpectedEof
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::NotConnected
                | ErrorKind::WriteZero
        ),
    }
}

/// `base · 2^(attempt-1)`, jittered uniformly over ±50% and capped at
/// [`MAX_BACKOFF`]. Jitter decorrelates the retry storms of concurrent
/// clients that were all shed by the same full queue.
pub(crate) fn backoff(base: Duration, attempt: u32, rng: &mut SmallRng) -> Duration {
    let doubled = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
    let jitter = rng.random_range(0.5..1.5);
    Duration::from_nanos((doubled.as_nanos() as f64 * jitter) as u64).min(MAX_BACKOFF)
}

/// A connected protocol client (see module docs).
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
    tenant: Option<TenantId>,
    retry: RetryPolicy,
    read_timeout: Option<Duration>,
    rng: SmallRng,
    last_degraded: bool,
    degraded_answers: u64,
    last_shed_depth: u64,
    tracing: bool,
    last_trace_id: u64,
}

impl Client {
    /// Connects to a server. The client starts tenant-less, speaking
    /// wire protocol v1 — the server routes such frames to the
    /// `default` tenant — and with the default [`RetryPolicy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let peer = stream.peer_addr().map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            peer,
            tenant: None,
            retry: RetryPolicy::default(),
            read_timeout: None,
            rng: SmallRng::seed_from_u64(u64::from(std::process::id()) ^ 0x5EED_C11E),
            last_degraded: false,
            degraded_answers: 0,
            last_shed_depth: 0,
            tracing: false,
            last_trace_id: 0,
        })
    }

    /// Scopes every subsequent request to `tenant`, switching the wire
    /// encoding to v2 (tenant envelope).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Replaces the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Mints a fresh trace id per call and sends it in the request
    /// envelope, so the server (and everything it fans out to) records
    /// spans under that trace. Forces the v2 wire encoding — traced
    /// tenant-less requests ride a `default`-tenant envelope.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// The trace id the most recent traced call was sent under (0 until
    /// the first one). Lets callers correlate a slow answer with the
    /// server-side trace tree.
    pub fn last_trace_id(&self) -> u64 {
        self.last_trace_id
    }

    /// Sets the socket read timeout (re-applied after reconnects).
    pub fn with_read_timeout(self, timeout: Option<Duration>) -> Result<Self, WireError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(WireError::Io)?;
        Ok(Self {
            read_timeout: timeout,
            ..self
        })
    }

    /// The tenant requests are scoped to (`None` = v1 wire, `default`).
    pub fn tenant(&self) -> Option<&TenantId> {
        self.tenant.as_ref()
    }

    /// Performs one blocking request/response exchange — a single
    /// attempt, no retries. Encodes v2 when a tenant is set, v1
    /// otherwise. A trace context is attached when tracing is on (a
    /// fresh root id per attempt) or when the calling thread already has
    /// one in scope (in-process forwarding: the router's shard fan-out
    /// propagates its request context this way).
    pub fn call(&mut self, req: &Request) -> Result<Response, WireError> {
        let ctx = if self.tracing {
            let ctx = TraceCtx::root(reqtrace::mint());
            self.last_trace_id = ctx.trace_id;
            ctx
        } else {
            reqtrace::current()
        };
        if ctx.sampled() {
            let default = TenantId::default_tenant();
            let tenant = self.tenant.as_ref().unwrap_or(&default);
            return protocol::call_traced(&mut self.stream, tenant, ctx, req);
        }
        match &self.tenant {
            Some(t) => protocol::call_v2(&mut self.stream, t, req),
            None => protocol::call(&mut self.stream, req),
        }
    }

    /// [`Client::call`] under the retry policy: `Overloaded` answers,
    /// transport timeouts, and disconnects (the connection is reopened)
    /// are re-attempted with capped jittered backoff. `Ok(None)` means
    /// the request was abandoned after exhausting the policy; hard
    /// failures — including a reconnect that cannot be established —
    /// still propagate.
    pub fn call_retrying(&mut self, req: &Request) -> Result<Option<Response>, WireError> {
        let mut attempt = 0u32;
        loop {
            match self.call(req) {
                Ok(Response::Overloaded { queue_depth }) => self.last_shed_depth = queue_depth,
                Ok(resp) => return Ok(Some(resp)),
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) => {}
                Err(e) if is_disconnect(&e) => self.reconnect()?,
                Err(e) => return Err(e),
            }
            if attempt >= self.retry.max_retries {
                return Ok(None);
            }
            attempt += 1;
            afforest_obs::count(afforest_obs::Counter::Retries, 1);
            afforest_obs::registry::counter("afforest_client_retries_total").inc();
            std::thread::sleep(backoff(self.retry.backoff, attempt, &mut self.rng));
        }
    }

    fn reconnect(&mut self) -> Result<(), WireError> {
        let stream = TcpStream::connect(self.peer).map_err(WireError::Io)?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(self.read_timeout)
            .map_err(WireError::Io)?;
        self.stream = stream;
        Ok(())
    }

    /// Whether the most recent typed answer arrived wrapped in the
    /// degraded tag (the cluster answered with shards missing). Reset by
    /// every typed call.
    pub fn last_answer_degraded(&self) -> bool {
        self.last_degraded
    }

    /// Total degraded answers this client has received.
    pub fn degraded_answers(&self) -> u64 {
        self.degraded_answers
    }

    /// Queue depth reported by the most recent `Overloaded` answer —
    /// the last honest backpressure signal seen before
    /// [`Client::call_retrying`] abandoned a request as shed (0 until
    /// the first such answer).
    pub fn last_shed_queue_depth(&self) -> u64 {
        self.last_shed_depth
    }

    fn typed(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.last_degraded = false;
        let resp = match self.call_retrying(req)? {
            Some(Response::Degraded(inner)) => {
                // Unwrap so callers keep their typed signatures; the
                // partial-answer flag stays observable per call and in
                // the client's metrics.
                self.last_degraded = true;
                self.degraded_answers += 1;
                afforest_obs::registry::counter("afforest_client_degraded_total").inc();
                *inner
            }
            Some(resp) => resp,
            None => return Err(ClientError::Exhausted),
        };
        match resp {
            Response::Err(msg) => Err(ClientError::Server(msg)),
            resp => Ok(resp),
        }
    }

    /// Whether `u` and `v` are in the same component.
    pub fn connected(&mut self, u: Node, v: Node) -> Result<bool, ClientError> {
        match self.typed(&Request::Connected(u, v))? {
            Response::Connected(b) => Ok(b),
            other => Err(unexpected("Connected", &other)),
        }
    }

    /// `u`'s component label.
    pub fn component(&mut self, u: Node) -> Result<Node, ClientError> {
        match self.typed(&Request::Component(u))? {
            Response::Component(l) => Ok(l),
            other => Err(unexpected("Component", &other)),
        }
    }

    /// The size of `u`'s component.
    pub fn component_size(&mut self, u: Node) -> Result<u64, ClientError> {
        match self.typed(&Request::ComponentSize(u))? {
            Response::ComponentSize(s) => Ok(s),
            other => Err(unexpected("ComponentSize", &other)),
        }
    }

    /// Number of connected components.
    pub fn num_components(&mut self) -> Result<u64, ClientError> {
        match self.typed(&Request::NumComponents)? {
            Response::NumComponents(c) => Ok(c),
            other => Err(unexpected("NumComponents", &other)),
        }
    }

    /// Queues `edges` for ingestion, returning the accepted count.
    /// Shed attempts are retried per the policy; [`ClientError::Exhausted`]
    /// means the queue stayed full throughout.
    pub fn insert_edges(&mut self, edges: &[(Node, Node)]) -> Result<u32, ClientError> {
        match self.typed(&Request::InsertEdges(edges.to_vec()))? {
            Response::Accepted { edges } => Ok(edges),
            other => Err(unexpected("InsertEdges", &other)),
        }
    }

    /// The scoped tenant's service counters.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.typed(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// The server's metrics exposition text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.typed(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected("Metrics", &other)),
        }
    }

    /// Registers a new tenant with a `vertices`-sized universe.
    pub fn create_tenant(&mut self, name: &TenantId, vertices: u64) -> Result<(), ClientError> {
        match self.typed(&Request::CreateTenant {
            name: name.clone(),
            vertices,
        })? {
            Response::TenantCreated => Ok(()),
            other => Err(unexpected("CreateTenant", &other)),
        }
    }

    /// Drops a tenant (refused for `default`).
    pub fn drop_tenant(&mut self, name: &TenantId) -> Result<(), ClientError> {
        match self.typed(&Request::DropTenant { name: name.clone() })? {
            Response::TenantDropped => Ok(()),
            other => Err(unexpected("DropTenant", &other)),
        }
    }

    /// Registered tenant names, sorted.
    pub fn list_tenants(&mut self) -> Result<Vec<String>, ClientError> {
        match self.typed(&Request::ListTenants)? {
            Response::Tenants(names) => Ok(names),
            other => Err(unexpected("ListTenants", &other)),
        }
    }

    /// Fetches the server's retained span ring (newest spans, oldest
    /// evicted) along with the node name it records spans under.
    pub fn dump_traces(&mut self) -> Result<(String, Vec<Span>), ClientError> {
        match self.typed(&Request::DumpTraces)? {
            Response::Traces { node, spans } => Ok((node, spans)),
            other => Err(unexpected("DumpTraces", &other)),
        }
    }

    /// Asks the server to shut down; the server answers `Bye` and closes.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        // No retries: re-sending shutdown to a server that is already
        // closing just races the teardown.
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            Response::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(unexpected("Shutdown", &other)),
        }
    }

    /// Waits until the scoped tenant's ingest queue reports empty (or
    /// `timeout` elapses) — the client-side analogue of `Server::flush`.
    pub fn flush(&mut self, timeout: Duration) -> Result<bool, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.stats()?.queue_depth == 0 {
                return Ok(true);
            }
            if Instant::now() >= deadline {
                return Ok(false);
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

fn unexpected(req: &str, resp: &Response) -> ClientError {
    ClientError::Unexpected(format!("{req} answered {resp:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServeConfig;
    use crate::ingest::BatchPolicy;
    use crate::server::Server;
    use std::net::TcpListener;

    #[test]
    fn typed_calls_round_trip_over_tcp_in_both_versions() {
        let server = Server::new(
            8,
            &[(0, 1), (1, 2)],
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_edges: 16,
                    max_delay: Duration::from_millis(1),
                    apply_delay: None,
                })
                .build()
                .unwrap(),
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            // Each worker serves one connection at a time and this test
            // keeps three clients open at once: give the pool headroom.
            s.spawn(|| server.serve_tcp(listener, 4).expect("serve_tcp"));

            // v1 (tenant-less) client lands in `default`.
            let mut v1 = Client::connect(addr).unwrap();
            assert!(v1.connected(0, 2).unwrap());
            assert!(!v1.connected(0, 7).unwrap());
            assert_eq!(v1.insert_edges(&[(2, 3)]).unwrap(), 1);
            assert!(v1.flush(Duration::from_secs(5)).unwrap());
            assert!(v1.connected(0, 3).unwrap());
            assert_eq!(v1.stats().unwrap().vertices, 8);
            match v1.component(99) {
                Err(ClientError::Server(msg)) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("expected server error, got {other:?}"),
            }

            // v2 client creates and works an isolated tenant.
            let t = TenantId::new("wire-v2").unwrap();
            let mut admin = Client::connect(addr).unwrap();
            admin.create_tenant(&t, 4).unwrap();
            let mut v2 = Client::connect(addr).unwrap().with_tenant(t.clone());
            assert!(!v2.connected(0, 3).unwrap());
            v2.insert_edges(&[(0, 3)]).unwrap();
            assert!(v2.flush(Duration::from_secs(5)).unwrap());
            assert!(v2.connected(0, 3).unwrap());
            let stats = v2.stats().unwrap();
            assert_eq!(stats.vertices, 4);
            assert_eq!(stats.tenants, 2);
            assert_eq!(
                admin.list_tenants().unwrap(),
                vec!["default".to_string(), "wire-v2".to_string()]
            );
            admin.drop_tenant(&t).unwrap();
            assert_eq!(admin.list_tenants().unwrap(), vec!["default".to_string()]);

            let text = v1.metrics().unwrap();
            assert!(text.contains("afforest_requests_connected_total"));

            v1.shutdown().unwrap();
        });
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error() {
        let server = Server::new(
            8,
            &[(0, 1)],
            ServeConfig::builder()
                .policy(BatchPolicy {
                    max_edges: 1_000_000,
                    max_delay: Duration::from_secs(600),
                    apply_delay: None,
                })
                .max_queue_depth(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            s.spawn(|| server.serve_tcp(listener, 1).expect("serve_tcp"));
            let mut client = Client::connect(addr).unwrap().with_retry(RetryPolicy {
                max_retries: 2,
                backoff: Duration::from_micros(50),
            });
            client.insert_edges(&[(0, 1), (1, 2)]).unwrap();
            // Queue full forever (parked writer): every retry is shed.
            match client.insert_edges(&[(2, 3)]) {
                Err(ClientError::Exhausted) => {}
                other => panic!("expected Exhausted, got {other:?}"),
            }
            server.request_shutdown();
        });
    }
}
