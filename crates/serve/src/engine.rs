//! Per-tenant engines and the registry that routes requests to them.
//!
//! PR 3's singleton server owned one snapshot store, one ingest queue,
//! and one writer thread. Multi-tenancy factors that bundle out into an
//! [`Engine`] — one per tenant, each with its own epoch sequence, WAL,
//! quota, and labelled metrics — and an [`EngineRegistry`] mapping
//! tenant names to running engines. The TCP front-end and the
//! process-wide concerns (shutdown flag, read deadline, transport
//! errors) stay in `server.rs`; everything graph-shaped lives here.
//!
//! Admission is two-tiered: each engine sheds inserts above its own
//! `max_queue_depth`, and a process-wide [`Backstop`] bounds the *sum*
//! of pending edges across tenants so one process cannot be queued into
//! the ground by many tenants that are each individually under quota.
//!
//! Lock discipline (checked by the `lock-order` analysis pass): the
//! registry's map guard and an engine's writer-handle guard are only
//! ever held as single-statement temporaries or in leaf code that
//! acquires nothing else, so neither nests with the snapshot store or
//! the ingest queue.

use crate::config::ServeConfig;
use crate::events::{self, EventKind};
use crate::faults::FaultPlan;
use crate::ingest::{BatchPolicy, Drained, IngestQueue, ServeStats};
use crate::metrics::{metrics, tenant_metrics, TenantMetrics};
use crate::protocol::{Request, Response, StatsReport};
use crate::server::ServeError;
use crate::snapshot::{Snapshot, SnapshotStore};
use crate::tenant::TenantId;
use crate::wal::Wal;
use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_obs::reqtrace::{self, Stage, StageSpan};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Process-wide pending-edge accounting shared by every engine.
///
/// Reservation is a token scheme over one atomic: `try_reserve` adds
/// first and checks after, backing the addition out on rejection. The
/// `fetch_add`s serialize, so the bound is exact under concurrency —
/// two racing reservations cannot both slip under the limit.
pub(crate) struct Backstop {
    queued: AtomicU64,
    max_total: usize,
}

impl Backstop {
    pub(crate) fn new(max_total: usize) -> Backstop {
        Backstop {
            queued: AtomicU64::new(0),
            max_total,
        }
    }

    /// Reserves room for `k` more pending edges; `false` means the
    /// process-wide bound would be exceeded.
    fn try_reserve(&self, k: usize) -> bool {
        let prev = self.queued.fetch_add(k as u64, Ordering::Relaxed);
        if self.max_total > 0 && prev + k as u64 > self.max_total as u64 {
            self.queued.fetch_sub(k as u64, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Returns `k` drained edges to the pool.
    fn release(&self, k: u64) {
        self.queued.fetch_sub(k, Ordering::Relaxed);
    }
}

/// State shared between one tenant's request handlers and its writer.
struct EngineShared {
    store: SnapshotStore,
    ingest: IngestQueue,
    stats: ServeStats,
    max_queue_depth: usize,
    faults: Option<Arc<FaultPlan>>,
    backstop: Arc<Backstop>,
    tm: TenantMetrics,
    ordinal: u64,
    /// The default tenant also drives the legacy unlabelled
    /// `afforest_queue_depth` / `afforest_epoch` gauges, which stay
    /// meaningful for single-tenant deployments; counters are aggregated
    /// across tenants instead.
    is_default: bool,
}

/// One tenant's connectivity service: an epoch-snapshot store, a
/// single-writer ingest queue, and (optionally) a WAL, all scoped to
/// that tenant.
///
/// Public so that embedders (the shard router in `afforest-shard`) can
/// run engines directly without a TCP front-end; construct one with
/// [`Engine::standalone`].
pub struct Engine {
    shared: Arc<EngineShared>,
    tenant: TenantId,
    vertices: usize,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Builds the tenant's epoch-0 snapshot from `cc` and starts its
    /// writer thread. `ordinal` is the registration-order index carried
    /// in flight-recorder events (which hold `u64`s, not strings).
    pub(crate) fn start(
        tenant: TenantId,
        ordinal: u64,
        mut cc: IncrementalCc,
        config: &ServeConfig,
        mut wal: Option<Wal>,
        backstop: Arc<Backstop>,
    ) -> Result<Engine, ServeError> {
        if let Some(f) = config.faults.as_ref() {
            wal = wal.map(|w| w.with_faults(Arc::clone(f)));
        }
        let vertices = cc.len();
        let initial = Snapshot::new(0, &cc.labels());
        let shared = Arc::new(EngineShared {
            store: SnapshotStore::new(initial),
            ingest: IngestQueue::default(),
            stats: ServeStats::default(),
            max_queue_depth: config.max_queue_depth,
            faults: config.faults.clone(),
            backstop,
            tm: tenant_metrics(tenant.as_str()),
            ordinal,
            is_default: tenant.is_default(),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let policy = config.policy.clone();
            thread::Builder::new()
                .name(format!("afw-{}", tenant.as_str()))
                .spawn(move || writer_loop(cc, &shared, &policy, wal))
                .map_err(|_| ServeError::Spawn { what: "writer" })?
        };
        Ok(Engine {
            shared,
            tenant,
            vertices,
            writer: Mutex::new(Some(writer)),
        })
    }

    /// Builds a self-contained engine that is not part of any registry:
    /// it gets its own admission backstop (sized from
    /// `config.max_total_queue_depth`) and ordinal 0. This is the
    /// constructor for embedders — the shard subsystem runs one
    /// standalone engine per vertex slice, each with its own WAL
    /// namespace, without a `Server` in front.
    pub fn standalone(
        tenant: TenantId,
        cc: IncrementalCc,
        config: &ServeConfig,
        wal: Option<Wal>,
    ) -> Result<Engine, ServeError> {
        let backstop = Arc::new(Backstop::new(config.max_total_queue_depth));
        Engine::start(tenant, 0, cc, config, wal, backstop)
    }

    /// This engine's tenant.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// Registration-order index (the `tenant` field of events).
    pub(crate) fn ordinal(&self) -> u64 {
        self.shared.ordinal
    }

    /// The tenant's currently served epoch.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.shared.store.load()
    }

    /// The tenant's always-on counters.
    pub(crate) fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// The tenant's labelled metric handles.
    pub(crate) fn tenant_metrics(&self) -> &TenantMetrics {
        &self.shared.tm
    }

    /// Evaluates one *data* request (reads and inserts) against this
    /// tenant. Admin requests (tenant ops, metrics, shutdown) are the
    /// server's business and answer `Err` here.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Connected(u, v) => match self.snapshot().connected(*u, *v) {
                Some(b) => Response::Connected(b),
                None => self.range_error(*u.max(v)),
            },
            Request::Component(u) => match self.snapshot().component(*u) {
                Some(l) => Response::Component(l),
                None => self.range_error(*u),
            },
            Request::ComponentSize(u) => match self.snapshot().component_size(*u) {
                Some(s) => Response::ComponentSize(s),
                None => self.range_error(*u),
            },
            Request::NumComponents => {
                Response::NumComponents(self.snapshot().num_components() as u64)
            }
            Request::InsertEdges(edges) => self.insert(edges),
            _ => Response::Err("not a data request".into()),
        }
    }

    fn insert(&self, edges: &[(Node, Node)]) -> Response {
        if let Some(&(u, v)) = edges
            .iter()
            .find(|&&(u, v)| u as usize >= self.vertices || v as usize >= self.vertices)
        {
            ServeStats::add(&self.shared.stats.protocol_errors, 1);
            metrics().protocol_errors.inc();
            return Response::Err(format!(
                "edge ({u}, {v}) out of range for {} vertices",
                self.vertices
            ));
        }
        if !self.shared.backstop.try_reserve(edges.len()) {
            return self.shed(self.shared.ingest.depth(), edges.len());
        }
        match self
            .shared
            .ingest
            .try_push(edges, self.shared.max_queue_depth)
        {
            Ok(depth) => {
                self.shared
                    .stats
                    .queue_depth
                    .store(depth as u64, Ordering::Relaxed);
                self.shared.tm.queue_depth.set(depth as u64);
                if self.shared.is_default {
                    metrics().queue_depth.set(depth as u64);
                }
                Response::Accepted {
                    edges: edges.len() as u32,
                }
            }
            Err(depth) => {
                self.shared.backstop.release(edges.len() as u64);
                self.shed(depth, edges.len())
            }
        }
    }

    fn shed(&self, depth: usize, edges: usize) -> Response {
        ServeStats::add(&self.shared.stats.requests_shed, 1);
        afforest_obs::count(afforest_obs::Counter::RequestsShed, 1);
        metrics().requests_shed.inc();
        self.shared.tm.requests_shed.inc();
        events::record(
            EventKind::OverloadShed,
            [depth as u64, edges as u64, self.shared.ordinal],
        );
        Response::Overloaded {
            queue_depth: depth as u64,
        }
    }

    fn range_error(&self, v: Node) -> Response {
        ServeStats::add(&self.shared.stats.protocol_errors, 1);
        metrics().protocol_errors.inc();
        Response::Err(format!(
            "vertex {v} out of range for {} vertices",
            self.vertices
        ))
    }

    /// Builds this tenant's stats answer; `tenants` is the registry
    /// size (the engine cannot see its siblings).
    pub fn stats_report(&self, tenants: u64) -> StatsReport {
        let snap = self.snapshot();
        StatsReport {
            epoch: snap.epoch,
            vertices: snap.vertices() as u64,
            num_components: snap.num_components() as u64,
            edges_ingested: ServeStats::get(&self.shared.stats.edges_ingested),
            epochs_published: ServeStats::get(&self.shared.stats.epochs_published),
            queue_depth: self.shared.ingest.depth() as u64,
            requests_shed: ServeStats::get(&self.shared.stats.requests_shed),
            wal_records: ServeStats::get(&self.shared.stats.wal_records),
            faults_injected: self
                .shared
                .faults
                .as_deref()
                .map_or(0, |f| f.injected().total()),
            tenants,
        }
    }

    /// Waits until every queued edge has been applied and published (or
    /// `timeout` elapses). Returns whether the queue fully drained.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.ingest.depth() == 0 && !self.shared.stats.is_applying() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Stops the writer (applying any still-queued edges first) and
    /// joins it. Idempotent; callable through a shared reference, which
    /// is what lets the registry drop a tenant without tearing down the
    /// server.
    pub fn join_writer(&self) {
        self.shared.ingest.shutdown();
        let handle = self.writer.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.join_writer();
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("tenant", &self.tenant)
            .field("ordinal", &self.shared.ordinal)
            .field("vertices", &self.vertices)
            .finish_non_exhaustive()
    }
}

/// Why [`EngineRegistry::admit`] refused a tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AdmitError {
    /// A tenant of that name is already registered.
    Exists,
    /// The registry is at its `max_tenants` capacity.
    Full,
}

/// The tenant → engine map. Reads (routing, listing) take the lock as a
/// single-statement temporary and clone the `Arc` out, so no request
/// handler ever holds the map while touching an engine.
pub(crate) struct EngineRegistry {
    map: RwLock<BTreeMap<String, Arc<Engine>>>,
    next_ordinal: AtomicU64,
    max_tenants: usize,
}

impl EngineRegistry {
    pub(crate) fn new(max_tenants: usize) -> EngineRegistry {
        EngineRegistry {
            map: RwLock::new(BTreeMap::new()),
            next_ordinal: AtomicU64::new(0),
            max_tenants,
        }
    }

    /// Hands out registration-order ordinals (engines are built before
    /// they are admitted, so the ordinal is reserved first).
    pub(crate) fn next_ordinal(&self) -> u64 {
        self.next_ordinal.fetch_add(1, Ordering::Relaxed)
    }

    /// The engine serving `tenant`, if any.
    pub(crate) fn get(&self, tenant: &TenantId) -> Option<Arc<Engine>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant.as_str())
            .cloned()
    }

    /// Registered tenant names, sorted.
    pub(crate) fn list(&self) -> Vec<String> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered tenants.
    pub(crate) fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Every engine, for shutdown-time iteration.
    pub(crate) fn engines(&self) -> Vec<Arc<Engine>> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect()
    }

    /// Inserts a fully-started engine under its tenant's name. On
    /// rejection the engine comes back to the caller, who disposes of
    /// it outside any lock (disposal joins a thread).
    pub(crate) fn admit(&self, engine: Arc<Engine>) -> Result<(), (Arc<Engine>, AdmitError)> {
        let verdict = {
            let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
            if map.contains_key(engine.tenant().as_str()) {
                Err(AdmitError::Exists)
            } else if map.len() >= self.max_tenants {
                Err(AdmitError::Full)
            } else {
                map.insert(engine.tenant().as_str().to_string(), Arc::clone(&engine));
                Ok(())
            }
        };
        match verdict {
            Ok(()) => {
                metrics().tenants.set(self.len() as u64);
                Ok(())
            }
            Err(e) => Err((engine, e)),
        }
    }

    /// Removes `tenant`'s engine, returning it for the caller to wind
    /// down outside the map lock.
    pub(crate) fn remove(&self, tenant: &TenantId) -> Option<Arc<Engine>> {
        let removed = self
            .map
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(tenant.as_str());
        if removed.is_some() {
            metrics().tenants.set(self.len() as u64);
        }
        removed
    }
}

/// The single writer of one engine: drain → log → link → compress →
/// publish, one epoch per coalesced batch. The WAL append comes
/// *before* the apply, so any batch a reader can observe is already
/// durable (modulo OS buffering; DESIGN.md §11).
fn writer_loop(
    mut cc: IncrementalCc,
    shared: &EngineShared,
    policy: &BatchPolicy,
    mut wal: Option<Wal>,
) {
    let mut epoch = 0u64;
    loop {
        let (batch, oldest, trace) = match shared.ingest.next_batch(policy) {
            Drained::Batch {
                edges,
                oldest,
                trace,
            } => (edges, oldest, trace),
            Drained::Shutdown => {
                // Shutdown fully drained the queue: the final Stats answer
                // must say 0, not the depth of the last pre-drain push.
                shared.stats.queue_depth.store(0, Ordering::Relaxed);
                shared.tm.queue_depth.set(0);
                if shared.is_default {
                    metrics().queue_depth.set(0);
                }
                return;
            }
        };
        shared.backstop.release(batch.len() as u64);
        // Pipeline stages below are attributed to the batch's
        // representative traced request (the first sampled push since the
        // last drain). Writer-side spans go straight to the ring — the
        // batch already coalesced many requests, so tail sampling is the
        // request thread's business, not ours.
        let _trace_scope = reqtrace::scoped(trace);
        let wait = oldest.elapsed();
        reqtrace::record(
            trace,
            Stage::QueueWait,
            batch.len() as u64,
            reqtrace::now_us().saturating_sub(wait.as_micros() as u64),
            wait.as_nanos() as u64,
        );
        if let Some(w) = wal.as_mut() {
            let _wal_span = StageSpan::begin_with(Stage::WalFsync, batch.len() as u64);
            // A failed append does not block the batch: the service stays
            // available and the gap surfaces in wal_errors instead.
            match w.append(&batch) {
                Ok(crate::wal::AppendOutcome::Logged) => {
                    ServeStats::add(&shared.stats.wal_records, 1);
                }
                Ok(_) => {} // injected fault: counted at the fault site
                Err(_) => {
                    ServeStats::add(&shared.stats.wal_errors, 1);
                    metrics().wal_errors.inc();
                    events::record(EventKind::WalError, [epoch + 1, 0, 0]);
                }
            }
        }
        epoch += 1;
        let applied = batch.len() as u64;
        shared.stats.applying.store(true, Ordering::Relaxed);
        let apply_start = Instant::now();
        {
            let _span = afforest_obs::span!("ingest-batch[{epoch}]");
            {
                let _apply = StageSpan::begin_with(Stage::BatchApply, applied);
                cc.insert_batch(&batch);
                if let Some(d) = policy.apply_delay {
                    thread::sleep(d);
                }
                if let Some(d) = shared.faults.as_deref().and_then(|f| f.on_apply()) {
                    thread::sleep(d);
                }
            }
            let _publish = StageSpan::begin_with(Stage::EpochPublish, epoch);
            shared.store.publish(Snapshot::new(epoch, &cc.labels()));
        }
        shared.stats.applying.store(false, Ordering::Relaxed);
        // Lag from the batch's oldest edge arriving to its epoch being
        // visible: queue wait + WAL append + link/compress + publish.
        let lag = oldest.elapsed();
        events::record(
            EventKind::BatchApplied,
            [epoch, applied, apply_start.elapsed().as_micros() as u64],
        );
        events::record(
            EventKind::EpochPublished,
            [epoch, applied, lag.as_micros() as u64],
        );
        let m = metrics();
        m.epochs_published.inc();
        m.edges_ingested.add(applied);
        m.epoch_publish_lag.record(lag.as_nanos() as u64);
        let depth = shared.ingest.depth() as u64;
        if shared.is_default {
            m.epoch.set(epoch);
            m.queue_depth.set(depth);
        }
        shared.tm.epoch.set(epoch);
        shared.tm.queue_depth.set(depth);
        shared.tm.edges_ingested.add(applied);
        ServeStats::add(&shared.stats.edges_ingested, applied);
        ServeStats::add(&shared.stats.epochs_published, 1);
        shared.stats.queue_depth.store(depth, Ordering::Relaxed);
        afforest_obs::count(afforest_obs::Counter::EdgesIngested, applied);
        afforest_obs::count(afforest_obs::Counter::EpochsPublished, 1);
        afforest_obs::count(afforest_obs::Counter::QueueDepth, applied);
        if let Some(w) = wal.as_mut() {
            if w.maybe_compact(&cc).is_err() {
                ServeStats::add(&shared.stats.wal_errors, 1);
                metrics().wal_errors.inc();
                events::record(EventKind::WalError, [epoch, 0, 0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ServeConfig {
        ServeConfig::builder()
            .policy(BatchPolicy {
                max_edges: 64,
                max_delay: Duration::from_millis(1),
                apply_delay: None,
            })
            .build()
            .unwrap()
    }

    fn engine(name: &str, n: usize, config: &ServeConfig, backstop: Arc<Backstop>) -> Arc<Engine> {
        Arc::new(
            Engine::start(
                TenantId::new(name).unwrap(),
                0,
                IncrementalCc::new(n),
                config,
                None,
                backstop,
            )
            .unwrap(),
        )
    }

    #[test]
    fn registry_routes_lists_and_enforces_capacity() {
        let cfg = quick_config();
        let reg = EngineRegistry::new(2);
        let backstop = Arc::new(Backstop::new(0));
        reg.admit(engine("default", 4, &cfg, Arc::clone(&backstop)))
            .unwrap();
        reg.admit(engine("tenant-a", 4, &cfg, Arc::clone(&backstop)))
            .unwrap();
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.list(), vec!["default".to_string(), "tenant-a".into()]);
        assert!(reg.get(&TenantId::default_tenant()).is_some());
        assert!(reg.get(&TenantId::new("nope").unwrap()).is_none());

        // Duplicate name and over-capacity both bounce the engine back.
        let (_, e) = reg
            .admit(engine("tenant-a", 4, &cfg, Arc::clone(&backstop)))
            .unwrap_err();
        assert_eq!(e, AdmitError::Exists);
        let (_, e) = reg
            .admit(engine("tenant-b", 4, &cfg, Arc::clone(&backstop)))
            .unwrap_err();
        assert_eq!(e, AdmitError::Full);

        // Removal frees the slot.
        let dropped = reg.remove(&TenantId::new("tenant-a").unwrap()).unwrap();
        dropped.join_writer();
        assert_eq!(reg.len(), 1);
        reg.admit(engine("tenant-b", 4, &cfg, backstop)).unwrap();
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn backstop_bounds_the_sum_across_tenants() {
        // Writers that never wake on their own, so queues only drain at
        // shutdown and the bound is actually exercised.
        let cfg = ServeConfig::builder()
            .policy(BatchPolicy {
                max_edges: 1_000_000,
                max_delay: Duration::from_secs(600),
                apply_delay: None,
            })
            .max_queue_depth(10)
            .max_total_queue_depth(10)
            .build()
            .unwrap();
        let backstop = Arc::new(Backstop::new(cfg.max_total_queue_depth));
        let a = engine("backstop-a", 16, &cfg, Arc::clone(&backstop));
        let b = engine("backstop-b", 16, &cfg, Arc::clone(&backstop));

        // Each tenant is under its own quota of 10...
        assert!(matches!(
            a.handle(&Request::InsertEdges(vec![(0, 1); 6])),
            Response::Accepted { edges: 6 }
        ));
        // ...but the process-wide budget of 10 only has 4 left.
        assert!(matches!(
            b.handle(&Request::InsertEdges(vec![(0, 1); 6])),
            Response::Overloaded { .. }
        ));
        assert!(matches!(
            b.handle(&Request::InsertEdges(vec![(0, 1); 4])),
            Response::Accepted { edges: 4 }
        ));
        assert_eq!(ServeStats::get(&b.stats().requests_shed), 1);
        assert_eq!(ServeStats::get(&a.stats().requests_shed), 0);

        // Draining tenant A's queue returns its reservation.
        a.join_writer();
        assert!(a.flush(Duration::from_secs(5)));
        assert!(matches!(
            b.handle(&Request::InsertEdges(vec![(0, 1); 6])),
            Response::Accepted { edges: 6 }
        ));
        b.join_writer();
    }

    #[test]
    fn engine_answers_admin_requests_with_err_not_panic() {
        let cfg = quick_config();
        let e = engine("admin-check", 4, &cfg, Arc::new(Backstop::new(0)));
        for req in [Request::Metrics, Request::Shutdown, Request::ListTenants] {
            match e.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("not a data request")),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
    }
}
