//! The serving stack's always-on metric set.
//!
//! One struct of `&'static` handles into the process-global
//! [`afforest_obs::registry`], created on first use and cached in a
//! `OnceLock`, so every hot-path increment is a single striped relaxed
//! atomic op — no registry lookup, no lock, no feature gate. The session
//! tracer (`--features obs`) remains a separate, scoped layer; these
//! metrics are *service* telemetry and are always live (DESIGN.md §12).
//!
//! Every metric name is a string literal in this file (plus the
//! client-side retry counter in `loadgen.rs`); `cargo xtask lint`
//! cross-checks that each literal appears in the exposition test
//! fixture, so a metric cannot be added without the exposition tests
//! seeing it.

use crate::protocol::Request;
use afforest_obs::registry::{self, Counter, Gauge, Hist};
use std::sync::OnceLock;

/// Number of request opcodes tracked per-op.
pub const OPS: usize = 12;

/// Exposition-name suffix per op, indexed like [`op_index`].
pub const OP_NAMES: [&str; OPS] = [
    "connected",
    "component",
    "component_size",
    "num_components",
    "insert_edges",
    "stats",
    "metrics",
    "shutdown",
    "create_tenant",
    "drop_tenant",
    "list_tenants",
    "dump_traces",
];

/// The per-op metric index of a request.
pub fn op_index(req: &Request) -> usize {
    match req {
        Request::Connected(..) => 0,
        Request::Component(..) => 1,
        Request::ComponentSize(..) => 2,
        Request::NumComponents => 3,
        Request::InsertEdges(..) => 4,
        Request::Stats => 5,
        Request::Metrics => 6,
        Request::Shutdown => 7,
        Request::CreateTenant { .. } => 8,
        Request::DropTenant { .. } => 9,
        Request::ListTenants => 10,
        Request::DumpTraces => 11,
    }
}

/// Cached handles to every serving metric (see module docs).
pub struct ServeMetrics {
    /// Requests handled, by op (indexed by [`op_index`]).
    pub requests: [&'static Counter; OPS],
    /// Request handling latency in nanoseconds, by op.
    pub latency: [&'static Hist; OPS],
    /// Request-frame bytes read off connections (prefix + payload).
    pub bytes_read: &'static Counter,
    /// Response-frame bytes written to connections (prefix + payload).
    pub bytes_written: &'static Counter,
    /// Connections accepted by the worker pool.
    pub connections: &'static Counter,
    /// Malformed frames / unanswerable requests.
    pub protocol_errors: &'static Counter,
    /// Inserts shed by bounded-queue admission.
    pub requests_shed: &'static Counter,
    /// Edges pending in the ingest queue right now.
    pub queue_depth: &'static Gauge,
    /// Epoch of the currently served snapshot.
    pub epoch: &'static Gauge,
    /// Epochs published by the writer (excludes epoch 0).
    pub epochs_published: &'static Counter,
    /// Edges applied by the writer.
    pub edges_ingested: &'static Counter,
    /// Publish lag in nanoseconds: oldest-edge arrival → epoch visible
    /// (queue wait + WAL append + link/compress + publish).
    pub epoch_publish_lag: &'static Hist,
    /// Edge-batch records fully appended to the WAL.
    pub wal_records: &'static Counter,
    /// Record bytes fully appended to the WAL.
    pub wal_bytes: &'static Counter,
    /// WAL compactions (snapshot + log truncation).
    pub wal_compactions: &'static Counter,
    /// WAL appends/compactions that failed with an I/O error.
    pub wal_errors: &'static Counter,
    /// Accept workers that exited (only chaos kills them today).
    pub worker_deaths: &'static Counter,
    /// Chaos: WAL records dropped by the fault plan.
    pub faults_wal_drop: &'static Counter,
    /// Chaos: WAL records torn short by the fault plan.
    pub faults_wal_short_write: &'static Counter,
    /// Chaos: batch applies delayed by the fault plan.
    pub faults_apply_delay: &'static Counter,
    /// Chaos: response frames torn by the fault plan.
    pub faults_torn_frame: &'static Counter,
    /// Chaos: worker kills drawn by the fault plan.
    pub faults_worker_kill: &'static Counter,
    /// Tenants currently registered.
    pub tenants: &'static Gauge,
}

/// Per-tenant labelled handles (`tenant="<name>"` series). One set is
/// created per engine at registration time and cached on the engine, so
/// the labelled-lookup cost is paid once per tenant, not per request.
pub struct TenantMetrics {
    /// Requests routed to this tenant.
    pub requests: &'static Counter,
    /// Inserts shed by this tenant's admission bound (or the process
    /// backstop).
    pub requests_shed: &'static Counter,
    /// Edges pending in this tenant's ingest queue right now.
    pub queue_depth: &'static Gauge,
    /// Edges applied by this tenant's writer.
    pub edges_ingested: &'static Counter,
    /// Epoch of this tenant's currently served snapshot.
    pub epoch: &'static Gauge,
}

/// Registers (or re-fetches) the labelled series for one tenant.
pub fn tenant_metrics(tenant: &str) -> TenantMetrics {
    TenantMetrics {
        requests: registry::labeled_counter("afforest_tenant_requests_total", "tenant", tenant),
        requests_shed: registry::labeled_counter(
            "afforest_tenant_requests_shed_total",
            "tenant",
            tenant,
        ),
        queue_depth: registry::labeled_gauge("afforest_tenant_queue_depth", "tenant", tenant),
        edges_ingested: registry::labeled_counter(
            "afforest_tenant_edges_ingested_total",
            "tenant",
            tenant,
        ),
        epoch: registry::labeled_gauge("afforest_tenant_epoch", "tenant", tenant),
    }
}

/// The process-global serving metrics (registered on first call).
pub fn metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| ServeMetrics {
        requests: [
            registry::counter("afforest_requests_connected_total"),
            registry::counter("afforest_requests_component_total"),
            registry::counter("afforest_requests_component_size_total"),
            registry::counter("afforest_requests_num_components_total"),
            registry::counter("afforest_requests_insert_edges_total"),
            registry::counter("afforest_requests_stats_total"),
            registry::counter("afforest_requests_metrics_total"),
            registry::counter("afforest_requests_shutdown_total"),
            registry::counter("afforest_requests_create_tenant_total"),
            registry::counter("afforest_requests_drop_tenant_total"),
            registry::counter("afforest_requests_list_tenants_total"),
            registry::counter("afforest_requests_dump_traces_total"),
        ],
        latency: [
            registry::histogram("afforest_request_latency_connected_ns"),
            registry::histogram("afforest_request_latency_component_ns"),
            registry::histogram("afforest_request_latency_component_size_ns"),
            registry::histogram("afforest_request_latency_num_components_ns"),
            registry::histogram("afforest_request_latency_insert_edges_ns"),
            registry::histogram("afforest_request_latency_stats_ns"),
            registry::histogram("afforest_request_latency_metrics_ns"),
            registry::histogram("afforest_request_latency_shutdown_ns"),
            registry::histogram("afforest_request_latency_create_tenant_ns"),
            registry::histogram("afforest_request_latency_drop_tenant_ns"),
            registry::histogram("afforest_request_latency_list_tenants_ns"),
            registry::histogram("afforest_request_latency_dump_traces_ns"),
        ],
        bytes_read: registry::counter("afforest_bytes_read_total"),
        bytes_written: registry::counter("afforest_bytes_written_total"),
        connections: registry::counter("afforest_connections_total"),
        protocol_errors: registry::counter("afforest_protocol_errors_total"),
        requests_shed: registry::counter("afforest_requests_shed_total"),
        queue_depth: registry::gauge("afforest_queue_depth"),
        epoch: registry::gauge("afforest_epoch"),
        epochs_published: registry::counter("afforest_epochs_published_total"),
        edges_ingested: registry::counter("afforest_edges_ingested_total"),
        epoch_publish_lag: registry::histogram("afforest_epoch_publish_lag_ns"),
        wal_records: registry::counter("afforest_wal_records_total"),
        wal_bytes: registry::counter("afforest_wal_bytes_total"),
        wal_compactions: registry::counter("afforest_wal_compactions_total"),
        wal_errors: registry::counter("afforest_wal_errors_total"),
        worker_deaths: registry::counter("afforest_worker_deaths_total"),
        faults_wal_drop: registry::counter("afforest_faults_wal_drop_total"),
        faults_wal_short_write: registry::counter("afforest_faults_wal_short_write_total"),
        faults_apply_delay: registry::counter("afforest_faults_apply_delay_total"),
        faults_torn_frame: registry::counter("afforest_faults_torn_frame_total"),
        faults_worker_kill: registry::counter("afforest_faults_worker_kill_total"),
        tenants: registry::gauge("afforest_tenants"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_index_covers_every_request_and_matches_names() {
        let reqs = [
            Request::Connected(0, 1),
            Request::Component(0),
            Request::ComponentSize(0),
            Request::NumComponents,
            Request::InsertEdges(vec![]),
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
            Request::CreateTenant {
                name: crate::tenant::TenantId::new("t").unwrap(),
                vertices: 1,
            },
            Request::DropTenant {
                name: crate::tenant::TenantId::new("t").unwrap(),
            },
            Request::ListTenants,
            Request::DumpTraces,
        ];
        let mut seen = [false; OPS];
        for r in &reqs {
            seen[op_index(r)] = true;
        }
        assert!(seen.iter().all(|&s| s), "an op index is unmapped");
        assert_eq!(OP_NAMES.len(), OPS);
    }

    #[test]
    fn metrics_init_is_idempotent_and_exposed() {
        let m = metrics();
        assert!(std::ptr::eq(m, metrics()));
        m.requests[0].inc();
        let text = registry::expose();
        // Every per-op name is present from the moment of registration.
        for name in OP_NAMES {
            assert!(
                text.contains(&format!("afforest_requests_{name}_total")),
                "missing op {name}"
            );
        }
        assert!(text.contains("afforest_epoch_publish_lag_ns"));
    }

    #[test]
    fn tenant_metrics_expose_labelled_series() {
        let tm = tenant_metrics("metrics-test-tenant");
        tm.requests.add(3);
        tm.queue_depth.set(7);
        let text = registry::expose();
        assert!(text.contains("afforest_tenant_requests_total{tenant=\"metrics-test-tenant\"}"));
        assert!(text.contains("afforest_tenant_queue_depth{tenant=\"metrics-test-tenant\"} 7"));
        // Re-fetching the same tenant returns the same series.
        assert!(std::ptr::eq(
            tm.requests,
            tenant_metrics("metrics-test-tenant").requests
        ));
    }
}
