//! Batched ingest: the write path of the service.
//!
//! Clients enqueue edges; a single writer thread drains the queue in
//! *coalesced batches* (the ConnectIt batch-dynamic pattern): a batch is
//! cut when either `max_edges` edges are pending or `max_delay` has
//! elapsed since the oldest pending edge arrived. Everything queued at
//! drain time rides along, so a burst of small inserts becomes one
//! `insert_batch` + one compress + one published epoch instead of many.
//!
//! [`ServeStats`] is always-on (plain relaxed atomics, no obs feature
//! required) because the `Stats` protocol request must answer in every
//! build; the obs counters (`edges_ingested`, `epochs_published`,
//! `queue_depth`) additionally flow into traces when obs is compiled in.

use afforest_graph::Node;
use afforest_obs::reqtrace::{self, TraceCtx};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// When the writer cuts a batch.
#[derive(Clone, Debug)]
pub struct BatchPolicy {
    /// Cut as soon as this many edges are pending.
    pub max_edges: usize,
    /// Cut at the latest this long after the oldest pending edge arrived.
    pub max_delay: Duration,
    /// Artificial extra apply time per batch, injected between linking
    /// and publishing. Used by tests and benchmarks to hold an epoch
    /// mid-apply deterministically; `None` in production.
    pub apply_delay: Option<Duration>,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            max_edges: 4096,
            max_delay: Duration::from_millis(2),
            apply_delay: None,
        }
    }
}

/// Always-on service counters (independent of the obs feature).
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Edges applied by the writer since startup.
    pub edges_ingested: AtomicU64,
    /// Epochs published by the writer since startup (excludes epoch 0).
    pub epochs_published: AtomicU64,
    /// Edges currently pending in the ingest queue.
    pub queue_depth: AtomicU64,
    /// Malformed frames / unanswerable requests observed.
    pub protocol_errors: AtomicU64,
    /// Insert requests shed because the ingest queue was full.
    pub requests_shed: AtomicU64,
    /// Batch records fully appended to the WAL (0 when running without
    /// one). Mirrored here from the writer because the `Stats` request
    /// handler has no access to the WAL itself.
    pub wal_records: AtomicU64,
    /// WAL appends that failed with an I/O error (the batch was still
    /// applied: availability over durability, DESIGN.md §11).
    pub wal_errors: AtomicU64,
    /// Whether the writer is currently mid-apply (between draining a
    /// batch and publishing its epoch). Observable by tests proving that
    /// reads proceed while this is set.
    pub applying: AtomicBool,
}

impl ServeStats {
    /// Relaxed load of a counter (totals are statistics, not
    /// synchronization; see DESIGN.md §8).
    pub fn get(cell: &AtomicU64) -> u64 {
        cell.load(Ordering::Relaxed)
    }

    /// Relaxed add.
    pub fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Whether the writer is mid-apply right now.
    pub fn is_applying(&self) -> bool {
        self.applying.load(Ordering::Relaxed)
    }
}

/// What [`IngestQueue::next_batch`] tells the writer to do.
#[derive(Debug, PartialEq, Eq)]
pub enum Drained {
    /// Apply this coalesced batch (never empty).
    Batch {
        /// The coalesced edges, oldest first.
        edges: Vec<(Node, Node)>,
        /// Arrival time of the batch's oldest edge — the anchor the
        /// writer measures epoch publish lag from.
        oldest: Instant,
        /// Trace context of the first *sampled* push coalesced into this
        /// batch ([`TraceCtx::NONE`] when no pusher was traced). The
        /// writer attributes the batch's pipeline stages (queue wait,
        /// WAL, apply, publish) to this representative request.
        trace: TraceCtx,
    },
    /// The queue was shut down and fully drained: exit.
    Shutdown,
}

#[derive(Default)]
struct QueueState {
    edges: VecDeque<(Node, Node)>,
    /// Arrival time of the oldest pending edge (deadline anchor).
    oldest: Option<Instant>,
    /// Trace context of the first sampled push since the last drain.
    trace: TraceCtx,
    shutdown: bool,
}

/// The MPSC edge queue between request handlers and the writer thread.
#[derive(Default)]
pub struct IngestQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl IngestQueue {
    /// Enqueues edges; returns the queue depth after the push.
    pub fn push(&self, edges: &[(Node, Node)]) -> usize {
        match self.try_push(edges, 0) {
            Ok(depth) => depth,
            // Unreachable: max_depth = 0 means unbounded.
            Err(depth) => depth,
        }
    }

    /// Enqueues edges unless that would leave more than `max_depth`
    /// pending (`0` = unbounded). The admission check and the enqueue are
    /// one critical section, so concurrent producers cannot jointly
    /// overshoot the bound. `Ok` carries the depth after the push; `Err`
    /// carries the (unchanged) depth at rejection time.
    pub fn try_push(&self, edges: &[(Node, Node)], max_depth: usize) -> Result<usize, usize> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if max_depth > 0 && s.edges.len().saturating_add(edges.len()) > max_depth {
            return Err(s.edges.len());
        }
        s.edges.extend(edges.iter().copied());
        if s.oldest.is_none() && !s.edges.is_empty() {
            s.oldest = Some(Instant::now());
        }
        if !s.trace.sampled() {
            s.trace = reqtrace::current();
        }
        let depth = s.edges.len();
        drop(s);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .edges
            .len()
    }

    /// Marks the queue shut down; the writer drains what is left and
    /// exits.
    pub fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .shutdown = true;
        self.ready.notify_all();
    }

    /// Blocks until a batch is due per `policy` (size or deadline
    /// trigger) or shutdown. Coalesces *everything* pending into the
    /// returned batch.
    pub fn next_batch(&self, policy: &BatchPolicy) -> Drained {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if s.shutdown {
                return if s.edges.is_empty() {
                    Drained::Shutdown
                } else {
                    Self::drain(&mut s)
                };
            }
            if s.edges.len() >= policy.max_edges {
                return Self::drain(&mut s);
            }
            if let Some(oldest) = s.oldest {
                let elapsed = oldest.elapsed();
                if elapsed >= policy.max_delay {
                    return Self::drain(&mut s);
                }
                // Deadline pending: sleep out the remainder (re-checked on
                // wake, since a size trigger or shutdown may come first).
                let (guard, _) = self
                    .ready
                    .wait_timeout(s, policy.max_delay - elapsed)
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            } else {
                s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    fn drain(s: &mut QueueState) -> Drained {
        // `oldest` is set on every push into an empty queue, so a
        // non-empty drain always has one; the fallback is just defense.
        let oldest = s.oldest.take().unwrap_or_else(Instant::now);
        Drained::Batch {
            edges: s.edges.drain(..).collect(),
            oldest,
            trace: std::mem::take(&mut s.trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn policy(max_edges: usize, max_delay_ms: u64) -> BatchPolicy {
        BatchPolicy {
            max_edges,
            max_delay: Duration::from_millis(max_delay_ms),
            apply_delay: None,
        }
    }

    fn edges_of(d: Drained) -> Vec<(Node, Node)> {
        match d {
            Drained::Batch { edges, .. } => edges,
            Drained::Shutdown => panic!("expected a batch, got shutdown"),
        }
    }

    #[test]
    fn size_trigger_cuts_immediately() {
        let q = IngestQueue::default();
        q.push(&[(0, 1), (1, 2), (2, 3)]);
        // Queue holds 3 ≥ max_edges=2: next_batch returns without waiting
        // for the (long) deadline, and coalesces everything.
        let batch = q.next_batch(&policy(2, 60_000));
        assert_eq!(edges_of(batch), vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn deadline_trigger_fires_for_small_batches() {
        let q = IngestQueue::default();
        q.push(&[(0, 1)]);
        let t = Instant::now();
        match q.next_batch(&policy(1_000_000, 20)) {
            Drained::Batch { edges, oldest, .. } => {
                assert_eq!(edges, vec![(0, 1)]);
                // The lag anchor is the push time, so by drain time the
                // full deadline has elapsed since `oldest`.
                assert!(oldest.elapsed() >= Duration::from_millis(15));
            }
            Drained::Shutdown => panic!("expected a batch"),
        }
        assert!(
            t.elapsed() >= Duration::from_millis(15),
            "{:?}",
            t.elapsed()
        );
    }

    #[test]
    fn shutdown_drains_remaining_then_exits() {
        let q = IngestQueue::default();
        q.push(&[(4, 5)]);
        q.shutdown();
        assert_eq!(
            edges_of(q.next_batch(&policy(1_000_000, 60_000))),
            vec![(4, 5)]
        );
        assert_eq!(q.next_batch(&policy(1, 0)), Drained::Shutdown);
    }

    #[test]
    fn waiting_consumer_wakes_on_push() {
        let q = Arc::new(IngestQueue::default());
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.next_batch(&policy(1, 60_000)));
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(Duration::from_millis(20));
        q.push(&[(7, 8)]);
        assert_eq!(edges_of(h.join().unwrap()), vec![(7, 8)]);
    }

    #[test]
    fn depth_tracks_pushes() {
        let q = IngestQueue::default();
        assert_eq!(q.depth(), 0);
        assert_eq!(q.push(&[(0, 1)]), 1);
        assert_eq!(q.push(&[(1, 2), (2, 3)]), 3);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn try_push_sheds_past_the_bound() {
        let q = IngestQueue::default();
        assert_eq!(q.try_push(&[(0, 1), (1, 2)], 3), Ok(2));
        // Would land at 4 > 3: rejected, depth unchanged.
        assert_eq!(q.try_push(&[(2, 3), (3, 4)], 3), Err(2));
        assert_eq!(q.depth(), 2);
        // Exactly at the bound is admitted.
        assert_eq!(q.try_push(&[(2, 3)], 3), Ok(3));
        assert_eq!(q.try_push(&[(4, 5)], 3), Err(3));
        // Draining frees capacity again.
        assert!(matches!(q.next_batch(&policy(1, 0)), Drained::Batch { .. }));
        assert_eq!(q.try_push(&[(4, 5)], 3), Ok(1));
        // max_depth = 0 means unbounded.
        assert!(q.try_push(&vec![(0, 1); 10_000], 0).is_ok());
    }
}
