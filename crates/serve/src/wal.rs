//! Write-ahead log: the durability layer of the service.
//!
//! Every coalesced edge batch is appended to `wal.log` *before* it is
//! applied and its epoch published, so a crash at any point loses at most
//! the batch that had not yet reached the OS (the classic WAL contract —
//! an acked write is a logged write). Records are length-prefixed and
//! checksummed; [`recover`] replays a possibly-truncated or corrupted log
//! into a fresh [`IncrementalCc`], stopping (and truncating the file) at
//! the first bad record, so the recovered state is always a prefix of the
//! committed history — never a panic, never a half-applied record.
//!
//! Replaying a long history on every restart would make recovery O(total
//! writes), so the log is periodically **compacted**: the parent array is
//! serialized (via `afforest_graph::io::write_node_array`, atomically
//! through a tempfile rename) as `snapshot.arr` and the log is truncated
//! back to its header. Recovery then costs one array read plus O(batches
//! since the last snapshot).
//!
//! On-disk layout inside the WAL directory:
//!
//! ```text
//! wal.log       8-byte magic/version, u64 vertex count, u64 header
//!               checksum (fnv1a over magic + count), then records:
//!               [u32 len][u64 fnv1a(payload)][payload]
//!               payload = 0x01 tag, u32 edge count, count * (u32, u32)
//! snapshot.arr  afforest_graph::io node array (the parent snapshot)
//! ```

use crate::faults::{FaultPlan, WalFault};
use afforest_core::{IncrementalCc, InvalidParents};
use afforest_graph::io::{checksum64, read_node_array, write_node_array};
use afforest_graph::Node;
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a WAL file, followed by a version.
const MAGIC: &[u8; 8] = b"AFWAL\x00\x00\x01";

/// Header length: magic + u64 vertex count + u64 header checksum. The
/// checksum authenticates the vertex count: without it a flipped bit in
/// the count would send recovery allocating for a bogus universe.
const HEADER_LEN: u64 = 24;

/// Record tag for an edge batch (the only record type in version 1).
const TAG_EDGE_BATCH: u8 = 0x01;

/// Hard ceiling on a record payload (64 MiB ≈ 8M edges). A corrupt
/// length prefix above this is rejected before any allocation.
pub const MAX_RECORD_LEN: usize = 1 << 26;

/// The log file's name inside the WAL directory.
pub const LOG_FILE: &str = "wal.log";

/// The snapshot file's name inside the WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.arr";

/// Why a WAL operation failed.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// The log or snapshot exists but is not usable (reason attached).
    /// Note that a *corrupt tail* is not an error — [`recover`] truncates
    /// it; this variant covers an unusable header or snapshot.
    Corrupt(String),
    /// The log was written for a different vertex universe.
    VertexMismatch {
        /// Vertex count recorded in the log header.
        wal: usize,
        /// Vertex count the caller expected.
        expected: usize,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Corrupt(why) => write!(f, "wal corrupt: {why}"),
            WalError::VertexMismatch { wal, expected } => write!(
                f,
                "wal vertex count {wal} does not match expected {expected}"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<afforest_graph::Error> for WalError {
    fn from(e: afforest_graph::Error) -> Self {
        WalError::Corrupt(e.to_string())
    }
}

impl From<InvalidParents> for WalError {
    fn from(e: InvalidParents) -> Self {
        WalError::Corrupt(format!("snapshot {e}"))
    }
}

/// What [`Wal::append`] did with the record — `Logged` in production;
/// the fault variants exist so chaos tests know exactly which batches
/// survived to disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendOutcome {
    /// The record is fully on the file.
    Logged,
    /// A [`FaultPlan`] dropped the record (simulated lost write).
    DroppedByFault,
    /// A [`FaultPlan`] tore the record (simulated crash mid-write).
    /// Every record after a torn one is unrecoverable.
    TornByFault,
}

/// An open, appendable write-ahead log.
pub struct Wal {
    file: File,
    dir: PathBuf,
    n: usize,
    /// Compact (snapshot + truncate) after this many appended batches.
    snapshot_every: u64,
    appends_since_snapshot: u64,
    batches_logged: u64,
    bytes_logged: u64,
    faults: Option<Arc<FaultPlan>>,
}

impl Wal {
    /// Opens (creating if absent) the log for an `n`-vertex service in
    /// `dir`, positioned for appending. `snapshot_every` batches trigger
    /// a compaction (0 disables compaction).
    pub fn open(dir: &Path, n: usize, snapshot_every: u64) -> Result<Wal, WalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(MAGIC);
            header.extend_from_slice(&(n as u64).to_le_bytes());
            let sum = checksum64(&header);
            header.extend_from_slice(&sum.to_le_bytes());
            file.write_all(&header)?;
            file.flush()?;
        } else {
            let logged_n = read_header(&mut file)? as usize;
            if logged_n != n {
                return Err(WalError::VertexMismatch {
                    wal: logged_n,
                    expected: n,
                });
            }
            file.seek(SeekFrom::End(0))?;
        }
        Ok(Wal {
            file,
            dir: dir.to_path_buf(),
            n,
            snapshot_every,
            appends_since_snapshot: 0,
            batches_logged: 0,
            bytes_logged: 0,
            faults: None,
        })
    }

    /// Attaches a chaos plan; subsequent appends consult it.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Wal {
        self.faults = Some(faults);
        self
    }

    /// Vertex count recorded in the header.
    pub fn vertices(&self) -> usize {
        self.n
    }

    /// Batches fully logged since this handle opened.
    pub fn batches_logged(&self) -> u64 {
        self.batches_logged
    }

    /// Record bytes fully logged since this handle opened.
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged
    }

    /// Appends one edge-batch record. Returns what actually reached the
    /// file (always [`AppendOutcome::Logged`] without a fault plan). The
    /// write goes straight to the OS — surviving a process kill needs no
    /// fsync; surviving power loss would (documented trade-off, DESIGN.md
    /// §11).
    pub fn append(&mut self, edges: &[(Node, Node)]) -> Result<AppendOutcome, WalError> {
        let mut payload = Vec::with_capacity(5 + edges.len() * 8);
        payload.push(TAG_EDGE_BATCH);
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&checksum64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);

        let fault = self
            .faults
            .as_deref()
            .map_or(WalFault::None, |p| p.on_wal_append(record.len()));
        let outcome = match fault {
            WalFault::Drop => AppendOutcome::DroppedByFault,
            WalFault::Short { keep } => {
                // PANIC-OK: the fault plane clamps `keep` to the record
                // length it was given (see `FaultPlane::on_wal_append`).
                self.file.write_all(&record[..keep])?;
                self.file.flush()?;
                AppendOutcome::TornByFault
            }
            WalFault::None => {
                self.file.write_all(&record)?;
                self.file.flush()?;
                self.batches_logged += 1;
                self.bytes_logged += record.len() as u64;
                afforest_obs::count(afforest_obs::Counter::WalAppends, 1);
                afforest_obs::count(afforest_obs::Counter::WalBytes, record.len() as u64);
                let m = crate::metrics::metrics();
                m.wal_records.inc();
                m.wal_bytes.add(record.len() as u64);
                AppendOutcome::Logged
            }
        };
        self.appends_since_snapshot += 1;
        Ok(outcome)
    }

    /// Compacts if the snapshot interval has elapsed: serializes `cc`'s
    /// parent array atomically (tempfile + rename) and truncates the log
    /// back to its header. Returns whether a compaction happened.
    pub fn maybe_compact(&mut self, cc: &IncrementalCc) -> Result<bool, WalError> {
        if self.snapshot_every == 0 || self.appends_since_snapshot < self.snapshot_every {
            return Ok(false);
        }
        self.compact(cc)?;
        Ok(true)
    }

    /// Unconditionally compacts (see [`Wal::maybe_compact`]).
    pub fn compact(&mut self, cc: &IncrementalCc) -> Result<(), WalError> {
        let _span = afforest_obs::span!("wal-compact");
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        write_node_array(&tmp, &cc.parents_snapshot())?;
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        let log_bytes = self.file.metadata()?.len().saturating_sub(HEADER_LEN);
        // The snapshot now covers everything in the log: drop the records.
        self.file.set_len(HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(HEADER_LEN))?;
        crate::metrics::metrics().wal_compactions.inc();
        crate::events::record(
            crate::events::EventKind::WalCompaction,
            [self.appends_since_snapshot, log_bytes, 0],
        );
        self.appends_since_snapshot = 0;
        Ok(())
    }
}

/// The result of a recovery: a live structure plus replay statistics.
pub struct Recovery {
    /// The restored incremental structure (snapshot + replayed batches).
    pub cc: IncrementalCc,
    /// Vertex count from the log header.
    pub vertices: usize,
    /// Whether a parent snapshot was loaded.
    pub from_snapshot: bool,
    /// Edge-batch records replayed from the log.
    pub batches: u64,
    /// Edges replayed from the log.
    pub edges: u64,
    /// Whether a corrupt/torn tail was found (and truncated away).
    pub truncated: bool,
}

/// Replays the WAL directory into a fresh [`IncrementalCc`].
///
/// The base state is the parent snapshot if one exists, otherwise an
/// empty structure seeded with `seed_edges` (the initial graph, which is
/// *not* logged — only ingested batches are). Log records are then
/// replayed in order; the first bad record (truncated, checksum mismatch,
/// malformed payload) ends the replay and the file is truncated there, so
/// a recovered-then-reopened log is always internally consistent.
///
/// Total function over file contents: any byte string in the log yields
/// either `Ok` (with some prefix replayed) or a typed [`WalError`] for an
/// unusable header/snapshot — never a panic.
pub fn recover(dir: &Path, seed_edges: &[(Node, Node)]) -> Result<Recovery, WalError> {
    let _span = afforest_obs::span!("wal-recover");
    let path = dir.join(LOG_FILE);
    let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
    let n = read_header(&mut file)? as usize;

    let snapshot_path = dir.join(SNAPSHOT_FILE);
    let (mut cc, from_snapshot) = if snapshot_path.exists() {
        let parents = read_node_array(&snapshot_path)?;
        if parents.len() != n {
            return Err(WalError::Corrupt(format!(
                "snapshot holds {} vertices, log header says {n}",
                parents.len()
            )));
        }
        (IncrementalCc::from_parents(parents)?, true)
    } else {
        // Seed edges outside the log's universe mean the caller is
        // replaying the wrong graph's WAL: a typed error, not a panic.
        if let Some(&(u, v)) = seed_edges
            .iter()
            .find(|&&(u, v)| u as usize >= n || v as usize >= n)
        {
            return Err(WalError::VertexMismatch {
                wal: n,
                expected: u.max(v) as usize + 1,
            });
        }
        let mut cc = IncrementalCc::new(n);
        cc.insert_batch(seed_edges);
        (cc, false)
    };

    // Replay until EOF or the first bad record.
    let mut reader = BufReader::new(&file);
    reader.seek(SeekFrom::Start(HEADER_LEN))?;
    let mut good_end = HEADER_LEN;
    let mut batches = 0u64;
    let mut edges = 0u64;
    let mut clean_eof = false;
    loop {
        let mut prefix = [0u8; 12];
        match read_exact_or_eof(&mut reader, &mut prefix)? {
            ReadOutcome::Eof => {
                clean_eof = true;
                break;
            }
            ReadOutcome::Partial => break,
            ReadOutcome::Full => {}
        }
        // PANIC-OK: `prefix` is a 12-byte array; both subranges and the
        // slice-to-array conversions are statically in range.
        let len = u32::from_le_bytes(prefix[0..4].try_into().expect("4-byte slice")) as usize;
        // PANIC-OK: same 12-byte array, see above.
        let declared_sum = u64::from_le_bytes(prefix[4..12].try_into().expect("8-byte slice"));
        if !(5..=MAX_RECORD_LEN).contains(&len) {
            break;
        }
        let mut payload = vec![0u8; len];
        if !matches!(
            read_exact_or_eof(&mut reader, &mut payload)?,
            ReadOutcome::Full
        ) {
            break;
        }
        if checksum64(&payload) != declared_sum {
            break;
        }
        let Some(batch) = decode_batch(&payload, n) else {
            break;
        };
        cc.insert_batch(&batch);
        batches += 1;
        edges += batch.len() as u64;
        good_end += 12 + len as u64;
    }
    drop(reader);

    let truncated = !clean_eof;
    if truncated {
        // Cut the bad tail so the next append starts from a valid record
        // boundary (a torn record would otherwise poison future appends).
        file.set_len(good_end)?;
    }
    afforest_obs::count(afforest_obs::Counter::Recoveries, 1);
    Ok(Recovery {
        cc,
        vertices: n,
        from_snapshot,
        batches,
        edges,
        truncated,
    })
}

/// Whether `dir` holds a WAL (log file present).
pub fn exists(dir: &Path) -> bool {
    dir.join(LOG_FILE).exists()
}

/// Where the `default` tenant logs under `root`: the root itself when a
/// legacy pre-tenancy `wal.log` sits there, else `<root>/default/`.
pub fn default_wal_dir(root: &Path) -> PathBuf {
    if exists(root) {
        root.to_path_buf()
    } else {
        root.join(crate::tenant::DEFAULT_TENANT)
    }
}

/// Enumerates the tenant WAL directories under `root`, sorted by tenant
/// name: the legacy root-level layout (as `default`) plus every
/// subdirectory whose name is a valid tenant id and which holds a log.
/// If both layouts claim `default`, the legacy root-level one wins.
pub fn tenant_dirs(root: &Path) -> Vec<(String, PathBuf)> {
    let mut found = Vec::new();
    if exists(root) {
        found.push((
            crate::tenant::DEFAULT_TENANT.to_string(),
            root.to_path_buf(),
        ));
    }
    if let Ok(entries) = std::fs::read_dir(root) {
        for entry in entries.flatten() {
            let dir = entry.path();
            if !exists(&dir) {
                continue;
            }
            let Some(name) = dir.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if crate::tenant::TenantId::new(name).is_err() {
                continue;
            }
            found.push((name.to_string(), dir));
        }
    }
    // The legacy root entry sorts before any subdirectory of the root,
    // so dedup-by-name keeps it when both layouts claim `default`.
    found.sort();
    found.dedup_by(|a, b| a.0 == b.0);
    found
}

/// Validates the magic and the header checksum, returning the header's
/// vertex count and leaving the cursor after the header.
fn read_header(file: &mut File) -> Result<u64, WalError> {
    file.seek(SeekFrom::Start(0))?;
    let mut header = [0u8; HEADER_LEN as usize];
    file.read_exact(&mut header)
        .map_err(|_| WalError::Corrupt("log shorter than its header".into()))?;
    // PANIC-OK: `header` is a HEADER_LEN (24) byte array; every subrange
    // below is statically in bounds and every conversion statically sized.
    if &header[0..8] != MAGIC {
        return Err(WalError::Corrupt("not an AFWAL file (bad magic)".into()));
    }
    // PANIC-OK: 24-byte array, see above.
    let declared = u64::from_le_bytes(header[16..24].try_into().expect("8-byte slice"));
    // PANIC-OK: 24-byte array, see above.
    if checksum64(&header[0..16]) != declared {
        return Err(WalError::Corrupt("header checksum mismatch".into()));
    }
    // PANIC-OK: 24-byte array, see above.
    let n = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));
    if n > Node::MAX as u64 + 1 {
        // Defense in depth: a checksum collision must still not drive a
        // multi-gigabyte allocation.
        return Err(WalError::Corrupt(format!(
            "vertex count {n} exceeds Node range"
        )));
    }
    Ok(n)
}

enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// Fills `buf` completely (`Full`), hits EOF before any byte (`Eof`), or
/// hits EOF mid-buffer (`Partial`). IO errors propagate.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        // PANIC-OK: `filled < buf.len()` loop bound keeps the range valid.
        match r.read(&mut buf[filled..])? {
            0 if filled == 0 => return Ok(ReadOutcome::Eof),
            0 => return Ok(ReadOutcome::Partial),
            k => filled += k,
        }
    }
    Ok(ReadOutcome::Full)
}

/// Decodes an edge-batch payload; `None` on any structural problem
/// (wrong tag, count/length mismatch, out-of-range endpoint).
fn decode_batch(payload: &[u8], n: usize) -> Option<Vec<(Node, Node)>> {
    // PANIC-OK: short-circuit guarantees `payload.len() >= 5` before the
    // tag read and the `[1..5]` count field below.
    if payload.len() < 5 || payload[0] != TAG_EDGE_BATCH {
        return None;
    }
    // PANIC-OK: length >= 5 checked above; conversion statically sized.
    let count = u32::from_le_bytes(payload[1..5].try_into().expect("4-byte slice")) as usize;
    if payload.len() != 5 + count.checked_mul(8)? {
        return None;
    }
    let mut edges = Vec::with_capacity(count);
    // PANIC-OK: `payload.len() >= 5` checked above; `chunks_exact(8)`
    // yields exactly 8-byte windows, so the pair subranges are in bounds.
    for pair in payload[5..].chunks_exact(8) {
        // PANIC-OK: `pair` is an exact 8-byte chunk, see above.
        let u = Node::from_le_bytes(pair[0..4].try_into().expect("4-byte slice"));
        // PANIC-OK: same exact 8-byte chunk, see above.
        let v = Node::from_le_bytes(pair[4..8].try_into().expect("4-byte slice"));
        if u as usize >= n || v as usize >= n {
            return None;
        }
        edges.push((u, v));
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("afforest-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn labels_of(cc: &mut IncrementalCc) -> afforest_core::ComponentLabels {
        cc.labels()
    }

    #[test]
    fn append_then_recover_replays_everything() {
        let dir = tempdir("roundtrip");
        let batches: Vec<Vec<(Node, Node)>> =
            vec![vec![(0, 1), (1, 2)], vec![(5, 6)], vec![(2, 5), (7, 8)]];
        {
            let mut wal = Wal::open(&dir, 10, 0).unwrap();
            for b in &batches {
                assert_eq!(wal.append(b).unwrap(), AppendOutcome::Logged);
            }
            assert_eq!(wal.batches_logged(), 3);
            assert!(wal.bytes_logged() > 0);
        }
        let mut rec = recover(&dir, &[]).unwrap();
        assert_eq!(rec.vertices, 10);
        assert_eq!(rec.batches, 3);
        assert_eq!(rec.edges, 5);
        assert!(!rec.truncated);
        assert!(!rec.from_snapshot);

        let mut oracle = IncrementalCc::new(10);
        for b in &batches {
            oracle.insert_batch(b);
        }
        assert!(labels_of(&mut rec.cc).equivalent(&labels_of(&mut oracle)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_seeds_initial_graph_edges() {
        let dir = tempdir("seeded");
        {
            let mut wal = Wal::open(&dir, 6, 0).unwrap();
            wal.append(&[(2, 3)]).unwrap();
        }
        // Initial graph (0-1, 1-2) is not logged; recovery re-derives it
        // from the seed edges.
        let rec = recover(&dir, &[(0, 1), (1, 2)]).unwrap();
        assert!(rec.cc.connected(0, 3));
        assert!(!rec.cc.connected(0, 5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let dir = tempdir("reopen");
        {
            let mut wal = Wal::open(&dir, 8, 0).unwrap();
            wal.append(&[(0, 1)]).unwrap();
        }
        {
            let mut wal = Wal::open(&dir, 8, 0).unwrap();
            wal.append(&[(1, 2)]).unwrap();
        }
        let rec = recover(&dir, &[]).unwrap();
        assert_eq!(rec.batches, 2);
        assert!(rec.cc.connected(0, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vertex_mismatch_is_typed() {
        let dir = tempdir("mismatch");
        drop(Wal::open(&dir, 8, 0).unwrap());
        match Wal::open(&dir, 9, 0) {
            Err(WalError::VertexMismatch {
                wal: 8,
                expected: 9,
            }) => {}
            other => panic!("expected VertexMismatch, got {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_rejects_out_of_universe_seed_edges() {
        let dir = tempdir("badseed");
        drop(Wal::open(&dir, 4, 0).unwrap());
        match recover(&dir, &[(0, 9)]) {
            Err(WalError::VertexMismatch {
                wal: 4,
                expected: 10,
            }) => {}
            other => panic!("expected VertexMismatch, got {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_log_stays_usable() {
        let dir = tempdir("torn");
        {
            let mut wal = Wal::open(&dir, 8, 0).unwrap();
            wal.append(&[(0, 1)]).unwrap();
            wal.append(&[(1, 2)]).unwrap();
        }
        // Tear the last record by chopping 3 bytes off the file.
        let path = dir.join(LOG_FILE);
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let rec = recover(&dir, &[]).unwrap();
        assert_eq!(rec.batches, 1);
        assert!(rec.truncated);
        assert!(rec.cc.connected(0, 1));
        assert!(!rec.cc.connected(1, 2));

        // The truncation leaves a clean append point: new writes recover.
        {
            let mut wal = Wal::open(&dir, 8, 0).unwrap();
            wal.append(&[(4, 5)]).unwrap();
        }
        let rec = recover(&dir, &[]).unwrap();
        assert_eq!(rec.batches, 2);
        assert!(rec.cc.connected(4, 5));
        assert!(!rec.truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_snapshots_and_truncates() {
        let dir = tempdir("compact");
        let mut cc = IncrementalCc::new(16);
        let mut wal = Wal::open(&dir, 16, 2).unwrap();
        for (i, batch) in [vec![(0u32, 1u32)], vec![(1, 2)], vec![(2, 3)]]
            .iter()
            .enumerate()
        {
            wal.append(batch).unwrap();
            cc.insert_batch(batch);
            let compacted = wal.maybe_compact(&cc).unwrap();
            assert_eq!(compacted, i == 1, "batch {i}");
        }
        // After compacting at batch 2, the log holds only batch 3.
        assert!(dir.join(SNAPSHOT_FILE).exists());
        let mut rec = recover(&dir, &[]).unwrap();
        assert!(rec.from_snapshot);
        assert_eq!(rec.batches, 1);
        let mut oracle = IncrementalCc::new(16);
        oracle.insert_batch(&[(0, 1), (1, 2), (2, 3)]);
        assert!(labels_of(&mut rec.cc).equivalent(&labels_of(&mut oracle)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = tempdir("badsnap");
        let mut cc = IncrementalCc::new(4);
        let mut wal = Wal::open(&dir, 4, 1).unwrap();
        wal.append(&[(0, 1)]).unwrap();
        cc.insert(0, 1);
        assert!(wal.maybe_compact(&cc).unwrap());
        drop(wal);
        // Flip a payload byte in the snapshot.
        let snap = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() - 12;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        match recover(&dir, &[]) {
            Err(WalError::Corrupt(why)) => assert!(why.contains("checksum"), "{why}"),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_short_write_loses_suffix_only() {
        let dir = tempdir("faultshort");
        let faults = Arc::new(FaultPlan::parse("seed=11,wal_short_write=0.4").unwrap());
        let mut wal = Wal::open(&dir, 64, 0)
            .unwrap()
            .with_faults(Arc::clone(&faults));
        let batches: Vec<Vec<(Node, Node)>> = (0..20u32)
            .map(|i| vec![(i, i + 1), (i + 20, i + 21)])
            .collect();
        let mut outcomes = Vec::new();
        for b in &batches {
            outcomes.push(wal.append(b).unwrap());
        }
        drop(wal);
        assert!(outcomes.contains(&AppendOutcome::TornByFault));

        // Survivors: fully-logged batches before the first torn record.
        let survivors: Vec<&Vec<(Node, Node)>> = outcomes
            .iter()
            .take_while(|o| !matches!(o, AppendOutcome::TornByFault))
            .zip(&batches)
            .filter(|(o, _)| matches!(o, AppendOutcome::Logged))
            .map(|(_, b)| b)
            .collect();

        let mut rec = recover(&dir, &[]).unwrap();
        assert!(rec.truncated);
        assert_eq!(rec.batches as usize, survivors.len());
        let mut oracle = IncrementalCc::new(64);
        for b in survivors {
            oracle.insert_batch(b);
        }
        assert!(labels_of(&mut rec.cc).equivalent(&labels_of(&mut oracle)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_drop_skips_records_but_log_stays_valid() {
        let dir = tempdir("faultdrop");
        let faults = Arc::new(FaultPlan::parse("seed=5,wal_drop=0.5").unwrap());
        let mut wal = Wal::open(&dir, 32, 0)
            .unwrap()
            .with_faults(Arc::clone(&faults));
        let batches: Vec<Vec<(Node, Node)>> = (0..16u32).map(|i| vec![(i, i + 1)]).collect();
        let mut logged = Vec::new();
        for b in &batches {
            if wal.append(b).unwrap() == AppendOutcome::Logged {
                logged.push(b.clone());
            }
        }
        drop(wal);
        assert!(faults.injected().wal_drops > 0);
        assert!(!logged.is_empty());

        let mut rec = recover(&dir, &[]).unwrap();
        // Drops leave no trace on disk: the log is clean, just sparser.
        assert!(!rec.truncated);
        assert_eq!(rec.batches as usize, logged.len());
        let mut oracle = IncrementalCc::new(32);
        for b in &logged {
            oracle.insert_batch(b);
        }
        assert!(labels_of(&mut rec.cc).equivalent(&labels_of(&mut oracle)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recover_missing_dir_is_io_error() {
        let dir = tempdir("missing");
        match recover(&dir, &[]) {
            Err(WalError::Io(_)) => {}
            other => panic!("expected Io, got {:?}", other.err()),
        }
        assert!(!exists(&dir));
    }
}
