//! The original Shiloach–Vishkin (1982) algorithm, with star detection.
//!
//! Section V-A notes that "in the original SV algorithm, an additional
//! step was added at each iteration to avoid [pathological] scenarios.
//! However, more recent formulations and implementations of SV omit this
//! step because of its implementation complexity and its high
//! unlikelihood." This module implements the *original* formulation —
//! conditional hooking, star-based unconditional hooking, and pointer
//! jumping — so the repository contains both ends of that trade-off and
//! the claim can be examined directly.
//!
//! Per 1982 iteration:
//!
//! 1. **Conditional hook**: for every edge `(u, v)`, if `π(u)` is a root
//!    and `π(v) < π(u)`, set `π(π(u)) ← π(v)`.
//! 2. **Star hook (unconditional)**: vertices in a *star* (a depth-one
//!    tree that no longer changed) hook onto any adjacent tree,
//!    guaranteeing stagnant stars merge and the iteration count stays
//!    `O(log |V|)` even on adversarial inputs.
//! 3. **Shortcut**: one pointer-jumping pass `π(v) ← π(π(v))`.

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Runs the original 1982 Shiloach–Vishkin; returns the representative
/// labeling.
pub fn shiloach_vishkin_1982(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let pi: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();
    let get = |v: Node| pi[v as usize].load(Ordering::Relaxed);

    let changed = AtomicBool::new(true);
    let mut iter = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        let _span = afforest_obs::span!("sv82-iter[{iter}]");
        iter += 1;
        // Phase 1: conditional hook (smaller parent wins, roots only).
        (0..n as Node).into_par_iter().for_each(|u| {
            for &v in g.neighbors(u) {
                let pu = get(u);
                let pv = get(v);
                if pv < pu
                    && pu == get(pu)
                    && pi[pu as usize]
                        .compare_exchange(pu, pv, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });

        // Phase 2: star detection + unconditional star hook.
        let star = compute_stars(&pi);
        (0..n as Node).into_par_iter().for_each(|u| {
            if !star[u as usize].load(Ordering::Relaxed) {
                return;
            }
            for &v in g.neighbors(u) {
                let pu = get(u);
                let pv = get(v);
                if pv != pu
                    && pu == get(pu)
                    && pi[pu as usize]
                        .compare_exchange(pu, pv, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });

        // Phase 3: single pointer-jumping pass (the 1982 step; repeated
        // across iterations rather than run to a local fixpoint).
        (0..n as Node).into_par_iter().for_each(|v| {
            let p = get(v);
            let gp = get(p);
            if gp != p {
                pi[v as usize].store(gp, Ordering::Relaxed);
                changed.store(true, Ordering::Relaxed);
            }
        });
    }

    // The loop quiesces when every tree is a star; flatten defensively
    // (protects against stars formed in the very last phase).
    (0..n as Node)
        .into_par_iter()
        .map(|v| {
            let mut x = v;
            while get(x) != x {
                x = get(x);
            }
            x
        })
        .collect()
}

/// The classic three-pass star computation: `star[v]` is true iff `v`
/// belongs to a depth-one tree.
fn compute_stars(pi: &[AtomicU32]) -> Vec<AtomicBool> {
    let n = pi.len();
    let get = |v: Node| pi[v as usize].load(Ordering::Relaxed);
    let star: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(true)).collect();

    // Pass 1: any vertex with a grandparent ≠ parent breaks its own star
    // flag, its grandparent's, and (transitively, via pass 2) its parent's.
    (0..n as Node).into_par_iter().for_each(|v| {
        let p = get(v);
        let gp = get(p);
        if gp != p {
            star[v as usize].store(false, Ordering::Relaxed);
            star[gp as usize].store(false, Ordering::Relaxed);
        }
    });
    // Pass 2: inherit the parent's verdict (a leaf of a non-star tree may
    // itself have a root grandparent).
    (0..n as Node).into_par_iter().for_each(|v| {
        let p = get(v);
        if !star[p as usize].load(Ordering::Relaxed) {
            star[v as usize].store(false, Ordering::Relaxed);
        }
    });
    star
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star as star_graph};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        a.len() == b.len() && {
            let mut map = vec![Node::MAX; a.len()];
            (0..a.len()).all(|i| {
                let x = a[i] as usize;
                if map[x] == Node::MAX {
                    map[x] = b[i];
                    true
                } else {
                    map[x] == b[i]
                }
            })
        }
    }

    fn check(g: &CsrGraph) {
        assert!(
            same_partition(&shiloach_vishkin_1982(g), &union_find_cc(g)),
            "1982 SV disagrees with oracle"
        );
    }

    #[test]
    fn classic_shapes() {
        check(&path(300));
        check(&cycle(128));
        check(&star_graph(100, 99));
        check(&star_graph(100, 0));
    }

    #[test]
    fn long_path_adversarial() {
        // The case the star hook exists for: long chains of hooked trees.
        check(&path(5_000));
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(4_000, 24_000, 3));
        check(&rmat_scale(11, 8, 5));
        check(&road_network(50, 50, 0.6, 0.02, 7));
    }

    #[test]
    fn matches_modern_sv() {
        let g = uniform_random(2_000, 10_000, 9);
        assert!(same_partition(
            &shiloach_vishkin_1982(&g),
            &crate::shiloach_vishkin(&g)
        ));
    }

    #[test]
    fn disconnected_and_empty() {
        check(&GraphBuilder::from_edges(6, &[(0, 1), (3, 4)]).build());
        assert!(shiloach_vishkin_1982(&GraphBuilder::from_edges(0, &[]).build()).is_empty());
        assert_eq!(
            shiloach_vishkin_1982(&GraphBuilder::from_edges(3, &[]).build()),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn star_detection_identifies_stars() {
        // Manually shaped forest: {0} root with leaf 1 (star); chain
        // 4→3→2 (not a star).
        let pi: Vec<AtomicU32> = [0u32, 0, 2, 2, 3].into_iter().map(AtomicU32::new).collect();
        let star = compute_stars(&pi);
        let flags: Vec<bool> = star.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert!(flags[0] && flags[1], "depth-1 tree is a star");
        assert!(!flags[2] && !flags[3] && !flags[4], "chain is not a star");
    }

    #[test]
    fn repeated_runs_consistent() {
        let g = uniform_random(3_000, 15_000, 11);
        let oracle = union_find_cc(&g);
        for _ in 0..5 {
            assert!(same_partition(&shiloach_vishkin_1982(&g), &oracle));
        }
    }
}
