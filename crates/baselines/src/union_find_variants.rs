//! Serial union-find variants.
//!
//! The paper groups union-find-based CC under "others [4]". Different
//! union/find policies have measurably different constants (Patwary et
//! al.'s classic study); this module implements the three standard
//! serial variants so the harness can situate Afforest against the whole
//! family — on a single core, a good serial union-find is the strongest
//! possible baseline, which makes Afforest's work-efficiency argument
//! sharper, not weaker.
//!
//! - [`union_by_rank_cc`] — union by rank + full path compression (the
//!   textbook `O(α)` structure).
//! - [`union_by_size_cc`] — union by size + path halving.
//! - [`rem_cc`] — Rem's algorithm with splicing: find and union are
//!   interleaved in a single upward zip, touching each visited node once.
//!
//! All return representative labelings (canonicalized so representatives
//! label themselves with the component minimum, matching every other
//! algorithm in this repository).

use afforest_graph::{CsrGraph, Node};

/// Canonicalizes an arbitrary disjoint-set parent forest into the
/// repository-standard labeling: every vertex labeled by its component's
/// minimum index.
fn canonical_labels(mut parent: Vec<Node>) -> Vec<Node> {
    let n = parent.len();
    // Flatten to roots.
    for v in 0..n {
        let mut r = v as Node;
        while parent[r as usize] != r {
            r = parent[r as usize];
        }
        // Path-compress the walk.
        let mut x = v as Node;
        while parent[x as usize] != r {
            let next = parent[x as usize];
            parent[x as usize] = r;
            x = next;
        }
    }
    // Map each root to the minimum vertex of its class.
    let mut min_of = vec![Node::MAX; n];
    for v in 0..n as Node {
        let r = parent[v as usize] as usize;
        min_of[r] = min_of[r].min(v);
    }
    (0..n).map(|v| min_of[parent[v] as usize]).collect()
}

/// Union by rank + path compression.
pub fn union_by_rank_cc(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let mut parent: Vec<Node> = (0..n as Node).collect();
    let mut rank = vec![0u8; n];

    fn find(parent: &mut [Node], mut x: Node) -> Node {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        while parent[x as usize] != root {
            let next = parent[x as usize];
            parent[x as usize] = root;
            x = next;
        }
        root
    }

    {
        let _span = afforest_obs::span!("uf-union-pass");
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                continue;
            }
            match rank[ru as usize].cmp(&rank[rv as usize]) {
                std::cmp::Ordering::Less => parent[ru as usize] = rv,
                std::cmp::Ordering::Greater => parent[rv as usize] = ru,
                std::cmp::Ordering::Equal => {
                    parent[rv as usize] = ru;
                    rank[ru as usize] += 1;
                }
            }
        }
    }
    let _span = afforest_obs::span!("uf-label-pass");
    canonical_labels(parent)
}

/// Union by size + path halving.
pub fn union_by_size_cc(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let mut parent: Vec<Node> = (0..n as Node).collect();
    let mut size = vec![1u32; n];

    fn find(parent: &mut [Node], mut x: Node) -> Node {
        while parent[x as usize] != x {
            let gp = parent[parent[x as usize] as usize];
            parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    {
        let _span = afforest_obs::span!("uf-union-pass");
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru == rv {
                continue;
            }
            let (big, small) = if size[ru as usize] >= size[rv as usize] {
                (ru, rv)
            } else {
                (rv, ru)
            };
            parent[small as usize] = big;
            size[big as usize] += size[small as usize];
        }
    }
    let _span = afforest_obs::span!("uf-label-pass");
    canonical_labels(parent)
}

/// Rem's algorithm with splicing (Patwary et al.'s `rem` formulation,
/// with the `parent ≤ child` orientation this repository shares with
/// Afforest's Invariant 1).
pub fn rem_cc(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let mut parent: Vec<Node> = (0..n as Node).collect();

    let splice_span = afforest_obs::span!("rem-splice-pass");
    for (u, v) in g.edges() {
        let (mut x, mut y) = (u, v);
        while parent[x as usize] != parent[y as usize] {
            // Work on the side with the larger parent, so pointers keep
            // decreasing (Invariant 1 direction).
            if parent[x as usize] > parent[y as usize] {
                if x == parent[x as usize] {
                    parent[x as usize] = parent[y as usize];
                    break;
                }
                // Splice: redirect x to the other side's parent and climb.
                let z = parent[x as usize];
                parent[x as usize] = parent[y as usize];
                x = z;
            } else {
                if y == parent[y as usize] {
                    parent[y as usize] = parent[x as usize];
                    break;
                }
                let z = parent[y as usize];
                parent[y as usize] = parent[x as usize];
                y = z;
            }
        }
    }
    drop(splice_span);
    let _span = afforest_obs::span!("uf-label-pass");
    canonical_labels(parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{
        rmat_scale, road_network, uniform_random, urand_with_components, web_graph,
    };
    use afforest_graph::GraphBuilder;

    type Variant = (&'static str, fn(&CsrGraph) -> Vec<Node>);

    fn variants() -> Vec<Variant> {
        vec![
            ("by-rank", union_by_rank_cc),
            ("by-size", union_by_size_cc),
            ("rem", rem_cc),
        ]
    }

    fn check(g: &CsrGraph) {
        let oracle = union_find_cc(g);
        for (name, run) in variants() {
            // Canonical labeling makes exact equality the right check.
            assert_eq!(run(g), oracle, "{name} differs from oracle");
        }
    }

    #[test]
    fn classic_shapes() {
        check(&path(300));
        check(&cycle(128));
        check(&star(100, 99));
        check(&star(100, 0));
    }

    #[test]
    fn random_families() {
        check(&uniform_random(4_000, 24_000, 3));
        check(&rmat_scale(11, 8, 4));
        check(&road_network(50, 50, 0.6, 0.02, 5));
        check(&web_graph(2_000, 4, 0.7, 6.0, 6));
        check(&urand_with_components(3_000, 4, 0.05, 7));
    }

    #[test]
    fn degenerate() {
        check(&GraphBuilder::from_edges(0, &[]).build());
        check(&GraphBuilder::from_edges(5, &[]).build());
        check(&GraphBuilder::from_edges(2, &[(0, 1)]).build());
    }

    #[test]
    fn canonical_labels_flattens_arbitrary_forests() {
        // Forest: 3 → 1 → 0 ← 2; 4 alone. Canonical labels: min per class.
        let labels = canonical_labels(vec![0, 0, 0, 1, 4]);
        assert_eq!(labels, vec![0, 0, 0, 0, 4]);
    }

    #[test]
    fn canonical_labels_handles_non_min_roots() {
        // Root 2 with members {0, 1, 2}: class minimum 0 must win.
        let labels = canonical_labels(vec![2, 2, 2]);
        assert_eq!(labels, vec![0, 0, 0]);
    }

    #[test]
    fn rem_adversarial_orders() {
        // Descending chains exercise the splice path heavily.
        let n = 2_000;
        let edges: Vec<(Node, Node)> = (1..n as Node).rev().map(|v| (v, v - 1)).collect();
        let g = GraphBuilder::from_edges(n, &edges).build();
        check(&g);
    }
}
