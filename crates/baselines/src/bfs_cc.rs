//! BFS-based connected components (Section II-B).
//!
//! Components are identified one at a time: scan for an unvisited vertex,
//! run a *parallel* BFS from it labeling everything reached, repeat. High
//! parallelism inside big components, but identification of distinct
//! components is inherently serialized — the weakness Fig. 8c's
//! many-component sweep exposes.

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Sentinel for "not yet visited".
pub(crate) const UNVISITED: Node = Node::MAX;

/// Runs BFS-CC; returns the representative labeling (each component is
/// labeled by its lowest-index vertex, which is always the BFS source).
pub fn bfs_cc(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();

    for root in 0..n as Node {
        if labels[root as usize].load(Ordering::Relaxed) != UNVISITED {
            continue;
        }
        labels[root as usize].store(root, Ordering::Relaxed);
        let mut frontier = vec![root];
        let mut level = 0usize;
        while !frontier.is_empty() {
            let _span = afforest_obs::span!("bfs-level[{level}]");
            level += 1;
            frontier = top_down_step(g, &labels, &frontier, root);
        }
    }

    labels.into_iter().map(|a| a.into_inner()).collect()
}

/// One parallel top-down BFS expansion: claims unvisited neighbors of the
/// frontier via CAS and returns them as the next frontier.
pub(crate) fn top_down_step(
    g: &CsrGraph,
    labels: &[AtomicU32],
    frontier: &[Node],
    root: Node,
) -> Vec<Node> {
    frontier
        .par_iter()
        .flat_map_iter(|&u| {
            g.neighbors(u).iter().filter_map(move |&v| {
                labels[v as usize]
                    .compare_exchange(UNVISITED, root, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                    .then_some(v)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{binary_tree, cycle, path, star};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        a.len() == b.len() && {
            let mut map = vec![Node::MAX; a.len()];
            (0..a.len()).all(|i| {
                let x = a[i] as usize;
                if map[x] == Node::MAX {
                    map[x] = b[i];
                    true
                } else {
                    map[x] == b[i]
                }
            })
        }
    }

    fn check(g: &CsrGraph) {
        assert!(same_partition(&bfs_cc(g), &union_find_cc(g)));
    }

    #[test]
    fn classic_shapes() {
        check(&path(256));
        check(&cycle(100));
        check(&star(64, 63));
        check(&binary_tree(127));
    }

    #[test]
    fn labels_equal_component_minimum() {
        // BFS roots are discovered in index order, so the label is the
        // component's minimum vertex — same convention as union-find.
        let g = GraphBuilder::from_edges(6, &[(5, 4), (4, 3), (0, 1)]).build();
        assert_eq!(bfs_cc(&g), union_find_cc(&g));
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(5_000, 30_000, 2));
        check(&rmat_scale(12, 8, 6));
        check(&road_network(70, 70, 0.6, 0.01, 1));
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = GraphBuilder::from_edges(4, &[(1, 2)]).build();
        let labels = bfs_cc(&g);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[1], labels[2]);
    }

    #[test]
    fn empty() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert!(bfs_cc(&g).is_empty());
    }
}
