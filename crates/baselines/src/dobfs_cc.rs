//! Direction-optimizing BFS connected components (DOBFS-CC).
//!
//! Beamer's direction-optimizing BFS alternates between the classic
//! *top-down* expansion and a *bottom-up* step in which every unvisited
//! vertex checks whether **any** neighbor is in the frontier — profitable
//! when the frontier covers a large share of the graph, because a vertex
//! can stop at its first frontier neighbor and most edges are never
//! examined. This gives BFS-CC the sub-linear edge work the paper credits
//! DOBFS with ("may avoid processing edges by performing bottom-up
//! searches"), making it the strongest traversal baseline (state of the
//! art on `urand` in Fig. 8a).
//!
//! Switching heuristics follow Beamer: go bottom-up when the frontier's
//! outgoing edge count exceeds `remaining edges / alpha`; return top-down
//! when the frontier shrinks below `|V| / beta`.

use crate::bfs_cc::{top_down_step, UNVISITED};
use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Direction-switching thresholds (defaults follow Beamer / GAPBS).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DobfsConfig {
    /// Top-down → bottom-up when `frontier edges > remaining edges / alpha`.
    pub alpha: f64,
    /// Bottom-up → top-down when `frontier size < |V| / beta`.
    pub beta: f64,
}

impl Default for DobfsConfig {
    fn default() -> Self {
        Self {
            alpha: 14.0,
            beta: 24.0,
        }
    }
}

/// Runs DOBFS-CC with default thresholds.
///
/// ```
/// use afforest_baselines::dobfs_cc;
/// use afforest_graph::generators::classic::path;
///
/// let labels = dobfs_cc(&path(5));
/// assert!(labels.iter().all(|&l| l == 0));
/// ```
pub fn dobfs_cc(g: &CsrGraph) -> Vec<Node> {
    dobfs_cc_with(g, &DobfsConfig::default())
}

/// Runs DOBFS-CC with explicit thresholds.
pub fn dobfs_cc_with(g: &CsrGraph, cfg: &DobfsConfig) -> Vec<Node> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    // Arcs not yet claimed by any BFS — drives the alpha heuristic.
    let remaining_arcs = AtomicUsize::new(g.num_arcs());

    for root in 0..n as Node {
        if labels[root as usize].load(Ordering::Relaxed) != UNVISITED {
            continue;
        }
        labels[root as usize].store(root, Ordering::Relaxed);
        remaining_arcs.fetch_sub(g.degree(root), Ordering::Relaxed);
        let mut frontier = vec![root];
        let mut step = 0usize;

        while !frontier.is_empty() {
            let frontier_arcs: usize = frontier.par_iter().map(|&v| g.degree(v)).sum();
            let remaining = remaining_arcs.load(Ordering::Relaxed);

            if (frontier_arcs as f64) > remaining as f64 / cfg.alpha {
                // Bottom-up regime: iterate until the frontier is small
                // again, using bitmap frontiers.
                let mut bitmap = vec![false; n];
                for &v in &frontier {
                    bitmap[v as usize] = true;
                }
                loop {
                    let _span = afforest_obs::span!("dobfs-bottomup[{step}]");
                    step += 1;
                    let (next_bitmap, next_frontier) = bottom_up_step(g, &labels, &bitmap, root);
                    let frontier_size = next_frontier.len();
                    remaining_arcs.fetch_sub(
                        next_frontier
                            .par_iter()
                            .map(|&v| g.degree(v))
                            .sum::<usize>(),
                        Ordering::Relaxed,
                    );
                    frontier = next_frontier;
                    bitmap = next_bitmap;
                    if frontier_size == 0 || (frontier_size as f64) < n as f64 / cfg.beta {
                        break;
                    }
                }
            } else {
                let _span = afforest_obs::span!("dobfs-topdown[{step}]");
                step += 1;
                frontier = top_down_step(g, &labels, &frontier, root);
                remaining_arcs.fetch_sub(
                    frontier.par_iter().map(|&v| g.degree(v)).sum::<usize>(),
                    Ordering::Relaxed,
                );
            }
        }
    }

    labels.into_iter().map(|a| a.into_inner()).collect()
}

/// One bottom-up expansion: every unvisited vertex scans its neighbors
/// for a frontier member and stops at the first hit.
fn bottom_up_step(
    g: &CsrGraph,
    labels: &[AtomicU32],
    frontier_bitmap: &[bool],
    root: Node,
) -> (Vec<bool>, Vec<Node>) {
    let n = g.num_vertices();
    let next: Vec<Node> = (0..n as Node)
        .into_par_iter()
        .filter(|&v| {
            labels[v as usize].load(Ordering::Relaxed) == UNVISITED
                && g.neighbors(v).iter().any(|&w| frontier_bitmap[w as usize])
        })
        .collect();
    // No CAS needed: each vertex claims only itself.
    next.par_iter()
        .for_each(|&v| labels[v as usize].store(root, Ordering::Relaxed));
    let mut bitmap = vec![false; n];
    for &v in &next {
        bitmap[v as usize] = true;
    }
    (bitmap, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{
        rmat_scale, road_network, uniform_random, urand_with_components, web_graph,
    };
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        a.len() == b.len() && {
            let mut map = vec![Node::MAX; a.len()];
            (0..a.len()).all(|i| {
                let x = a[i] as usize;
                if map[x] == Node::MAX {
                    map[x] = b[i];
                    true
                } else {
                    map[x] == b[i]
                }
            })
        }
    }

    fn check(g: &CsrGraph) {
        assert!(same_partition(&dobfs_cc(g), &union_find_cc(g)));
    }

    #[test]
    fn classic_shapes() {
        check(&path(256));
        check(&cycle(100));
        check(&star(64, 63));
    }

    #[test]
    fn dense_graph_triggers_bottom_up() {
        // A dense random graph reaches the alpha threshold on the first
        // or second level; correctness must hold across the switch.
        check(&uniform_random(2_000, 60_000, 1));
    }

    #[test]
    fn aggressive_thresholds_still_correct() {
        let g = uniform_random(1_500, 12_000, 3);
        // alpha tiny: bottom-up almost immediately; beta tiny: stay there.
        let labels = dobfs_cc_with(
            &g,
            &DobfsConfig {
                alpha: 0.01,
                beta: 1.0,
            },
        );
        assert!(same_partition(&labels, &union_find_cc(&g)));
        // alpha huge: pure top-down.
        let labels = dobfs_cc_with(
            &g,
            &DobfsConfig {
                alpha: 1e12,
                beta: 24.0,
            },
        );
        assert!(same_partition(&labels, &union_find_cc(&g)));
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(5_000, 30_000, 5));
        check(&rmat_scale(12, 8, 8));
        check(&road_network(70, 70, 0.6, 0.01, 4));
        check(&web_graph(3_000, 4, 0.7, 6.0, 2));
    }

    #[test]
    fn many_components() {
        check(&urand_with_components(4_000, 4, 0.01, 7));
    }

    #[test]
    fn matches_plain_bfs() {
        let g = uniform_random(2_000, 16_000, 9);
        assert_eq!(dobfs_cc(&g), crate::bfs_cc(&g));
    }

    #[test]
    fn empty_and_isolated() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert!(dobfs_cc(&g).is_empty());
        let g = GraphBuilder::from_edges(3, &[]).build();
        assert_eq!(dobfs_cc(&g), vec![0, 1, 2]);
    }
}
