//! Shiloach–Vishkin connected components (paper Fig. 1).
//!
//! The classic tree-hooking PRAM algorithm, in the formulation used by the
//! GAP benchmark suite (the paper's CPU state-of-the-art SV comparator):
//! iterate global *hook* (every edge attempts to attach the larger-labeled
//! root under the smaller label) and *shortcut* (pointer jumping) phases
//! until a fixpoint. Every edge is re-examined in **every** iteration —
//! the redundancy Afforest eliminates.

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Statistics from an SV run (the SV columns of Table II).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SvStats {
    /// Number of hook+shortcut iterations until the fixpoint.
    pub iterations: usize,
    /// Maximum tree depth observed at any hook-phase boundary.
    pub max_tree_depth: usize,
}

/// Runs Shiloach–Vishkin; returns the representative labeling.
///
/// ```
/// use afforest_baselines::shiloach_vishkin;
/// use afforest_graph::GraphBuilder;
///
/// let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]).build();
/// assert_eq!(shiloach_vishkin(&g), vec![0, 0, 2, 2]);
/// ```
pub fn shiloach_vishkin(g: &CsrGraph) -> Vec<Node> {
    run(g, false).0
}

/// Runs Shiloach–Vishkin, also reporting iteration/depth statistics.
pub fn shiloach_vishkin_with_stats(g: &CsrGraph) -> (Vec<Node>, SvStats) {
    run(g, true)
}

fn run(g: &CsrGraph, collect: bool) -> (Vec<Node>, SvStats) {
    let n = g.num_vertices();
    let pi: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();
    let mut stats = SvStats::default();

    let get = |v: Node| pi[v as usize].load(Ordering::Relaxed);

    let changed = AtomicBool::new(true);
    let mut iter = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        let _span = afforest_obs::span!("sv-iter[{iter}]");
        iter += 1;
        // Hook phase (Fig. 1 lines 5–11): for every arc (u, v), if u's
        // label is smaller and v's parent is a root, attach it under u's
        // label. CAS stands in for the PRAM's "one writer wins".
        (0..n as Node).into_par_iter().for_each(|u| {
            for &v in g.neighbors(u) {
                let pu = get(u);
                let pv = get(v);
                if pu < pv
                    && pv == get(pv)
                    && pi[pv as usize]
                        .compare_exchange(pv, pu, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });

        if collect {
            stats.iterations += 1;
            let depth = (0..n as Node)
                .into_par_iter()
                .map(|v| {
                    let mut x = v;
                    let mut d = 0usize;
                    while get(x) != x {
                        x = get(x);
                        d += 1;
                    }
                    d
                })
                .max()
                .unwrap_or(0);
            stats.max_tree_depth = stats.max_tree_depth.max(depth);
        }

        // Shortcut phase (Fig. 1 lines 13–17): pointer jumping.
        (0..n as Node).into_par_iter().for_each(|v| {
            while get(get(v)) != get(v) {
                let gp = get(get(v));
                pi[v as usize].store(gp, Ordering::Relaxed);
            }
        });
    }

    let labels = pi.into_iter().map(|a| a.into_inner()).collect();
    (labels, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};
    use afforest_graph::GraphBuilder;

    /// Partition equality up to relabeling.
    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut fwd = vec![Node::MAX; a.len()];
        let mut bwd = vec![Node::MAX; a.len()];
        for i in 0..a.len() {
            let (x, y) = (a[i] as usize, b[i] as usize);
            if fwd[x] == Node::MAX {
                fwd[x] = b[i];
            } else if fwd[x] != b[i] {
                return false;
            }
            if bwd[y] == Node::MAX {
                bwd[y] = a[i];
            } else if bwd[y] != a[i] {
                return false;
            }
        }
        true
    }

    fn check(g: &CsrGraph) -> Vec<Node> {
        let labels = shiloach_vishkin(g);
        assert!(same_partition(&labels, &union_find_cc(g)));
        labels
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert!(shiloach_vishkin(&g).is_empty());
    }

    #[test]
    fn classic_shapes() {
        check(&path(200));
        check(&cycle(100));
        check(&star(64, 63));
    }

    #[test]
    fn disconnected() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (3, 4)]).build();
        let labels = check(&g);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[2], 2);
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(5_000, 30_000, 3));
        check(&rmat_scale(12, 8, 4));
        check(&road_network(60, 60, 0.6, 0.02, 5));
    }

    #[test]
    fn stats_iterations_bounded_by_diameterish() {
        let g = path(512);
        let (labels, stats) = shiloach_vishkin_with_stats(&g);
        assert!(same_partition(&labels, &union_find_cc(&g)));
        assert!(stats.iterations >= 1);
        // Pointer jumping gives O(log |V|)-ish rounds on a path.
        assert!(stats.iterations <= 64, "iterations {}", stats.iterations);
        assert!(stats.max_tree_depth >= 1);
    }

    #[test]
    fn stats_single_iteration_on_star() {
        // A star with hub 0 hooks everything in one pass, converging fast.
        let g = star(100, 0);
        let (_, stats) = shiloach_vishkin_with_stats(&g);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn labels_are_component_minimum() {
        let g = GraphBuilder::from_edges(5, &[(4, 3), (3, 2)]).build();
        let labels = shiloach_vishkin(&g);
        assert_eq!(labels[4], 2);
        assert_eq!(labels[3], 2);
        assert_eq!(labels[2], 2);
    }
}
