//! Baseline connected-components algorithms (Section II of the paper).
//!
//! Everything Afforest is compared against in the evaluation, implemented
//! from scratch on the shared [`afforest_graph::CsrGraph`] substrate:
//!
//! - [`shiloach_vishkin`] — the classic tree-hooking algorithm as
//!   formulated in the paper's Fig. 1 (the GAPBS SV variant).
//! - [`sv_edgelist`] — edge-list-streaming SV in the style of Soman et
//!   al.'s GPU code, the paper's GPU comparator.
//! - [`shiloach_vishkin_1982`] — the original 1982 formulation with star
//!   detection and unconditional star hooking (the step Section V-A notes
//!   modern implementations omit).
//! - [`label_prop`] / [`label_prop_sync`] — min-label propagation, both
//!   the data-driven (frontier) and the synchronous full-sweep variants.
//! - [`bfs_cc`] — parallel BFS per component, components processed
//!   sequentially.
//! - [`dobfs_cc`] — direction-optimizing BFS-CC (Beamer's top-down /
//!   bottom-up switching), the CPU state of the art the paper measures
//!   against.
//! - [`parallel_uf`] — single-pass lock-free parallel union-find, a
//!   modern control comparator that tree-hooks without any subgraph
//!   sampling.
//! - [`UnionFind`] — a serial union-find with path compression, used as
//!   the ground-truth oracle by the test suites of every crate.
//!
//! All parallel algorithms return an [`afforest_core`]-compatible labeling:
//! a `Vec<Node>` where two vertices share a value iff they are connected.

#![forbid(unsafe_code)]

pub mod bfs_cc;
pub mod dobfs_cc;
pub mod label_prop;
pub mod parallel_uf;
pub mod shiloach_vishkin;
pub mod sv_edgelist;
pub mod sv_original;
pub mod union_find;
pub mod union_find_variants;

pub use bfs_cc::bfs_cc;
pub use dobfs_cc::{dobfs_cc, DobfsConfig};
pub use label_prop::{label_prop, label_prop_sync};
pub use parallel_uf::parallel_uf;
pub use shiloach_vishkin::{shiloach_vishkin, shiloach_vishkin_with_stats, SvStats};
pub use sv_edgelist::sv_edgelist;
pub use sv_original::shiloach_vishkin_1982;
pub use union_find::UnionFind;
pub use union_find_variants::{rem_cc, union_by_rank_cc, union_by_size_cc};
