//! Lock-free parallel union-find.
//!
//! A modern concurrent disjoint-set CC (in the spirit of the union-find
//! variants the paper cites as "others [4]"): every edge performs a
//! CAS-based union with lightweight path compaction, all edges processed
//! in one parallel pass. Unlike Afforest it has no notion of subgraph
//! sampling or component skipping — it always touches all `|E|` edges —
//! which makes it a useful control when attributing Afforest's wins to
//! sampling rather than to tree-hooking alone.
//!
//! The union rule hooks the higher root under the lower, maintaining the
//! same `π(x) ≤ x` invariant as Afforest's `link`, so acyclicity follows
//! from the same argument (paper Lemma 1/2).

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// Runs single-pass parallel union-find CC; returns the representative
/// labeling (component minimum).
pub fn parallel_uf(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let parent: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();

    let find = |mut x: Node| -> Node {
        loop {
            let p = parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = parent[p as usize].load(Ordering::Relaxed);
            if gp != p {
                // Path halving: best-effort, losing the race is harmless.
                let _ = parent[x as usize].compare_exchange(
                    p,
                    gp,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                );
            }
            x = gp;
        }
    };

    let union_span = afforest_obs::span!("uf-union-pass");
    g.par_vertices().for_each(|u| {
        for &v in g.neighbors(u) {
            if u < v {
                // Retry loop: roots move under us; re-find until one CAS
                // merges the current roots.
                let (mut ru, mut rv) = (find(u), find(v));
                while ru != rv {
                    let (lo, hi) = (ru.min(rv), ru.max(rv));
                    if parent[hi as usize]
                        .compare_exchange(hi, lo, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        break;
                    }
                    ru = find(hi);
                    rv = find(lo);
                }
            }
        }
    });

    drop(union_span);

    // Final flatten: every vertex points at its root.
    let _span = afforest_obs::span!("uf-flatten");
    (0..n as Node).into_par_iter().map(find).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        a.len() == b.len() && {
            let mut map = vec![Node::MAX; a.len()];
            (0..a.len()).all(|i| {
                let x = a[i] as usize;
                if map[x] == Node::MAX {
                    map[x] = b[i];
                    true
                } else {
                    map[x] == b[i]
                }
            })
        }
    }

    fn check(g: &CsrGraph) {
        assert!(same_partition(&parallel_uf(g), &union_find_cc(g)));
    }

    #[test]
    fn classic_shapes() {
        check(&path(300));
        check(&cycle(128));
        check(&star(100, 99));
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(5_000, 30_000, 1));
        check(&rmat_scale(12, 8, 2));
        check(&road_network(60, 60, 0.6, 0.01, 3));
    }

    #[test]
    fn repeated_runs_on_contended_hub() {
        let n = 10_000;
        let edges: Vec<(Node, Node)> = (0..n as Node - 1).map(|v| (n as Node - 1, v)).collect();
        let g = GraphBuilder::from_edges(n, &edges).build();
        for _ in 0..10 {
            check(&g);
        }
    }

    #[test]
    fn labels_are_component_minimum() {
        let g = GraphBuilder::from_edges(5, &[(4, 3), (3, 2)]).build();
        assert_eq!(parallel_uf(&g), vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn empty_and_isolated() {
        assert!(parallel_uf(&GraphBuilder::from_edges(0, &[]).build()).is_empty());
        assert_eq!(
            parallel_uf(&GraphBuilder::from_edges(3, &[]).build()),
            vec![0, 1, 2]
        );
    }
}
