//! Edge-list Shiloach–Vishkin (Soman et al. style).
//!
//! The paper's GPU comparator streams a flat edge list instead of walking
//! CSR adjacencies: "although more data is loaded, this representation
//! exhibits higher data-parallelism in edge-based algorithms, trading
//! memory access round-trips for homogeneous-work edge streaming". On a
//! CPU the trade-off manifests as perfectly balanced per-edge work at the
//! cost of touching `|E|` edge records per iteration. We reproduce it so
//! Fig. 8a's GPU column has an algorithmic analogue in the harness.

use afforest_graph::{CsrGraph, Edge, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Runs edge-list SV over an explicit edge array; returns the
/// representative labeling for `n` vertices.
pub fn sv_edgelist_on(n: usize, edges: &[Edge]) -> Vec<Node> {
    let pi: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();
    let get = |v: Node| pi[v as usize].load(Ordering::Relaxed);

    let changed = AtomicBool::new(true);
    let mut iter = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        let _span = afforest_obs::span!("sv-el-iter[{iter}]");
        iter += 1;
        // Hook over the flat edge stream, both directions per record.
        edges.par_iter().for_each(|&(a, b)| {
            for (u, v) in [(a, b), (b, a)] {
                let pu = get(u);
                let pv = get(v);
                if pu < pv
                    && pv == get(pv)
                    && pi[pv as usize]
                        .compare_exchange(pv, pu, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        // Shortcut.
        (0..n as Node).into_par_iter().for_each(|v| {
            while get(get(v)) != get(v) {
                let gp = get(get(v));
                pi[v as usize].store(gp, Ordering::Relaxed);
            }
        });
    }

    pi.into_iter().map(|a| a.into_inner()).collect()
}

/// Convenience wrapper: materializes the graph's edge list (as the GPU
/// implementation must — "the missing web result of Soman et al. is due
/// to insufficient memory for the edge-list representation") and runs
/// [`sv_edgelist_on`].
pub fn sv_edgelist(g: &CsrGraph) -> Vec<Node> {
    let edges = g.collect_edges();
    sv_edgelist_on(g.num_vertices(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path};
    use afforest_graph::generators::{rmat_scale, uniform_random};
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        if a.len() != b.len() {
            return false;
        }
        let mut map = vec![Node::MAX; a.len()];
        let mut seen = vec![false; a.len()];
        for i in 0..a.len() {
            let x = a[i] as usize;
            if map[x] == Node::MAX {
                if seen[b[i] as usize] {
                    return false;
                }
                map[x] = b[i];
                seen[b[i] as usize] = true;
            } else if map[x] != b[i] {
                return false;
            }
        }
        true
    }

    fn check(g: &CsrGraph) {
        assert!(same_partition(&sv_edgelist(g), &union_find_cc(g)));
    }

    #[test]
    fn classic_shapes() {
        check(&path(150));
        check(&cycle(99));
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(3_000, 20_000, 7));
        check(&rmat_scale(11, 8, 2));
    }

    #[test]
    fn matches_csr_sv() {
        let g = uniform_random(2_000, 9_000, 4);
        assert!(same_partition(
            &sv_edgelist(&g),
            &crate::shiloach_vishkin(&g)
        ));
    }

    #[test]
    fn raw_edge_array_entry_point() {
        let labels = sv_edgelist_on(4, &[(0, 1), (2, 3)]);
        assert_eq!(labels, vec![0, 0, 2, 2]);
    }

    #[test]
    fn empty() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert!(sv_edgelist(&g).is_empty());
        assert_eq!(sv_edgelist_on(3, &[]), vec![0, 1, 2]);
    }
}
