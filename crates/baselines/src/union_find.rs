//! Serial union-find — the ground-truth oracle.
//!
//! Union by "smaller index wins" with path halving. Not a baseline from
//! the paper's evaluation (it is sequential), but the reference every
//! parallel algorithm in this repository is verified against, and the
//! provider of deterministic component structure for the harness.

use afforest_graph::{CsrGraph, Node};

/// Classic disjoint-set forest over `0..n`.
///
/// ```
/// use afforest_baselines::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert_eq!(uf.num_components(), 2);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<Node>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as Node).collect(),
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x` (path halving).
    pub fn find(&mut self, mut x: Node) -> Node {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `u` and `v`; the smaller root index becomes the
    /// representative (matching Afforest's Invariant 1 direction). Returns
    /// `true` if a merge happened.
    pub fn union(&mut self, u: Node, v: Node) -> bool {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru == rv {
            return false;
        }
        let (lo, hi) = (ru.min(rv), ru.max(rv));
        self.parent[hi as usize] = lo;
        self.components -= 1;
        true
    }

    /// Whether `u` and `v` share a set.
    pub fn connected(&mut self, u: Node, v: Node) -> bool {
        self.find(u) == self.find(v)
    }

    /// Fully-compressed representative labeling (each vertex labeled by
    /// its set's minimum index; representatives label themselves).
    pub fn into_labels(mut self) -> Vec<Node> {
        let n = self.parent.len();
        (0..n as Node).map(|v| self.find(v)).collect()
    }

    /// Builds the union-find of a whole graph.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let mut uf = Self::new(g.num_vertices());
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                if u < v {
                    uf.union(u, v);
                }
            }
        }
        uf
    }
}

/// Connected components via serial union-find: the oracle labeling.
pub fn union_find_cc(g: &CsrGraph) -> Vec<Node> {
    let uf = {
        let _span = afforest_obs::span!("uf-union-pass");
        UnionFind::from_graph(g)
    };
    let _span = afforest_obs::span!("uf-label-pass");
    uf.into_labels()
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::GraphBuilder;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_once() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_components(), 3);
        assert!(uf.connected(0, 1));
    }

    #[test]
    fn min_index_is_representative() {
        let mut uf = UnionFind::new(10);
        uf.union(7, 3);
        uf.union(3, 9);
        assert_eq!(uf.find(9), 3);
        uf.union(9, 1);
        assert_eq!(uf.find(7), 1);
    }

    #[test]
    fn labels_are_representative() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (4, 5)]).build();
        let labels = union_find_cc(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 4, 4]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(100);
        for v in 1..100 {
            uf.union(v - 1, v);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn from_graph_counts() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (2, 3), (3, 4)]).build();
        let uf = UnionFind::from_graph(&g);
        assert_eq!(uf.num_components(), 4); // {0,1} {2,3,4} {5} {6}
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_components(), 0);
        assert!(uf.into_labels().is_empty());
    }
}
