//! Min-label propagation (Section II-B).
//!
//! Every vertex starts with its own label; labels flow to neighbors under
//! a minimum-conflict rule until a fixpoint. Total work is `O(D · |E|)` —
//! strongly diameter-dependent, which is exactly the weakness Fig. 6c
//! exposes. Two variants:
//!
//! - [`label_prop_sync`]: synchronous full sweeps (every edge, every
//!   iteration) — the textbook formulation.
//! - [`label_prop`]: data-driven/frontier variant — only vertices whose
//!   label changed propagate in the next round, trading a frontier for
//!   less per-iteration work (the "[6]" optimization the paper cites).

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Atomically lowers `slot` to `value`; returns `true` if it decreased.
#[inline]
fn atomic_min(slot: &AtomicU32, value: Node) -> bool {
    let mut cur = slot.load(Ordering::Relaxed);
    while value < cur {
        match slot.compare_exchange_weak(cur, value, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(seen) => cur = seen,
        }
    }
    false
}

/// Synchronous min-label propagation; returns the representative labeling.
pub fn label_prop_sync(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();

    let changed = AtomicBool::new(true);
    let mut round = 0usize;
    while changed.swap(false, Ordering::Relaxed) {
        let _span = afforest_obs::span!("lp-sync-round[{round}]");
        round += 1;
        (0..n as Node).into_par_iter().for_each(|u| {
            let lu = labels[u as usize].load(Ordering::Relaxed);
            for &v in g.neighbors(u) {
                if atomic_min(&labels[v as usize], lu) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
    }

    labels.into_iter().map(|a| a.into_inner()).collect()
}

/// Data-driven (frontier) min-label propagation.
pub fn label_prop(g: &CsrGraph) -> Vec<Node> {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as Node).map(AtomicU32::new).collect();
    let mut frontier: Vec<Node> = (0..n as Node).collect();
    let in_next: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let mut round = 0usize;
    while !frontier.is_empty() {
        let _span = afforest_obs::span!("lp-round[{round}]");
        round += 1;
        let labels_ref = &labels;
        let in_next_ref = &in_next;
        let next: Vec<Node> = frontier
            .par_iter()
            .flat_map_iter(move |&u| {
                let lu = labels_ref[u as usize].load(Ordering::Relaxed);
                g.neighbors(u).iter().filter_map(move |&v| {
                    if atomic_min(&labels_ref[v as usize], lu)
                        && !in_next_ref[v as usize].swap(true, Ordering::Relaxed)
                    {
                        Some(v)
                    } else {
                        None
                    }
                })
            })
            .collect();
        next.par_iter()
            .for_each(|&v| in_next[v as usize].store(false, Ordering::Relaxed));
        frontier = next;
    }

    labels.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union_find::union_find_cc;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random, web_graph};
    use afforest_graph::GraphBuilder;

    fn same_partition(a: &[Node], b: &[Node]) -> bool {
        a.len() == b.len() && {
            let mut map = vec![Node::MAX; a.len()];
            (0..a.len()).all(|i| {
                let x = a[i] as usize;
                if map[x] == Node::MAX {
                    map[x] = b[i];
                    true
                } else {
                    map[x] == b[i]
                }
            })
        }
    }

    fn check(g: &CsrGraph) {
        let oracle = union_find_cc(g);
        assert!(
            same_partition(&label_prop_sync(g), &oracle),
            "sync LP wrong"
        );
        assert!(same_partition(&label_prop(g), &oracle), "frontier LP wrong");
    }

    #[test]
    fn labels_are_component_minimum() {
        let g = GraphBuilder::from_edges(5, &[(4, 3), (2, 3)]).build();
        assert_eq!(label_prop_sync(&g), vec![0, 1, 2, 2, 2]);
        assert_eq!(label_prop(&g), vec![0, 1, 2, 2, 2]);
    }

    #[test]
    fn classic_shapes() {
        check(&path(300));
        check(&cycle(128));
        check(&star(100, 99));
    }

    #[test]
    fn disconnected_and_isolated() {
        let g = GraphBuilder::from_edges(8, &[(0, 1), (5, 6), (6, 7)]).build();
        check(&g);
    }

    #[test]
    fn random_graphs() {
        check(&uniform_random(4_000, 24_000, 5));
        check(&rmat_scale(11, 8, 9));
    }

    #[test]
    fn high_diameter_road() {
        check(&road_network(50, 50, 0.7, 0.0, 8));
    }

    #[test]
    fn weblike() {
        check(&web_graph(3_000, 4, 0.7, 6.0, 3));
    }

    #[test]
    fn frontier_matches_sync() {
        let g = uniform_random(2_000, 10_000, 13);
        assert_eq!(label_prop(&g), label_prop_sync(&g));
    }

    #[test]
    fn empty() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert!(label_prop(&g).is_empty());
        assert!(label_prop_sync(&g).is_empty());
    }
}
