//! Property-based agreement tests for every baseline.

use afforest_baselines::{
    bfs_cc, dobfs_cc, label_prop, label_prop_sync, parallel_uf, rem_cc, shiloach_vishkin,
    shiloach_vishkin_1982, sv_edgelist, union_by_rank_cc, union_by_size_cc,
    union_find::union_find_cc,
};
use afforest_graph::{CsrGraph, GraphBuilder, Node};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as Node, 0..n as Node);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

/// Partition equality up to relabeling (bidirectional label mapping).
fn same_partition(a: &[Node], b: &[Node]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd = vec![Node::MAX; a.len()];
    let mut bwd = vec![Node::MAX; a.len()];
    for i in 0..a.len() {
        let (x, y) = (a[i] as usize, b[i] as usize);
        if fwd[x] == Node::MAX {
            fwd[x] = b[i];
        } else if fwd[x] != b[i] {
            return false;
        }
        if bwd[y] == Node::MAX {
            bwd[y] = a[i];
        } else if bwd[y] != a[i] {
            return false;
        }
    }
    true
}

type NamedAlgorithm = (&'static str, fn(&CsrGraph) -> Vec<Node>);

fn all_algorithms() -> Vec<NamedAlgorithm> {
    vec![
        ("sv", shiloach_vishkin),
        ("sv-edgelist", sv_edgelist),
        ("sv-1982", shiloach_vishkin_1982),
        ("lp", label_prop),
        ("lp-sync", label_prop_sync),
        ("bfs", bfs_cc),
        ("dobfs", dobfs_cc),
        ("parallel-uf", parallel_uf),
        ("uf-rank", union_by_rank_cc),
        ("uf-size", union_by_size_cc),
        ("rem", rem_cc),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_baselines_agree_with_oracle((n, edges) in arb_edges(120, 400)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let oracle = union_find_cc(&g);
        for (name, run) in all_algorithms() {
            prop_assert!(
                same_partition(&run(&g), &oracle),
                "{} disagrees with oracle",
                name
            );
        }
    }

    #[test]
    fn min_labeled_algorithms_agree_exactly((n, edges) in arb_edges(120, 400)) {
        // Algorithms whose representative is the component minimum must
        // agree bit-for-bit, not just up to relabeling.
        let g = GraphBuilder::from_edges(n, &edges).build();
        let oracle = union_find_cc(&g);
        for (name, run) in [
            ("sv", shiloach_vishkin as fn(&CsrGraph) -> Vec<Node>),
            ("lp", label_prop),
            ("bfs", bfs_cc),
            ("parallel-uf", parallel_uf),
            ("uf-rank", union_by_rank_cc),
            ("rem", rem_cc),
        ] {
            prop_assert_eq!(run(&g), oracle.clone(), "{} not min-labeled", name);
        }
    }

    #[test]
    fn oracle_respects_edges((n, edges) in arb_edges(150, 500)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let labels = union_find_cc(&g);
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Representative labeling invariants.
        for v in 0..n {
            let l = labels[v] as usize;
            prop_assert_eq!(labels[l], labels[v]);
            prop_assert!(l <= v);
        }
    }

    #[test]
    fn component_count_matches_euler_bound((n, edges) in arb_edges(120, 400)) {
        // C ≥ |V| − |E| for any graph (each edge kills at most one
        // component).
        let g = GraphBuilder::from_edges(n, &edges).build();
        let labels = union_find_cc(&g);
        let c = (0..n).filter(|&v| labels[v] as usize == v).count();
        prop_assert!(c >= n.saturating_sub(g.num_edges()));
        prop_assert!(c <= n);
    }
}
