//! Span-ring properties: the seqlock protocol never surfaces a torn
//! span, and wraparound keeps exactly the newest `CAPACITY` records.
//!
//! Tearing is the failure mode the stamp protocol exists to prevent: a
//! reader overlapping a writer must either see the slot's previous
//! complete span or skip the slot, never a mix of two spans' fields.
//! Every span written here derives all seven fields from one seed, so a
//! single cross-field consistency check detects any mix.

use afforest_obs::reqtrace::{Span, SpanRing, CAPACITY};
use proptest::prelude::*;

/// A span whose every field is a pure function of `seed` (stage is
/// allowed to be an arbitrary u16: the ring stores codes, not the
/// enum).
fn span_of(seed: u64) -> Span {
    Span {
        trace_id: seed,
        span_id: seed.wrapping_mul(3),
        parent_span: seed.wrapping_mul(5),
        stage: (seed % 10 + 1) as u16,
        arg: seed.wrapping_mul(7),
        start_us: seed.wrapping_mul(11),
        dur_ns: seed.wrapping_mul(13),
    }
}

/// Whether `s` is some `span_of(seed)` — i.e. internally consistent. A
/// torn slot mixing two different seeds fails at least one equation.
fn consistent(s: &Span) -> bool {
    *s == span_of(s.trace_id)
}

proptest! {
    /// Sequential wraparound: after `n` records the snapshot holds
    /// exactly the newest `min(n, CAPACITY)` spans, in good order.
    #[test]
    fn wraparound_keeps_the_newest_spans(extra in 0usize..(2 * CAPACITY)) {
        let ring = SpanRing::new();
        let n = CAPACITY / 2 + extra;
        for seed in 0..n as u64 {
            ring.record(span_of(seed));
        }
        let snap = ring.snapshot();
        let kept = n.min(CAPACITY);
        prop_assert_eq!(snap.len(), kept);
        let oldest = (n - kept) as u64;
        for (i, s) in snap.iter().enumerate() {
            prop_assert!(consistent(s));
            prop_assert_eq!(s.trace_id, oldest + i as u64);
        }
    }

    /// Concurrent writers with a racing reader: every snapshot taken
    /// while writes are in flight contains only complete spans (a torn
    /// read inside the reader thread panics, which fails the test).
    #[test]
    fn concurrent_writers_never_tear(writers in 2usize..5, per_writer in 50usize..400) {
        let ring = SpanRing::new();
        let total = (writers * per_writer) as u64;
        let snaps = std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = &ring;
                // Disjoint nonzero seed ranges per writer, so any mix of
                // two writers' fields breaks consistency.
                let base = ((w as u64) + 1) << 32;
                scope.spawn(move || {
                    for k in 0..per_writer as u64 {
                        ring.record(span_of(base + k));
                    }
                });
            }
            // The reader races the writers until the cursor shows every
            // record has landed; `recorded()` doubles as the stop flag.
            let reader = scope.spawn(|| {
                let mut snaps = 0usize;
                loop {
                    for s in ring.snapshot() {
                        assert!(consistent(&s), "torn span surfaced: {s:?}");
                    }
                    snaps += 1;
                    if ring.recorded() >= total {
                        break;
                    }
                }
                snaps
            });
            reader.join().expect("reader panicked")
        });
        prop_assert!(snaps > 0);
        prop_assert_eq!(ring.recorded(), total);
        let snap = ring.snapshot();
        prop_assert_eq!(snap.len(), (total as usize).min(CAPACITY));
        for s in &snap {
            prop_assert!(consistent(s));
        }
    }
}
