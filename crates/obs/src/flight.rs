//! Fixed-capacity lock-free flight recorder.
//!
//! A ring of the last [`CAPACITY`] structured events, writable from any
//! thread without locks, readable at any time (including from a panic
//! hook) without stopping writers. The serving crate records coarse
//! lifecycle events here — epoch published, WAL compaction, overload
//! shed, fault injected, worker death — so that when a server dies, the
//! dump explains *what the runtime was doing*, which counters alone
//! cannot.
//!
//! # Design
//!
//! Writers claim a slot with one `fetch_add` on the ring cursor and then
//! stamp the slot with a seqlock-style version: `2*seq + 1` while the
//! fields are being written, `2*seq + 2` once complete. Readers
//! ([`Ring::snapshot`]) load the stamp before and after copying the
//! fields and keep the event only if both loads agree on a completed
//! stamp — a slot caught mid-overwrite is simply skipped. Events carry
//! plain `u64` payloads (no pointers, no allocation), so a torn read
//! can never be unsound, only discarded.
//!
//! One writer-side race is accepted by design: if a writer stalls
//! mid-write for long enough that the cursor laps the whole ring
//! ([`CAPACITY`] more events) and a second writer lands on the same
//! slot, their field writes may interleave under the younger stamp. The
//! stamp protocol cannot rule this out without locks; at ring capacity
//! 1024 and the event rates involved (epochs, faults — not requests)
//! the window is negligible, and the cost is one garbled *historical*
//! event in a diagnostic dump, detected in practice by an out-of-range
//! kind. Real flight recorders make the same trade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of events the ring retains (oldest overwritten first).
pub const CAPACITY: usize = 1024;

/// One recorded event, as copied out by [`Ring::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number (0-based, never reused).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub ts_us: u64,
    /// Caller-defined event kind (the serving crate maps these to
    /// names; the ring itself is agnostic).
    pub kind: u16,
    /// Caller-defined payload words, meaning fixed per kind.
    pub args: [u64; 3],
}

struct RingSlot {
    /// 0 = never written; `2*seq+1` = writing; `2*seq+2` = complete.
    stamp: AtomicU64,
    ts_us: AtomicU64,
    kind: AtomicU64,
    args: [AtomicU64; 3],
}

impl RingSlot {
    const fn new() -> RingSlot {
        RingSlot {
            stamp: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            args: [const { AtomicU64::new(0) }; 3],
        }
    }
}

/// The event ring. Usually accessed through a process-global instance
/// owned by the serving crate; constructible directly for tests.
pub struct Ring {
    next: AtomicU64,
    slots: Box<[RingSlot]>,
    epoch: Instant,
}

impl Default for Ring {
    fn default() -> Ring {
        Ring::new()
    }
}

impl Ring {
    /// Creates an empty ring of [`CAPACITY`] slots.
    pub fn new() -> Ring {
        Ring {
            next: AtomicU64::new(0),
            slots: (0..CAPACITY).map(|_| RingSlot::new()).collect(),
            epoch: Instant::now(),
        }
    }

    /// Records one event. Lock-free: one `fetch_add` plus plain atomic
    /// stores. Safe from any thread, including inside a panic hook.
    pub fn record(&self, kind: u16, args: [u64; 3]) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % CAPACITY as u64) as usize];
        let ts = self.epoch.elapsed().as_micros() as u64;
        // Release-stamp the writing mark so readers that observe it
        // (via Acquire) know the fields below may be in flux.
        slot.stamp.store(seq * 2 + 1, Ordering::Release);
        slot.ts_us.store(ts, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        for (dst, v) in slot.args.iter().zip(args) {
            dst.store(v, Ordering::Relaxed);
        }
        // Release the completed stamp: a reader seeing 2*seq+2 with
        // Acquire also sees every field store above.
        slot.stamp.store(seq * 2 + 2, Ordering::Release);
    }

    /// Total events ever recorded (including ones already overwritten).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Copies out every retained event, oldest first, without blocking
    /// writers. Slots caught mid-write are skipped.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(CAPACITY);
        for slot in self.slots.iter() {
            let before = slot.stamp.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // empty or mid-write
            }
            let ev = Event {
                seq: before / 2 - 1,
                ts_us: slot.ts_us.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed) as u16,
                args: [
                    slot.args[0].load(Ordering::Relaxed),
                    slot.args[1].load(Ordering::Relaxed),
                    slot.args[2].load(Ordering::Relaxed),
                ],
            };
            let after = slot.stamp.load(Ordering::Acquire);
            if after == before {
                out.push(ev);
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = Ring::new();
        for i in 0..10u64 {
            ring.record(1, [i, i * 2, 0]);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 10);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.args[0], i as u64);
            assert_eq!(ev.kind, 1);
        }
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn wraps_keeping_the_newest() {
        let ring = Ring::new();
        let total = CAPACITY as u64 + 100;
        for i in 0..total {
            ring.record(2, [i, 0, 0]);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), CAPACITY);
        assert_eq!(events.first().unwrap().seq, 100);
        assert_eq!(events.last().unwrap().seq, total - 1);
        // Seqs are contiguous after the wrap.
        for w in events.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(ring.recorded(), total);
    }

    #[test]
    fn concurrent_writers_every_event_consistent() {
        let ring = Ring::new();
        let threads = 8u64;
        let per = 200u64; // 1600 > CAPACITY: exercises wrap under contention
        std::thread::scope(|s| {
            for t in 0..threads {
                let ring = &ring;
                s.spawn(move || {
                    for i in 0..per {
                        // args encode (writer, i) twice so a torn mix is
                        // detectable.
                        ring.record(3, [t, i, t * 1_000_000 + i]);
                    }
                });
            }
        });
        assert_eq!(ring.recorded(), threads * per);
        let events = ring.snapshot();
        assert!(!events.is_empty());
        for ev in events {
            assert_eq!(ev.kind, 3);
            assert_eq!(ev.args[2], ev.args[0] * 1_000_000 + ev.args[1]);
        }
    }

    #[test]
    fn snapshot_of_empty_ring_is_empty() {
        assert!(Ring::new().snapshot().is_empty());
    }
}
