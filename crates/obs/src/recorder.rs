//! The recording backend, compiled only with the `enabled` feature.
//!
//! Counter increments go to sharded atomics (one stripe per rayon worker)
//! so hot loops never contend on a single cache line; span open/close is
//! rare (phase granularity) and goes through a mutex-protected session
//! state. All atomic accesses use `Relaxed`: counters are statistics, not
//! synchronization — exact totals are observed only at session end and at
//! span boundaries, after the parallel phase has joined (see DESIGN.md §8).

use crate::trace::{base_of, Histogram, SpanRecord, Trace};
use crate::Counter;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

/// Counter stripes; indexed by rayon worker id modulo this.
const STRIPES: usize = 16;

/// Whether a session is currently recording.
static ACTIVE: AtomicBool = AtomicBool::new(false);

// A const item is the only way to initialize a static array of atomics;
// each array element is a distinct atomic, so the shared-const pitfall the
// lint warns about does not apply.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
const N: usize = Counter::COUNT;

/// Sharded counter cells: `COUNTS[stripe][counter]`.
static COUNTS: [[AtomicU64; N]; STRIPES] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ROW: [AtomicU64; N] = [ZERO; N];
    [ROW; STRIPES]
};

/// Serializes sessions: only one `Session` can record at a time (the
/// counters and span list are process-global).
static GATE: Mutex<()> = Mutex::new(());

/// Mutable per-session state, behind its own lock so span guards can
/// reach it without holding the gate.
static STATE: Mutex<Option<State>> = Mutex::new(None);

struct State {
    t0: Instant,
    spans: Vec<SpanRecord>,
    histograms: BTreeMap<String, Histogram>,
}

thread_local! {
    /// Span nesting depth on this thread (spans are opened on the thread
    /// driving the algorithm, not inside rayon workers).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

fn lock_state() -> MutexGuard<'static, Option<State>> {
    // A panic inside an instrumented phase poisons the lock; recording is
    // diagnostics, so recover rather than cascade the failure.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[inline]
pub(crate) fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Adds `n` to this thread's stripe of `counter`.
#[inline]
pub(crate) fn add(counter: Counter, n: u64) {
    // Workers hash to stripes 0..STRIPES-1 by pool index; threads outside
    // the pool (e.g. the main thread) share the last stripe.
    let stripe = rayon::current_thread_index().map_or(STRIPES - 1, |i| i % STRIPES);
    COUNTS[stripe][counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Sums every stripe into per-counter totals.
fn snapshot() -> [u64; N] {
    let mut totals = [0u64; N];
    for row in &COUNTS {
        for (t, cell) in totals.iter_mut().zip(row) {
            *t += cell.load(Ordering::Relaxed);
        }
    }
    totals
}

fn reset_counters() {
    for row in &COUNTS {
        for cell in row {
            cell.store(0, Ordering::Relaxed);
        }
    }
}

/// Begins recording; the returned guard must be kept alive for the whole
/// session and handed back to [`finish`].
pub(crate) fn begin() -> MutexGuard<'static, ()> {
    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    reset_counters();
    *lock_state() = Some(State {
        t0: Instant::now(),
        spans: Vec::new(),
        histograms: BTreeMap::new(),
    });
    ACTIVE.store(true, Ordering::Relaxed);
    gate
}

/// Stops recording and assembles the [`Trace`].
pub(crate) fn finish(gate: MutexGuard<'static, ()>) -> Trace {
    ACTIVE.store(false, Ordering::Relaxed);
    let state = lock_state().take();
    drop(gate);
    let Some(state) = state else {
        return Trace::default();
    };
    let totals = snapshot();
    // Counter lists are kept sorted by name so a JSON round-trip (which
    // stores them as an object) reproduces the trace exactly.
    let mut counters: Vec<(String, u64)> = Counter::ALL
        .iter()
        .zip(totals)
        .filter(|&(_, v)| v != 0)
        .map(|(c, v)| (c.name().to_string(), v))
        .collect();
    counters.sort();
    Trace {
        total_ns: state.t0.elapsed().as_nanos() as u64,
        counters,
        spans: state.spans,
        histograms: state.histograms.into_values().collect(),
    }
}

/// An open span; closing (dropping) it appends a [`SpanRecord`].
pub(crate) struct ActiveSpan {
    name: String,
    depth: u32,
    start: Instant,
    start_ns: u64,
    counters_at_open: [u64; N],
}

impl ActiveSpan {
    /// Opens a span, if a session is recording.
    pub(crate) fn open(name: String) -> Option<ActiveSpan> {
        let start_ns = {
            let state = lock_state();
            state.as_ref()?.t0.elapsed().as_nanos() as u64
        };
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Some(ActiveSpan {
            name,
            depth,
            start: Instant::now(),
            start_ns,
            counters_at_open: snapshot(),
        })
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let totals = snapshot();
        // Sorted by name: same round-trip invariant as the session totals.
        let mut counters: Vec<(String, u64)> = Counter::ALL
            .iter()
            .zip(totals)
            .zip(self.counters_at_open)
            .filter(|&((_, after), before)| after != before)
            .map(|((c, after), before)| (c.name().to_string(), after - before))
            .collect();
        counters.sort();
        let mut state = lock_state();
        if let Some(state) = state.as_mut() {
            state
                .histograms
                .entry(base_of(&self.name).to_string())
                .or_insert_with(|| Histogram::new(base_of(&self.name)))
                .record(dur_ns);
            state.spans.push(SpanRecord {
                name: std::mem::take(&mut self.name),
                depth: self.depth,
                start_ns: self.start_ns,
                dur_ns,
                counters,
            });
        }
    }
}
