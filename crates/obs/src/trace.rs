//! The machine-readable trace produced by a recording session.
//!
//! A [`Trace`] is a flat list of [`SpanRecord`]s (one per closed span, in
//! close order) plus workspace-wide counter totals and per-phase duration
//! [`Histogram`]s. It serializes to JSON (lossless, reparsable via
//! [`Trace::from_json`]) and to CSV (one row per span, for spreadsheet
//! inspection), and aggregates into per-phase breakdown rows via
//! [`Trace::phase_totals`].

use crate::json::{self, Value};
use std::fmt::Write as _;

/// One closed span: a named, timed section of an algorithm run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Phase name, e.g. `link[0]` or `sv-iter[3]`.
    pub name: String,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Offset of the open relative to session start, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub dur_ns: u64,
    /// Counter deltas observed while the span was open (non-zero only).
    pub counters: Vec<(String, u64)>,
}

impl SpanRecord {
    /// The phase family: the name with any `[index]` suffix removed
    /// (`link[1]` → `link`), used to aggregate repeated phases.
    pub fn base_name(&self) -> &str {
        base_of(&self.name)
    }

    /// The delta recorded for `counter` while this span was open.
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }
}

/// The phase family of a span name (strips one `[...]` suffix).
pub fn base_of(name: &str) -> &str {
    match name.find('[') {
        Some(i) => &name[..i],
        None => name,
    }
}

/// A log₂-bucketed duration histogram for one phase family.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Phase family ([`base_of`] the contributing span names).
    pub name: String,
    /// Number of recorded durations.
    pub count: u64,
    /// Sum of recorded durations, nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded duration, nanoseconds.
    pub min_ns: u64,
    /// Largest recorded duration, nanoseconds.
    pub max_ns: u64,
    /// Sparse `(bucket, count)` pairs where `bucket = floor(log2(ns))`
    /// (bucket 0 holds 0–1 ns), ascending by bucket.
    pub buckets: Vec<(u32, u64)>,
}

impl Histogram {
    /// Starts an empty histogram for `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            min_ns: u64::MAX,
            ..Default::default()
        }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = 63u32.saturating_sub(ns.max(1).leading_zeros());
        match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (bucket, 1)),
        }
    }

    /// Mean duration in nanoseconds (0 for an empty histogram).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Folds `other` into `self` (used to combine per-thread latency
    /// histograms into one report). Keeps `self.name`.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for &(bucket, n) in &other.buckets {
            match self.buckets.binary_search_by_key(&bucket, |&(b, _)| b) {
                Ok(i) => self.buckets[i].1 += n,
                Err(i) => self.buckets.insert(i, (bucket, n)),
            }
        }
    }

    /// Sentinel returned by [`Histogram::percentile`] for a histogram
    /// with no samples. Distinct from any recorded duration (recording
    /// clamps values into bucket 0, but `min_ns` stays `u64::MAX` only
    /// while empty, so callers can also test `count == 0` directly).
    pub const NO_SAMPLES: u64 = 0;

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds, estimated from the
    /// log₂ buckets: the answer is the upper edge of the bucket holding
    /// the target rank, clamped to the observed `[min_ns, max_ns]` range,
    /// so the estimate is within 2× of the true value.
    ///
    /// Edge cases are exact, never an arbitrary bucket bound: an empty
    /// histogram returns [`Histogram::NO_SAMPLES`], and a single-sample
    /// histogram returns that sample exactly (for every `q`).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return Self::NO_SAMPLES;
        }
        if self.count == 1 {
            // One sample: min == max == the sample itself; bucket edges
            // would only blur a value we know exactly.
            return self.max_ns;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bucket, n) in &self.buckets {
            seen += n;
            if seen >= target {
                let upper = if bucket >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (bucket + 1)) - 1
                };
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Aggregated per-phase row: all spans sharing a base name and depth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Phase family name.
    pub name: String,
    /// Nesting depth of the aggregated spans.
    pub depth: u32,
    /// Number of spans aggregated.
    pub count: u64,
    /// Total wall-clock time across those spans, nanoseconds.
    pub total_ns: u64,
}

impl PhaseTotal {
    /// Total in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// A complete recording session: spans, counter totals, histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Wall-clock duration of the whole session, nanoseconds.
    pub total_ns: u64,
    /// Final counter totals (non-zero only), sorted by counter name (the
    /// JSON encoding is an object, so sorted order makes round-trips
    /// reproduce the struct exactly).
    pub counters: Vec<(String, u64)>,
    /// Every closed span, in close order.
    pub spans: Vec<SpanRecord>,
    /// Per-phase-family duration histograms, by family name.
    pub histograms: Vec<Histogram>,
}

impl Trace {
    /// Whether the session recorded nothing (e.g. obs compiled out).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }

    /// The session total in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// The final total of `counter` (0 if never incremented).
    pub fn counter(&self, counter: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == counter)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Spans whose base name matches `base` (`trial` matches `trial[0]`).
    pub fn spans_named<'a>(&'a self, base: &'a str) -> impl Iterator<Item = &'a SpanRecord> {
        self.spans.iter().filter(move |s| s.base_name() == base)
    }

    /// Aggregates spans into per-phase rows, grouped by (base name, depth),
    /// ordered by first appearance in the trace.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut rows: Vec<PhaseTotal> = Vec::new();
        for s in &self.spans {
            let base = s.base_name();
            match rows
                .iter_mut()
                .find(|r| r.depth == s.depth && r.name == base)
            {
                Some(r) => {
                    r.count += 1;
                    r.total_ns += s.dur_ns;
                }
                None => rows.push(PhaseTotal {
                    name: base.to_string(),
                    depth: s.depth,
                    count: 1,
                    total_ns: s.dur_ns,
                }),
            }
        }
        rows
    }

    /// Sum of the durations of all depth-`depth` spans (used to check
    /// per-phase coverage against the session total).
    pub fn depth_total_ns(&self, depth: u32) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == depth)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Serializes the trace as a single-document JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        let _ = write!(out, "{{\"total_ns\":{}", self.total_ns);
        out.push_str(",\"counters\":");
        write_counters(&mut out, &self.counters);
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_escaped(&mut out, &s.name);
            let _ = write!(
                out,
                ",\"depth\":{},\"start_ns\":{},\"dur_ns\":{},\"counters\":",
                s.depth, s.start_ns, s.dur_ns
            );
            write_counters(&mut out, &s.counters);
            out.push('}');
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_escaped(&mut out, &h.name);
            let _ = write!(
                out,
                ",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"buckets\":[",
                h.count,
                h.sum_ns,
                if h.count == 0 { 0 } else { h.min_ns },
                h.max_ns
            );
            for (j, &(b, c)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{b},{c}]");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parses a trace previously produced by [`Trace::to_json`].
    pub fn from_json(text: &str) -> Result<Trace, String> {
        let doc = json::parse(text)?;
        let total_ns = doc
            .get("total_ns")
            .and_then(Value::as_int)
            .ok_or("missing total_ns")?;
        let counters = read_counters(doc.get("counters"))?;

        let mut spans = Vec::new();
        for s in doc
            .get("spans")
            .and_then(Value::as_arr)
            .ok_or("missing spans")?
        {
            spans.push(SpanRecord {
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("span missing name")?
                    .to_string(),
                depth: s.get("depth").and_then(Value::as_int).unwrap_or(0) as u32,
                start_ns: s.get("start_ns").and_then(Value::as_int).unwrap_or(0),
                dur_ns: s
                    .get("dur_ns")
                    .and_then(Value::as_int)
                    .ok_or("span missing dur_ns")?,
                counters: read_counters(s.get("counters"))?,
            });
        }

        let mut histograms = Vec::new();
        if let Some(hs) = doc.get("histograms").and_then(Value::as_arr) {
            for h in hs {
                let count = h.get("count").and_then(Value::as_int).unwrap_or(0);
                let mut buckets = Vec::new();
                if let Some(bs) = h.get("buckets").and_then(Value::as_arr) {
                    for b in bs {
                        let pair = b.as_arr().ok_or("bad histogram bucket")?;
                        let (idx, cnt) = match pair {
                            [i, c] => (
                                i.as_int().ok_or("bad bucket index")? as u32,
                                c.as_int().ok_or("bad bucket count")?,
                            ),
                            _ => return Err("bad histogram bucket arity".into()),
                        };
                        buckets.push((idx, cnt));
                    }
                }
                histograms.push(Histogram {
                    name: h
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("histogram missing name")?
                        .to_string(),
                    count,
                    sum_ns: h.get("sum_ns").and_then(Value::as_int).unwrap_or(0),
                    min_ns: if count == 0 {
                        u64::MAX
                    } else {
                        h.get("min_ns").and_then(Value::as_int).unwrap_or(0)
                    },
                    max_ns: h.get("max_ns").and_then(Value::as_int).unwrap_or(0),
                    buckets,
                });
            }
        }

        Ok(Trace {
            total_ns,
            counters,
            spans,
            histograms,
        })
    }

    /// Serializes spans as CSV: one row per span, fixed columns plus one
    /// column per counter name that appears anywhere in the trace.
    pub fn to_csv(&self) -> String {
        let mut counter_names: Vec<&str> = Vec::new();
        for s in &self.spans {
            for (n, _) in &s.counters {
                if !counter_names.contains(&n.as_str()) {
                    counter_names.push(n);
                }
            }
        }
        let mut out = String::from("name,depth,start_ns,dur_ns");
        for n in &counter_names {
            let _ = write!(out, ",{n}");
        }
        out.push('\n');
        for s in &self.spans {
            let name = if s.name.contains(',') || s.name.contains('"') {
                format!("\"{}\"", s.name.replace('"', "\"\""))
            } else {
                s.name.clone()
            };
            let _ = write!(out, "{name},{},{},{}", s.depth, s.start_ns, s.dur_ns);
            for n in &counter_names {
                let _ = write!(out, ",{}", s.counter(n));
            }
            out.push('\n');
        }
        out
    }
}

fn write_counters(out: &mut String, counters: &[(String, u64)]) {
    out.push('{');
    for (i, (name, v)) in counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_escaped(out, name);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

fn read_counters(v: Option<&Value>) -> Result<Vec<(String, u64)>, String> {
    let Some(v) = v else {
        return Ok(Vec::new());
    };
    let obj = v.as_obj().ok_or("counters must be an object")?;
    obj.iter()
        .map(|(k, v)| {
            v.as_int()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("counter {k} is not an integer"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut h = Histogram::new("link");
        h.record(100);
        h.record(900);
        Trace {
            total_ns: 5_000,
            counters: vec![("cas_retries".into(), 3), ("edges_linked".into(), 42)],
            spans: vec![
                SpanRecord {
                    name: "link[0]".into(),
                    depth: 0,
                    start_ns: 0,
                    dur_ns: 100,
                    counters: vec![("edges_linked".into(), 40)],
                },
                SpanRecord {
                    name: "link[1]".into(),
                    depth: 0,
                    start_ns: 150,
                    dur_ns: 900,
                    counters: vec![("edges_linked".into(), 2)],
                },
                SpanRecord {
                    name: "compress[0]".into(),
                    depth: 1,
                    start_ns: 200,
                    dur_ns: 50,
                    counters: vec![],
                },
            ],
            histograms: vec![h],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample();
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn json_roundtrip_empty() {
        let t = Trace::default();
        assert!(t.is_empty());
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn phase_totals_group_by_base_and_depth() {
        let rows = sample().phase_totals();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "link");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_ns, 1_000);
        assert_eq!(rows[1].name, "compress");
        assert_eq!(rows[1].depth, 1);
    }

    #[test]
    fn counter_lookup() {
        let t = sample();
        assert_eq!(t.counter("edges_linked"), 42);
        assert_eq!(t.counter("absent"), 0);
        assert_eq!(t.spans[0].counter("edges_linked"), 40);
    }

    #[test]
    fn depth_totals() {
        let t = sample();
        assert_eq!(t.depth_total_ns(0), 1_000);
        assert_eq!(t.depth_total_ns(1), 50);
    }

    #[test]
    fn csv_has_counter_columns() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("name,depth,start_ns,dur_ns,edges_linked")
        );
        assert_eq!(lines.next(), Some("link[0],0,0,100,40"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new("x");
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count, 4);
        assert_eq!(h.mean_ns(), (1 + 2 + 3 + 1024) / 4);
        assert_eq!(h.min_ns, 1);
        assert_eq!(h.max_ns, 1024);
        // 1 → bucket 0; 2,3 → bucket 1; 1024 → bucket 10.
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (10, 1)]);
    }

    #[test]
    fn histogram_merge_combines_buckets() {
        let mut a = Histogram::new("lat");
        a.record(10);
        a.record(1000);
        let mut b = Histogram::new("other");
        b.record(3);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.name, "lat");
        assert_eq!(a.count, 4);
        assert_eq!(a.sum_ns, 2013);
        assert_eq!(a.min_ns, 3);
        assert_eq!(a.max_ns, 1000);
        // 3 → bucket 1; 10 → bucket 3; 1000 ×2 → bucket 9.
        assert_eq!(a.buckets, vec![(1, 1), (3, 1), (9, 2)]);
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::new("lat");
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        // p50 lands in the 100 ns bucket [64,128); p99 in [8192,16384).
        let p50 = h.percentile(0.50);
        assert!((100..256).contains(&(p50 as usize)), "p50 = {p50}");
        let p99 = h.percentile(0.99);
        assert!((10_000..16_384).contains(&(p99 as usize)), "p99 = {p99}");
        // Quantile edges are clamped to observed extremes.
        assert!(h.percentile(0.0) >= h.min_ns);
        assert!(h.percentile(1.0) <= h.max_ns);
        assert_eq!(Histogram::new("empty").percentile(0.5), 0);
    }

    #[test]
    fn percentile_empty_returns_documented_sentinel() {
        let h = Histogram::new("empty");
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), Histogram::NO_SAMPLES);
        }
        assert_eq!(h.count, 0);
        assert_eq!(h.min_ns, u64::MAX);
    }

    #[test]
    fn percentile_single_sample_is_exact_not_bucket_bound() {
        // 1000 lands in bucket 9 ([512, 1023]); the naive bucket answer
        // would be the 1023 upper edge. A single sample must come back
        // exactly, at every quantile.
        let mut h = Histogram::new("one");
        h.record(1000);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), 1000, "q = {q}");
        }
    }

    #[test]
    fn merge_of_disjoint_bucket_histograms() {
        // a occupies buckets {1, 3}; b occupies {9, 20} — no overlap.
        let mut a = Histogram::new("a");
        a.record(3);
        a.record(10);
        let mut b = Histogram::new("b");
        b.record(1000);
        b.record(1_500_000);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum_ns, 3 + 10 + 1000 + 1_500_000);
        assert_eq!(a.min_ns, 3);
        assert_eq!(a.max_ns, 1_500_000);
        assert_eq!(a.buckets, vec![(1, 1), (3, 1), (9, 1), (20, 1)]);
        // The merged quantiles walk the combined buckets in order.
        assert!(a.percentile(0.25) <= 10);
        assert!(a.percentile(1.0) >= 1_000_000);
        // Merging into an empty histogram preserves the other side's
        // extremes (min must not stay at the empty sentinel MAX).
        let mut empty = Histogram::new("sink");
        empty.merge(&b);
        assert_eq!(empty.min_ns, 1000);
        assert_eq!(empty.max_ns, 1_500_000);
        assert_eq!(empty.count, 2);
    }

    #[test]
    fn base_name_strips_index() {
        assert_eq!(base_of("link[12]"), "link");
        assert_eq!(base_of("final-link"), "final-link");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Trace::from_json("{}").is_err());
        assert!(Trace::from_json("not json").is_err());
        assert!(Trace::from_json(r#"{"total_ns":1,"spans":[{"depth":0}]}"#).is_err());
    }

    #[test]
    fn spans_named_filters_by_base() {
        let t = sample();
        assert_eq!(t.spans_named("link").count(), 2);
        assert_eq!(t.spans_named("compress").count(), 1);
        assert_eq!(t.spans_named("nope").count(), 0);
    }
}
