//! Process-global, always-on metric registry for long-running services.
//!
//! The session tracer in this crate ([`crate::Session`]) is the wrong
//! shape for a server: it is off by default, single-session, and scoped
//! to one measured run. A service needs the opposite — metrics that are
//! **always compiled, always live**, named statically, and cheap enough
//! that nobody ever considers turning them off. This module provides
//! that layer:
//!
//! - [`Counter`] — monotonic, striped across [`STRIPES`] cache-line-ish
//!   shards so concurrent writers from different threads do not contend
//!   on one atomic.
//! - [`Gauge`] — a single last-writer-wins value (queue depth, current
//!   epoch).
//! - [`Histogram`] — log2-bucketed latency/size distribution with the
//!   same bucket geometry as [`crate::Histogram`], so snapshots merge
//!   with session traces and share percentile code.
//!
//! Metrics are created (and registered) on first use by static name:
//!
//! ```
//! use afforest_obs::registry;
//!
//! let hits = registry::counter("doc_example_hits_total");
//! hits.add(3);
//! assert!(registry::expose().contains("doc_example_hits_total 3"));
//! ```
//!
//! # Snapshot semantics
//!
//! Scrapes never pause writers. [`snapshot`] and [`expose`] read every
//! shard with `Ordering::Relaxed` loads — no locks are taken on any hot
//! path (the registry mutex guards only *registration*, a once-per-name
//! event). A scrape is therefore not an atomic cut across metrics: a
//! counter incremented mid-scrape may appear in one metric's total and
//! not another's. For rate dashboards and monotonicity checks — the
//! intended uses — that is exactly as good as a consistent cut, and it
//! costs the writer nothing.
//!
//! # Exposition
//!
//! [`expose`] renders the Prometheus text format (version 0.0.4):
//! `# TYPE` comments, `name value` samples, and for histograms the
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` triple. Bucket
//! upper bounds are the log2 bucket edges in nanoseconds. Counters and
//! gauges may carry one label ([`labeled_counter`] / [`labeled_gauge`],
//! e.g. `tenant="..."`); all series of a base name share its `# TYPE`
//! comment. [`parse_exposition`] is the inverse, used by `afforest top`
//! and the CI metrics smoke.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of shards per [`Counter`]. Writers pick a shard by thread, so
/// contention only occurs when more than `STRIPES` threads hammer the
/// same counter simultaneously.
pub const STRIPES: usize = 16;

/// Log2 histogram bucket count (covers the full `u64` range).
pub const BUCKETS: usize = 64;

thread_local! {
    /// This thread's shard index, assigned round-robin at first use.
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn stripe_of_thread() -> usize {
    STRIPE.with(|s| *s)
}

/// A monotonically increasing counter, striped to keep concurrent
/// writers off each other's cache lines.
pub struct Counter {
    stripes: [AtomicU64; STRIPES],
}

impl Counter {
    const fn new() -> Counter {
        Counter {
            stripes: [const { AtomicU64::new(0) }; STRIPES],
        }
    }

    /// Adds `n` (Relaxed; never blocks, never fails).
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe_of_thread()].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total: the sum of all shards (Relaxed loads).
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

/// A last-writer-wins instantaneous value.
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Stores `v` (Relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value (Relaxed).
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A concurrent log2-bucketed histogram.
///
/// Same bucket geometry as [`crate::Histogram`] (`bucket = floor(log2(v))`,
/// values clamped to ≥ 1): [`Hist::snapshot`] converts to that type, so
/// percentiles, merging, and rendering are shared with session traces.
pub struct Hist {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    /// Last trace id observed per bucket (0 = none): the OpenMetrics
    /// exemplar, linking an aggregate bucket back to one concrete
    /// retained trace (DESIGN.md §16).
    exemplars: [AtomicU64; BUCKETS],
}

impl Hist {
    const fn new() -> Hist {
        Hist {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            exemplars: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one observation (Relaxed fetch-ops; never blocks).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_traced(v, 0);
    }

    /// [`Hist::record`] plus an exemplar: a nonzero `trace_id` becomes
    /// the bucket's exemplar (last writer wins).
    #[inline]
    pub fn record_traced(&self, v: u64, trace_id: u64) {
        let bucket = 63u32.saturating_sub(v.max(1).leading_zeros()) as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[bucket].store(trace_id, Ordering::Relaxed);
        }
    }

    /// The exemplar trace ids of occupied buckets, as `(bucket, id)`.
    pub fn exemplars(&self) -> Vec<(u32, u64)> {
        self.exemplars
            .iter()
            .enumerate()
            .filter_map(|(b, e)| {
                let id = e.load(Ordering::Relaxed);
                (id != 0).then_some((b as u32, id))
            })
            .collect()
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a mergeable [`crate::Histogram`]
    /// named `name`. Relaxed loads only; concurrent records may be
    /// partially visible (count and buckets can disagree by in-flight
    /// observations), which is acceptable for scraping.
    pub fn snapshot(&self, name: &str) -> crate::Histogram {
        let mut h = crate::Histogram::new(name);
        h.count = self.count.load(Ordering::Relaxed);
        h.sum_ns = self.sum.load(Ordering::Relaxed);
        h.min_ns = self.min.load(Ordering::Relaxed);
        h.max_ns = self.max.load(Ordering::Relaxed);
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                h.buckets.push((i as u32, n));
            }
        }
        h
    }
}

/// One registered metric, by reference into the leaked registry.
enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Hist(&'static Hist),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Hist(_) => "histogram",
        }
    }
}

/// One registry entry. `full` is the exposed sample name (possibly
/// labelled, e.g. `reqs_total{tenant="a"}`); `base` is the metric name
/// the `# TYPE` comment is emitted for. Unlabelled metrics have
/// `full == base`.
struct Entry {
    full: &'static str,
    base: &'static str,
    slot: Slot,
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn register_or_get<T>(
    full: &str,
    base: &'static str,
    make: impl FnOnce() -> &'static T,
    as_slot: impl Fn(&Slot) -> Option<&'static T>,
    wrap: impl FnOnce(&'static T) -> Slot,
) -> &'static T {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(e) = reg.iter().find(|e| e.full == full) {
        return as_slot(&e.slot).unwrap_or_else(|| {
            panic!(
                "metric {full:?} already registered as a {}; \
                 one name, one type",
                e.slot.kind()
            )
        });
    }
    let metric = make();
    // Label values arrive at runtime (tenant names), so the composed
    // full name is interned exactly once per (name, label, value) —
    // bounded by the metric population, not the call count.
    let full: &'static str = if full == base {
        base
    } else {
        Box::leak(full.to_string().into_boxed_str())
    };
    reg.push(Entry {
        full,
        base,
        slot: wrap(metric),
    });
    metric
}

/// The exposed sample name of a labelled metric: `name{label="value"}`.
fn labeled_full(name: &str, label: &str, value: &str) -> String {
    format!("{name}{{{label}=\"{value}\"}}")
}

/// Returns the counter registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different type.
///
/// Call once and cache the reference (e.g. in a `OnceLock` struct of
/// metrics); the lookup takes the registry lock, `add` never does.
pub fn counter(name: &'static str) -> &'static Counter {
    register_or_get(
        name,
        name,
        || Box::leak(Box::new(Counter::new())),
        |s| match s {
            Slot::Counter(c) => Some(c),
            _ => None,
        },
        Slot::Counter,
    )
}

/// Returns the counter registered under `name{label="value"}`, creating
/// it on first use. All series of one `name` share a single `# TYPE`
/// comment in the exposition; the label value may be a runtime string
/// (it is interned once per distinct series). Panics if the full name is
/// already registered as a different type.
pub fn labeled_counter(name: &'static str, label: &'static str, value: &str) -> &'static Counter {
    register_or_get(
        &labeled_full(name, label, value),
        name,
        || Box::leak(Box::new(Counter::new())),
        |s| match s {
            Slot::Counter(c) => Some(c),
            _ => None,
        },
        Slot::Counter,
    )
}

/// Returns the gauge registered under `name`, creating it on first use.
/// Panics if `name` is already registered as a different type.
pub fn gauge(name: &'static str) -> &'static Gauge {
    register_or_get(
        name,
        name,
        || Box::leak(Box::new(Gauge::new())),
        |s| match s {
            Slot::Gauge(g) => Some(g),
            _ => None,
        },
        Slot::Gauge,
    )
}

/// Returns the gauge registered under `name{label="value"}`, creating it
/// on first use (see [`labeled_counter`] for the labelling contract).
/// Panics if the full name is already registered as a different type.
pub fn labeled_gauge(name: &'static str, label: &'static str, value: &str) -> &'static Gauge {
    register_or_get(
        &labeled_full(name, label, value),
        name,
        || Box::leak(Box::new(Gauge::new())),
        |s| match s {
            Slot::Gauge(g) => Some(g),
            _ => None,
        },
        Slot::Gauge,
    )
}

/// Returns the histogram registered under `name`, creating it on first
/// use. Panics if `name` is already registered as a different type.
/// Histograms are never labelled: their exposition already multiplexes
/// `{le="..."}` and a second label axis would not round-trip through
/// [`parse_exposition`].
pub fn histogram(name: &'static str) -> &'static Hist {
    register_or_get(
        name,
        name,
        || Box::leak(Box::new(Hist::new())),
        |s| match s {
            Slot::Hist(h) => Some(h),
            _ => None,
        },
        Slot::Hist,
    )
}

/// A point-in-time reading of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram snapshot (mergeable, percentile-capable).
    Histogram(crate::Histogram),
}

/// Reads every registered metric (Relaxed loads; writers never pause).
/// Names are the full (possibly labelled) sample names, sorted for
/// deterministic output.
pub fn snapshot() -> Vec<(&'static str, MetricValue)> {
    snapshot_grouped()
        .into_iter()
        .map(|(_, full, value, _)| (full, value))
        .collect()
}

/// One grouped sample: `(base, full, value, exemplars)` — the `# TYPE`
/// grouping key, the full labelled name, the read value, and any
/// `(bucket, trace_id)` exemplar pairs a histogram carries.
type GroupedSample = (&'static str, &'static str, MetricValue, Vec<(u32, u64)>);

/// [`snapshot`] with the `# TYPE` grouping key: sorted by
/// `(base, full)` so every labelled series sits next to its base name.
fn snapshot_grouped() -> Vec<GroupedSample> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut out: Vec<GroupedSample> = reg
        .iter()
        .map(|e| {
            let (value, exemplars) = match &e.slot {
                Slot::Counter(c) => (MetricValue::Counter(c.get()), Vec::new()),
                Slot::Gauge(g) => (MetricValue::Gauge(g.get()), Vec::new()),
                Slot::Hist(h) => (MetricValue::Histogram(h.snapshot(e.full)), h.exemplars()),
            };
            (e.base, e.full, value, exemplars)
        })
        .collect();
    out.sort_by_key(|(base, full, _, _)| (*base, *full));
    out
}

/// Upper edge (inclusive) of log2 bucket `b`, as used in exposition
/// `le` labels: `2^(b+1) - 1`.
pub fn bucket_upper_edge(b: u32) -> u64 {
    if b >= 63 {
        u64::MAX
    } else {
        (1u64 << (b + 1)) - 1
    }
}

/// Renders every registered metric in the Prometheus text exposition
/// format (0.0.4). Deterministic order (sorted by base name, then full
/// sample name); labelled series share one `# TYPE` comment per base.
pub fn expose() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mut last_base = "";
    for (base, name, value, exemplars) in snapshot_grouped() {
        let fresh_base = base != last_base;
        last_base = base;
        match value {
            MetricValue::Counter(v) => {
                if fresh_base {
                    let _ = writeln!(out, "# TYPE {base} counter");
                }
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                if fresh_base {
                    let _ = writeln!(out, "# TYPE {base} gauge");
                }
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cum = 0u64;
                for &(bucket, n) in &h.buckets {
                    cum += n;
                    let _ = write!(
                        out,
                        "{name}_bucket{{le=\"{}\"}} {cum}",
                        bucket_upper_edge(bucket)
                    );
                    // OpenMetrics exemplar: the last retained trace that
                    // landed in this bucket.
                    match exemplars.iter().find(|(b, _)| *b == bucket) {
                        Some(&(_, id)) => {
                            let _ = writeln!(out, " # {{trace_id=\"{id:016x}\"}}");
                        }
                        None => out.push('\n'),
                    }
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum_ns);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// A parsed exposition: plain samples (counters/gauges) and
/// reconstructed histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Scrape {
    /// `name -> value` for counter and gauge samples (also `_sum` and
    /// `_count` histogram samples, under their suffixed names).
    pub values: Vec<(String, u64)>,
    /// Histograms rebuilt from `_bucket`/`_sum`/`_count` triples.
    /// `min_ns`/`max_ns` are approximated by the occupied bucket edges
    /// (the text format does not carry exact extrema).
    pub histograms: Vec<crate::Histogram>,
    /// OpenMetrics exemplars, `(full bucket sample name, trace id hex)`
    /// in exposition order (so per histogram, ascending bucket edge).
    pub exemplars: Vec<(String, String)>,
}

impl Scrape {
    /// Looks up a plain sample by name.
    pub fn value(&self, name: &str) -> Option<u64> {
        self.values.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a reconstructed histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&crate::Histogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The exemplar trace id (hex) of histogram `name`'s highest
    /// occupied bucket — the slowest retained request it observed.
    pub fn exemplar(&self, name: &str) -> Option<&str> {
        let prefix = format!("{name}_bucket{{le=\"");
        self.exemplars
            .iter()
            .rev()
            .find(|(n, _)| n.starts_with(&prefix))
            .map(|(_, id)| id.as_str())
    }
}

/// Parses a Prometheus text exposition produced by [`expose`] (or any
/// scraper-compatible source using the same histogram bucket edges).
///
/// Returns an error describing the first malformed line. Unknown
/// comment lines are ignored, as the format requires.
pub fn parse_exposition(text: &str) -> Result<Scrape, String> {
    struct Partial {
        buckets: Vec<(u32, u64)>, // (bucket index, cumulative count)
        sum: u64,
        count: u64,
    }
    let mut scrape = Scrape::default();
    let mut partials: Vec<(String, Partial)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {line:?}", lineno + 1);
        // An OpenMetrics exemplar rides after the sample value as
        // ` # {trace_id="…"}`; split it off before the value parse.
        let (line, exemplar) = match line.split_once(" # ") {
            Some((data, ex)) => {
                let id = ex
                    .strip_prefix("{trace_id=\"")
                    .and_then(|r| r.strip_suffix("\"}"))
                    .ok_or_else(|| err("malformed exemplar"))?;
                (data.trim(), Some(id.to_string()))
            }
            None => (line, None),
        };
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("expected `name value`"))?;
        let name_part = name_part.trim();
        let value_part = value_part.trim();
        if let Some(id) = exemplar {
            scrape.exemplars.push((name_part.to_string(), id));
        }

        if let Some((base, rest)) = name_part.split_once("_bucket{le=\"") {
            let le = rest
                .strip_suffix("\"}")
                .ok_or_else(|| err("unterminated le label"))?;
            let cum: u64 = value_part
                .parse()
                .map_err(|_| err("bucket count not an integer"))?;
            let partial = match partials.iter_mut().find(|(n, _)| n == base) {
                Some((_, p)) => p,
                None => {
                    partials.push((
                        base.to_string(),
                        Partial {
                            buckets: Vec::new(),
                            sum: 0,
                            count: 0,
                        },
                    ));
                    &mut partials.last_mut().unwrap().1
                }
            };
            if le == "+Inf" {
                continue; // total repeated in `_count`
            }
            let edge: u64 = le.parse().map_err(|_| err("le bound not an integer"))?;
            // edge = 2^(b+1) - 1  =>  b = log2(edge + 1) - 1, with the
            // top bucket's edge saturated at u64::MAX.
            let bucket = if edge == u64::MAX {
                63
            } else {
                (63u32 - edge.wrapping_add(1).leading_zeros()).saturating_sub(1)
            };
            partial.buckets.push((bucket, cum));
            continue;
        }
        let value: u64 = value_part
            .parse()
            .map_err(|_| err("sample value not an unsigned integer"))?;
        if let Some(base) = name_part.strip_suffix("_sum") {
            if let Some((_, p)) = partials.iter_mut().find(|(n, _)| n == base) {
                p.sum = value;
            }
        } else if let Some(base) = name_part.strip_suffix("_count") {
            if let Some((_, p)) = partials.iter_mut().find(|(n, _)| n == base) {
                p.count = value;
            }
        }
        // Labelled counter/gauge series (tenant="..." and friends) are
        // kept under their full sample name; only well-formed label
        // blocks are accepted, so a mangled line still errors.
        if name_part.contains(['{', '}'])
            && !(name_part.ends_with("\"}") && name_part.contains('{') && name_part.contains("=\""))
        {
            return Err(err("malformed labels on sample"));
        }
        scrape.values.push((name_part.to_string(), value));
    }

    for (name, p) in partials {
        let mut h = crate::Histogram::new(&name);
        h.count = p.count;
        h.sum_ns = p.sum;
        let mut prev = 0u64;
        for (bucket, cum) in p.buckets {
            let n = cum.saturating_sub(prev);
            prev = cum;
            if n > 0 {
                h.buckets.push((bucket, n));
            }
        }
        if let Some(&(first, _)) = h.buckets.first() {
            h.min_ns = if first == 0 { 1 } else { 1u64 << first };
        }
        if let Some(&(last, _)) = h.buckets.last() {
            h.max_ns = bucket_upper_edge(last);
        }
        scrape.histograms.push(h);
    }
    Ok(scrape)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global registry: every test uses unique names and asserts deltas,
    // because tests in this binary share the process.

    #[test]
    fn counter_sums_across_threads() {
        let c = counter("test_reg_counter_threads_total");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - before, 8000);
    }

    #[test]
    fn same_name_returns_same_metric() {
        let a = counter("test_reg_same_name_total");
        let b = counter("test_reg_same_name_total");
        a.add(5);
        assert_eq!(b.get(), a.get());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn gauge_is_last_writer_wins() {
        let g = gauge("test_reg_gauge");
        g.set(41);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_snapshot_matches_session_geometry() {
        let h = histogram("test_reg_hist_ns");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let snap = h.snapshot("test_reg_hist_ns");
        let mut reference = crate::Histogram::new("reference");
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            reference.record(v);
        }
        assert_eq!(snap.count, reference.count);
        assert_eq!(snap.buckets, reference.buckets);
        assert_eq!(snap.min_ns, reference.min_ns);
        assert_eq!(snap.max_ns, reference.max_ns);
        assert_eq!(snap.percentile(0.5), reference.percentile(0.5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        counter("test_reg_conflict");
        gauge("test_reg_conflict");
    }

    #[test]
    fn exposition_roundtrips_through_parser() {
        let c = counter("test_reg_expo_requests_total");
        let g = gauge("test_reg_expo_depth");
        let h = histogram("test_reg_expo_latency_ns");
        c.add(3);
        g.set(9);
        for v in [5u64, 5, 900, 70_000] {
            h.record(v);
        }

        let text = expose();
        let scrape = parse_exposition(&text).expect("parse");

        assert!(scrape.value("test_reg_expo_requests_total").unwrap() >= 3);
        assert_eq!(scrape.value("test_reg_expo_depth"), Some(9));
        let hist = scrape.histogram("test_reg_expo_latency_ns").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.sum_ns, 5 + 5 + 900 + 70_000);
        // Reconstructed buckets carry the same per-bucket counts.
        let snap = h.snapshot("x");
        assert_eq!(hist.buckets, snap.buckets);
    }

    #[test]
    fn exemplars_ride_bucket_lines_and_roundtrip() {
        let h = histogram("test_reg_exemplar_latency_ns");
        h.record(100); // no trace: bucket line stays bare
        h.record_traced(100_000, 0xDEAD_BEEF);
        h.record_traced(100_000, 0xFEED_F00D); // last writer wins
        let text = expose();
        assert!(text.contains("# {trace_id=\"00000000feedf00d\"}"), "{text}");
        let scrape = parse_exposition(&text).expect("exemplars parse");
        assert_eq!(
            scrape.exemplar("test_reg_exemplar_latency_ns"),
            Some("00000000feedf00d")
        );
        assert_eq!(scrape.exemplar("test_reg_expo_no_such_hist"), None);
        // The histogram itself still reconstructs.
        let hist = scrape.histogram("test_reg_exemplar_latency_ns").unwrap();
        assert_eq!(hist.count, 3);
        // A mangled exemplar errors instead of corrupting the value.
        assert!(parse_exposition("lat_bucket{le=\"3\"} 1 # {oops}\n").is_err());
    }

    #[test]
    fn labeled_series_share_one_type_line_and_roundtrip() {
        let a = labeled_counter("test_reg_labeled_total", "tenant", "alpha");
        let b = labeled_counter("test_reg_labeled_total", "tenant", "beta");
        let g = labeled_gauge("test_reg_labeled_depth", "tenant", "alpha");
        assert!(!std::ptr::eq(a, b));
        // Same series → same metric, interned once.
        assert!(std::ptr::eq(
            a,
            labeled_counter("test_reg_labeled_total", "tenant", "alpha")
        ));
        a.add(2);
        b.add(5);
        g.set(9);

        let text = expose();
        // One TYPE comment for the base, one sample per series.
        assert_eq!(
            text.matches("# TYPE test_reg_labeled_total counter")
                .count(),
            1
        );
        assert!(text.contains("test_reg_labeled_total{tenant=\"alpha\"} 2"));
        assert!(text.contains("test_reg_labeled_total{tenant=\"beta\"} 5"));

        let scrape = parse_exposition(&text).expect("labelled exposition parses");
        assert_eq!(
            scrape.value("test_reg_labeled_total{tenant=\"alpha\"}"),
            Some(2)
        );
        assert_eq!(
            scrape.value("test_reg_labeled_total{tenant=\"beta\"}"),
            Some(5)
        );
        assert_eq!(
            scrape.value("test_reg_labeled_depth{tenant=\"alpha\"}"),
            Some(9)
        );
    }

    #[test]
    fn exposition_is_sorted_and_typed() {
        counter("test_reg_order_a_total");
        counter("test_reg_order_b_total");
        let text = expose();
        let a = text.find("test_reg_order_a_total").unwrap();
        let b = text.find("test_reg_order_b_total").unwrap();
        assert!(a < b);
        assert!(text.contains("# TYPE test_reg_order_a_total counter"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_value_here\n").is_err());
        assert!(parse_exposition("name not_a_number\n").is_err());
        assert!(parse_exposition("h_bucket{le=\"3\" 4\n").is_err());
        // Comments and blanks are fine.
        assert!(parse_exposition("# HELP x y\n\n").is_ok());
    }

    /// Each error path of the parser, pinned to its message and the
    /// 1-based line number it reports.
    #[test]
    fn parser_error_paths_name_the_line_and_cause() {
        // Truncated line: a bare name with no value sample.
        let e = parse_exposition("ok_total 1\ntruncated_line\n").unwrap_err();
        assert!(e.starts_with("line 2:"), "{e}");
        assert!(e.contains("expected `name value`"), "{e}");

        // Non-numeric sample value.
        let e = parse_exposition("depth_gauge NaN\n").unwrap_err();
        assert!(e.contains("sample value not an unsigned integer"), "{e}");
        let e = parse_exposition("depth_gauge -3\n").unwrap_err();
        assert!(e.contains("sample value not an unsigned integer"), "{e}");

        // Bucket line whose le label never closes.
        let e = parse_exposition("lat_bucket{le=\"3 7\n").unwrap_err();
        assert!(e.contains("unterminated le label"), "{e}");

        // Bucket count and bucket edge must both be integers.
        let e = parse_exposition("lat_bucket{le=\"3\"} x\n").unwrap_err();
        assert!(e.contains("bucket count not an integer"), "{e}");
        let e = parse_exposition("lat_bucket{le=\"wide\"} 7\n").unwrap_err();
        assert!(e.contains("le bound not an integer"), "{e}");

        // Well-formed labels on a non-bucket sample are kept under the
        // full sample name; mangled label blocks still error.
        let scrape = parse_exposition("reqs{shard=\"0\"} 4\n").expect("labelled sample");
        assert_eq!(scrape.value("reqs{shard=\"0\"}"), Some(4));
        let e = parse_exposition("reqs{shard=\"0\" 4\n").unwrap_err();
        assert!(e.contains("malformed labels on sample"), "{e}");
        let e = parse_exposition("reqs{shard} 4\n").unwrap_err();
        assert!(e.contains("malformed labels on sample"), "{e}");

        // Unknown comment lines (any `#`-prefixed line, including TYPE
        // kinds this parser never emits) are ignored, not errors.
        let scrape =
            parse_exposition("# TYPE exotic summary\n# EOF\nok_total 2\n").expect("comments skip");
        assert_eq!(scrape.value("ok_total"), Some(2));

        // An error on a later line still names that line.
        let e = parse_exposition("a_total 1\nb_total 2\n\nbad\n").unwrap_err();
        assert!(e.starts_with("line 4:"), "{e}");
    }

    #[test]
    fn bucket_edges_invert() {
        for b in 0..64u32 {
            let edge = bucket_upper_edge(b);
            let back = if edge == u64::MAX {
                63
            } else {
                63u32.saturating_sub(edge.saturating_add(1).leading_zeros()) - 1
            };
            assert_eq!(back, b, "edge {edge}");
        }
    }
}
