//! Request-scoped distributed tracing (DESIGN.md §16).
//!
//! Where [`registry`](crate::registry) aggregates (*p99 is high*) and
//! [`flight`](crate::flight) remembers faults (*a breaker opened*),
//! this module explains **one request**: a 64-bit trace id minted by
//! the client rides the wire envelope through router → shard worker →
//! engine writer, and every pipeline stage it crosses records a
//! [`Span`] with a parent id, so the full cross-process tree can be
//! reconstructed end to end (`afforest trace`).
//!
//! # Pieces
//!
//! - **Ids.** Trace ids are 64-bit, nonzero, minted by [`mint`]
//!   (splitmix64 over a per-process seed and a counter). Span ids put
//!   a 16-bit per-process tag in the high bits so spans minted by
//!   different processes in the same trace cannot collide (except with
//!   probability 2⁻¹⁶ per process pair, acceptable for a debug tool).
//! - **Stages.** Every span carries a [`Stage`] tag from a closed
//!   taxonomy ([`STAGE_NAMES`]); the analysis lint checks the taxonomy
//!   against the DESIGN.md §16 stage table, so docs cannot drift.
//! - **The span ring.** Retained spans land in a per-process lock-free
//!   seqlock ring ([`SpanRing`]), the same odd/even stamp protocol as
//!   `flight.rs`: writers never block, readers discard torn slots. The
//!   `DumpTraces` wire op snapshots it remotely.
//! - **Tail sampling.** Request-thread spans are buffered thread-local
//!   under a [`RootSpan`]; when the root completes, the whole tree is
//!   kept only if the request was *slow* (total duration ≥ the
//!   [`configure`]d threshold) or *degraded* ([`RootSpan::force_retain`]).
//!   A threshold of zero retains everything. Stages recorded off the
//!   request thread (the engine writer's queue-wait / WAL / apply /
//!   publish spans) go straight to the ring — by the time they exist,
//!   batching has already coalesced them across requests.
//! - **Zero cost when disabled.** Everything funnels through one
//!   relaxed load of a process-global flag; with tracing off (the
//!   default) every entry point returns an inert guard without
//!   touching the clock, TLS buffers, or the ring.
//!
//! Unlike the [`span!`](crate::span!) session recorder this module is
//! compiled unconditionally (no `enabled` feature): tracing a live
//! service must not require a special build, and the disabled path is
//! one branch.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Slots in the per-process span ring (power of two).
pub const CAPACITY: usize = 1024;

/// Number of stage tags in the taxonomy.
pub const STAGES: usize = 10;

/// The stage taxonomy, by wire code minus one (`Stage` as `u16` is the
/// 1-based index into this table). The analysis `stage-doc` lint pass
/// requires every literal here to appear in the DESIGN.md §16 stage
/// table.
pub const STAGE_NAMES: [&str; STAGES] = [
    "router_request",
    "router_decode",
    "breaker_gate",
    "shard_fanout",
    "boundary_compose",
    "shard_request",
    "queue_wait",
    "wal_fsync",
    "batch_apply",
    "epoch_publish",
];

/// A pipeline stage a request crosses; the typed tag on every [`Span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum Stage {
    /// Root span at the router: one full request, decode to reply.
    RouterRequest = 1,
    /// Frame decode at the router (recorded retroactively: the trace
    /// context is only known once decode succeeds).
    RouterDecode = 2,
    /// Health-gate consultation before a shard call (`arg` = shard).
    BreakerGate = 3,
    /// One per-shard backend call of a fan-out (`arg` = shard).
    ShardFanout = 4,
    /// Boundary-graph composition on a composite-cache miss.
    BoundaryCompose = 5,
    /// Root span at a shard worker / standalone server: one request.
    ShardRequest = 6,
    /// Time a write waited in the ingest queue before its batch was
    /// drained (`arg` = edges in the drained batch).
    QueueWait = 7,
    /// WAL append + flush for one batch (`arg` = edges).
    WalFsync = 8,
    /// Linking one drained batch into the structure (`arg` = edges).
    BatchApply = 9,
    /// Publishing the resulting epoch snapshot (`arg` = epoch).
    EpochPublish = 10,
}

impl Stage {
    /// Wire code (1-based index into [`STAGE_NAMES`]).
    pub const fn code(self) -> u16 {
        self as u16
    }

    /// The snake_case stage tag.
    pub fn name(self) -> &'static str {
        STAGE_NAMES[self as usize - 1]
    }

    /// Inverse of [`Stage::code`]; `None` for unknown codes (a newer
    /// peer's ring may carry stages this build does not know).
    pub fn from_code(code: u16) -> Option<Stage> {
        Some(match code {
            1 => Stage::RouterRequest,
            2 => Stage::RouterDecode,
            3 => Stage::BreakerGate,
            4 => Stage::ShardFanout,
            5 => Stage::BoundaryCompose,
            6 => Stage::ShardRequest,
            7 => Stage::QueueWait,
            8 => Stage::WalFsync,
            9 => Stage::BatchApply,
            10 => Stage::EpochPublish,
            _ => return None,
        })
    }
}

/// The stage tag for a wire code, with a stable fallback for codes
/// minted by a newer peer.
pub fn stage_name(code: u16) -> &'static str {
    Stage::from_code(code).map_or("unknown_stage", Stage::name)
}

/// Wire-portable trace context: which trace a request belongs to and
/// which span is the parent of whatever the receiver records next.
///
/// `trace_id == 0` means "not sampled" — the zero context is the
/// uninstrumented default everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// The request's trace, 0 = unsampled.
    pub trace_id: u64,
    /// Span id the next recorded span should parent under (0 = root).
    pub parent_span: u64,
}

impl TraceCtx {
    /// The unsampled context.
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        parent_span: 0,
    };

    /// A fresh root context for `trace_id`.
    pub fn root(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            parent_span: 0,
        }
    }

    /// Whether this request is being traced.
    pub fn sampled(&self) -> bool {
        self.trace_id != 0
    }
}

/// One completed, retained span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace, see module docs).
    pub span_id: u64,
    /// Parent span id, 0 for a root.
    pub parent_span: u64,
    /// [`Stage`] wire code.
    pub stage: u16,
    /// Stage-specific argument (shard index, batch edges, epoch).
    pub arg: u64,
    /// Wall-clock start, microseconds since the Unix epoch — wall
    /// clock so spans from different processes order coherently.
    pub start_us: u64,
    /// Duration in nanoseconds (monotonic clock).
    pub dur_ns: u64,
}

impl Span {
    /// The span's stage tag (with the unknown-code fallback).
    pub fn stage_name(&self) -> &'static str {
        stage_name(self.stage)
    }
}

const FIELDS: usize = 7;

struct Slot {
    /// Seqlock stamp: `2*seq + 1` while a writer owns the slot,
    /// `2*seq + 2` once the write is complete, 0 = never written.
    stamp: AtomicU64,
    fields: [AtomicU64; FIELDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            fields: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Lock-free ring of the most recent retained spans, same seqlock
/// protocol as `flight::Ring`: `record` never blocks and never
/// allocates; `snapshot` double-reads each slot's stamp and discards
/// torn entries. A writer lapped mid-`snapshot` costs a dropped slot,
/// never a torn one.
pub struct SpanRing {
    cursor: AtomicU64,
    slots: Box<[Slot]>,
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanRing {
    /// An empty ring of [`CAPACITY`] slots.
    pub fn new() -> SpanRing {
        SpanRing {
            cursor: AtomicU64::new(0),
            slots: (0..CAPACITY).map(|_| Slot::empty()).collect(),
        }
    }

    /// Records one span, overwriting the oldest slot once full.
    pub fn record(&self, s: Span) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) % CAPACITY];
        slot.stamp.store(2 * seq + 1, Ordering::Release);
        let fields = [
            s.trace_id,
            s.span_id,
            s.parent_span,
            u64::from(s.stage),
            s.arg,
            s.start_us,
            s.dur_ns,
        ];
        for (cell, v) in slot.fields.iter().zip(fields) {
            cell.store(v, Ordering::Relaxed);
        }
        slot.stamp.store(2 * seq + 2, Ordering::Release);
    }

    /// Spans ever recorded (retained or since overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Consistent copies of every completed slot, oldest first.
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out: Vec<(u64, Span)> = Vec::with_capacity(CAPACITY);
        for slot in self.slots.iter() {
            let before = slot.stamp.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue; // never written, or a writer owns it right now
            }
            let mut f = [0u64; FIELDS];
            for (v, cell) in f.iter_mut().zip(slot.fields.iter()) {
                *v = cell.load(Ordering::Relaxed);
            }
            let after = slot.stamp.load(Ordering::Acquire);
            if before != after {
                continue; // torn: a writer lapped us mid-copy
            }
            out.push((
                (before - 2) / 2,
                Span {
                    trace_id: f[0],
                    span_id: f[1],
                    parent_span: f[2],
                    stage: f[3] as u16,
                    arg: f[4],
                    start_us: f[5],
                    dur_ns: f[6],
                },
            ));
        }
        out.sort_unstable_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, s)| s).collect()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static THRESHOLD_NS: AtomicU64 = AtomicU64::new(0);
static MINTED: AtomicU64 = AtomicU64::new(0);
static SPAN_SEQ: AtomicU64 = AtomicU64::new(1);
static RING: OnceLock<SpanRing> = OnceLock::new();
static NODE: OnceLock<String> = OnceLock::new();
static PROC_SEED: OnceLock<u64> = OnceLock::new();

type Sink = Box<dyn Fn(&[Span]) + Send + Sync>;
static SINK: OnceLock<Sink> = OnceLock::new();

/// The process-global span ring.
pub fn ring() -> &'static SpanRing {
    RING.get_or_init(SpanRing::new)
}

/// Turns tracing on with a retention threshold (`Some`) or off
/// (`None`). With tracing on, a completed request tree is retained —
/// pushed to the ring and handed to the slow-log sink — only when its
/// root took at least `threshold` (zero retains every sampled
/// request) or was force-retained as degraded.
pub fn configure(threshold: Option<Duration>) {
    match threshold {
        Some(t) => {
            THRESHOLD_NS.store(
                t.as_nanos().min(u128::from(u64::MAX)) as u64,
                Ordering::Relaxed,
            );
            ENABLED.store(true, Ordering::Relaxed);
        }
        None => ENABLED.store(false, Ordering::Relaxed),
    }
}

/// Whether tracing is on ([`configure`]). One relaxed load: this is
/// the whole cost of the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The current retention threshold in nanoseconds.
pub fn threshold_ns() -> u64 {
    THRESHOLD_NS.load(Ordering::Relaxed)
}

/// Names this process in dumped spans (`"router"`, `"serve"`, …).
/// First caller wins; the default is `"serve"`.
pub fn set_node(name: &str) {
    let _ = NODE.set(name.to_string());
}

/// This process's node name for `DumpTraces` answers.
pub fn node() -> &'static str {
    NODE.get_or_init(|| "serve".to_string())
}

/// Registers the slow-log sink, called with each retained tree (root
/// span first). First caller wins.
pub fn set_slow_sink(sink: impl Fn(&[Span]) + Send + Sync + 'static) {
    let _ = SINK.set(Box::new(sink));
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn proc_seed() -> u64 {
    *PROC_SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.subsec_nanos() as u64 ^ d.as_secs());
        splitmix64((u64::from(std::process::id()) << 32) ^ nanos)
    })
}

/// Mints a fresh nonzero 64-bit trace id.
pub fn mint() -> u64 {
    let n = MINTED.fetch_add(1, Ordering::Relaxed);
    splitmix64(proc_seed() ^ n) | 1
}

/// A fresh span id: 16 per-process tag bits over a process counter.
fn next_span_id() -> u64 {
    let tag = (proc_seed() >> 48) | 1;
    (tag << 48) | (SPAN_SEQ.fetch_add(1, Ordering::Relaxed) & ((1 << 48) - 1))
}

/// Wall-clock "now" in microseconds since the Unix epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_micros().min(u128::from(u64::MAX)) as u64)
}

thread_local! {
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
    /// Whether a RootSpan on this thread owns the buffer (children
    /// land there for the tail-sampling decision instead of the ring).
    static BUFFERING: Cell<bool> = const { Cell::new(false) };
    static BUF: RefCell<Vec<Span>> = const { RefCell::new(Vec::new()) };
}

/// The calling thread's current trace context ([`TraceCtx::NONE`]
/// when tracing is off or nothing is in scope).
#[inline]
pub fn current() -> TraceCtx {
    if !enabled() {
        return TraceCtx::NONE;
    }
    CURRENT.with(Cell::get)
}

/// Installs `ctx` as the thread's current context until the guard
/// drops — how the engine writer thread adopts the context a request
/// thread attached to a queued batch.
pub fn scoped(ctx: TraceCtx) -> CtxScope {
    CtxScope {
        prev: CURRENT.with(|c| c.replace(ctx)),
    }
}

/// Guard from [`scoped`]; restores the previous context on drop.
pub struct CtxScope {
    prev: TraceCtx,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Emits one already-measured span under `ctx` (used for stages whose
/// duration was measured before a context existed, like router frame
/// decode, or across threads, like ingest queue wait). Returns the
/// span id, 0 when dropped (tracing off or `ctx` unsampled).
pub fn record(ctx: TraceCtx, stage: Stage, arg: u64, start_us: u64, dur_ns: u64) -> u64 {
    if !enabled() || !ctx.sampled() {
        return 0;
    }
    let span = Span {
        trace_id: ctx.trace_id,
        span_id: next_span_id(),
        parent_span: ctx.parent_span,
        stage: stage.code(),
        arg,
        start_us,
        dur_ns,
    };
    if BUFFERING.with(Cell::get) {
        BUF.with(|b| b.borrow_mut().push(span));
    } else {
        ring().record(span);
    }
    span.span_id
}

struct Live {
    ctx: TraceCtx,
    span_id: u64,
    stage: Stage,
    arg: u64,
    start_us: u64,
    started: Instant,
    prev: TraceCtx,
}

impl Live {
    fn open(ctx: TraceCtx, stage: Stage, arg: u64) -> Live {
        let span_id = next_span_id();
        let prev = CURRENT.with(|c| {
            c.replace(TraceCtx {
                trace_id: ctx.trace_id,
                parent_span: span_id,
            })
        });
        Live {
            ctx,
            span_id,
            stage,
            arg,
            start_us: now_us(),
            started: Instant::now(),
            prev,
        }
    }

    fn close(&self) -> Span {
        CURRENT.with(|c| c.set(self.prev));
        Span {
            trace_id: self.ctx.trace_id,
            span_id: self.span_id,
            parent_span: self.ctx.parent_span,
            stage: self.stage.code(),
            arg: self.arg,
            start_us: self.start_us,
            dur_ns: self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
        }
    }
}

/// An open stage span on the current thread; records on drop. Child
/// spans opened while this guard lives parent under it automatically
/// (the guard swaps itself into the thread's current context).
#[must_use = "a StageSpan measures the scope holding the guard"]
pub struct StageSpan {
    live: Option<Live>,
}

impl StageSpan {
    /// Opens a stage span under the thread's current context; inert
    /// when tracing is off or the context is unsampled.
    pub fn begin(stage: Stage) -> StageSpan {
        StageSpan::begin_with(stage, 0)
    }

    /// [`StageSpan::begin`] with a stage argument (shard index, batch
    /// size, epoch).
    pub fn begin_with(stage: Stage, arg: u64) -> StageSpan {
        let ctx = current();
        StageSpan {
            live: ctx.sampled().then(|| Live::open(ctx, stage, arg)),
        }
    }

    /// Context for work this span fathers (its own id as the parent),
    /// e.g. to forward over the wire. Falls back to the thread context
    /// when inert.
    pub fn ctx(&self) -> TraceCtx {
        match &self.live {
            Some(l) => TraceCtx {
                trace_id: l.ctx.trace_id,
                parent_span: l.span_id,
            },
            None => current(),
        }
    }
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let span = live.close();
            if BUFFERING.with(Cell::get) {
                BUF.with(|b| b.borrow_mut().push(span));
            } else {
                ring().record(span);
            }
        }
    }
}

/// The root span of a request on this process: buffers its subtree
/// thread-locally and makes the tail-sampling call when dropped —
/// retain (ring + slow-log sink) if the request ran at least the
/// configured threshold or was [`RootSpan::force_retain`]ed, discard
/// otherwise. Nested "roots" (a second `begin` while one is open on
/// the thread) degrade to plain stage spans; the outermost owns the
/// decision.
#[must_use = "a RootSpan measures the request holding the guard"]
pub struct RootSpan {
    live: Option<Live>,
    owns_buffer: bool,
    force: Cell<bool>,
}

impl RootSpan {
    /// Opens the request root under the wire-supplied context; inert
    /// when tracing is off or `ctx` is unsampled.
    pub fn begin(ctx: TraceCtx, stage: Stage) -> RootSpan {
        if !enabled() || !ctx.sampled() {
            return RootSpan {
                live: None,
                owns_buffer: false,
                force: Cell::new(false),
            };
        }
        let owns_buffer = BUFFERING.with(|b| !b.replace(true));
        RootSpan {
            live: Some(Live::open(ctx, stage, 0)),
            owns_buffer,
            force: Cell::new(false),
        }
    }

    /// Retain this tree regardless of the threshold (degraded answer,
    /// relayed failure — anything worth explaining even when fast).
    pub fn force_retain(&self) {
        self.force.set(true);
    }

    /// Context for children of this root (see [`StageSpan::ctx`]).
    pub fn ctx(&self) -> TraceCtx {
        match &self.live {
            Some(l) => TraceCtx {
                trace_id: l.ctx.trace_id,
                parent_span: l.span_id,
            },
            None => current(),
        }
    }

    /// Whether this guard is live (sampling this request).
    pub fn sampled(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let root = live.close();
        if !self.owns_buffer {
            // Nested under an outer root on this thread: ride along in
            // its buffer and let it decide.
            BUF.with(|b| b.borrow_mut().push(root));
            return;
        }
        BUFFERING.with(|b| b.set(false));
        let mut tree = BUF.with(|b| std::mem::take(&mut *b.borrow_mut()));
        let keep = self.force.get() || root.dur_ns >= threshold_ns();
        if !keep {
            return;
        }
        tree.insert(0, root);
        let r = ring();
        for span in &tree {
            r.record(*span);
        }
        if let Some(sink) = SINK.get() {
            sink(&tree);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracing state is process-global; tests that flip it serialize
    /// here so parallel test threads don't observe each other's mode.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_tracing<R>(threshold: Option<Duration>, f: impl FnOnce() -> R) -> R {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        configure(threshold.or(Some(Duration::ZERO)));
        if let Some(t) = threshold {
            configure(Some(t));
        }
        let out = f();
        configure(None);
        out
    }

    fn my_spans(trace_id: u64) -> Vec<Span> {
        ring()
            .snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    #[test]
    fn stage_names_are_unique_and_roundtrip() {
        let mut names = STAGE_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGES);
        for code in 1..=STAGES as u16 {
            let stage = Stage::from_code(code).unwrap();
            assert_eq!(stage.code(), code);
            assert_eq!(stage.name(), STAGE_NAMES[code as usize - 1]);
        }
        assert_eq!(Stage::from_code(0), None);
        assert_eq!(Stage::from_code(11), None);
        assert_eq!(stage_name(99), "unknown_stage");
    }

    #[test]
    fn mint_is_nonzero_and_distinct() {
        let a = mint();
        let b = mint();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        configure(None);
        assert!(!enabled());
        assert_eq!(current(), TraceCtx::NONE);
        let before = ring().recorded();
        let root = RootSpan::begin(TraceCtx::root(mint()), Stage::ShardRequest);
        assert!(!root.sampled());
        let _child = StageSpan::begin(Stage::BatchApply);
        drop(_child);
        drop(root);
        assert_eq!(record(TraceCtx::root(7), Stage::QueueWait, 0, 0, 1), 0);
        assert_eq!(ring().recorded(), before);
    }

    #[test]
    fn root_buffers_children_and_retains_past_threshold() {
        with_tracing(Some(Duration::ZERO), || {
            let id = mint();
            let root = RootSpan::begin(TraceCtx::root(id), Stage::RouterRequest);
            {
                let fan = StageSpan::begin_with(Stage::ShardFanout, 3);
                // Children parent under the enclosing guard via TLS.
                assert_eq!(fan.ctx().trace_id, id);
                let inner = StageSpan::begin(Stage::BreakerGate);
                assert_eq!(inner.ctx().parent_span, current().parent_span);
            }
            let root_id = root.ctx().parent_span;
            drop(root);
            let spans = my_spans(id);
            assert_eq!(spans.len(), 3, "{spans:?}");
            // Root first, then children in completion order.
            assert_eq!(spans[0].stage, Stage::RouterRequest.code());
            assert_eq!(spans[0].parent_span, 0);
            let gate = spans.iter().find(|s| s.stage == Stage::BreakerGate.code());
            let fan = spans.iter().find(|s| s.stage == Stage::ShardFanout.code());
            let (gate, fan) = (gate.unwrap(), fan.unwrap());
            assert_eq!(fan.parent_span, root_id);
            assert_eq!(gate.parent_span, fan.span_id);
            assert_eq!(fan.arg, 3);
        });
    }

    #[test]
    fn fast_roots_are_discarded_and_forced_ones_kept() {
        with_tracing(Some(Duration::from_secs(3600)), || {
            let fast = mint();
            {
                let root = RootSpan::begin(TraceCtx::root(fast), Stage::ShardRequest);
                let _child = StageSpan::begin(Stage::BatchApply);
                assert!(root.sampled());
            }
            assert!(my_spans(fast).is_empty(), "fast tree must be dropped");

            let degraded = mint();
            {
                let root = RootSpan::begin(TraceCtx::root(degraded), Stage::ShardRequest);
                root.force_retain();
            }
            assert_eq!(my_spans(degraded).len(), 1, "degraded tree must be kept");
        });
    }

    #[test]
    fn cross_thread_scope_records_directly_to_the_ring() {
        with_tracing(Some(Duration::from_secs(3600)), || {
            let id = mint();
            let ctx = TraceCtx {
                trace_id: id,
                parent_span: 42,
            };
            let handle = std::thread::spawn(move || {
                let _scope = scoped(ctx);
                // No root on this thread: straight to the ring even
                // though the threshold is huge (writer-side stages are
                // not tail-sampled).
                let _s = StageSpan::begin_with(Stage::BatchApply, 17);
            });
            handle.join().unwrap();
            let spans = my_spans(id);
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].parent_span, 42);
            assert_eq!(spans[0].stage, Stage::BatchApply.code());
            assert_eq!(spans[0].arg, 17);
        });
    }

    #[test]
    fn record_emits_premeasured_spans() {
        with_tracing(Some(Duration::ZERO), || {
            let id = mint();
            let ctx = TraceCtx {
                trace_id: id,
                parent_span: 9,
            };
            let span_id = record(ctx, Stage::QueueWait, 128, 1_000, 2_000);
            assert_ne!(span_id, 0);
            let spans = my_spans(id);
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].span_id, span_id);
            assert_eq!(spans[0].stage, Stage::QueueWait.code());
            assert_eq!(spans[0].arg, 128);
            assert_eq!(spans[0].start_us, 1_000);
            assert_eq!(spans[0].dur_ns, 2_000);
        });
    }

    #[test]
    fn slow_sink_sees_retained_trees_root_first() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEEN_ROOTS: AtomicU64 = AtomicU64::new(0);
        with_tracing(Some(Duration::ZERO), || {
            // OnceLock: only the first test to set the sink wins, but
            // the counter is only bumped for roots recorded under this
            // trace's stage, so the assertion stays local.
            set_slow_sink(|tree| {
                if tree.first().is_some_and(|r| r.parent_span == 0) {
                    SEEN_ROOTS.fetch_add(1, Ordering::Relaxed);
                }
            });
            let before = SEEN_ROOTS.load(Ordering::Relaxed);
            {
                let _root = RootSpan::begin(TraceCtx::root(mint()), Stage::RouterRequest);
            }
            assert!(SEEN_ROOTS.load(Ordering::Relaxed) > before);
        });
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let ring = SpanRing::new();
        for i in 0..(CAPACITY as u64 + 10) {
            ring.record(Span {
                trace_id: 1,
                span_id: i,
                ..Span::default()
            });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), CAPACITY);
        assert_eq!(snap.first().unwrap().span_id, 10);
        assert_eq!(snap.last().unwrap().span_id, CAPACITY as u64 + 9);
    }

    #[test]
    fn concurrent_ring_writers_never_tear() {
        let ring = std::sync::Arc::new(SpanRing::new());
        let threads = 4;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = std::sync::Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..per {
                        // Fields encode (t, i) redundantly so a torn
                        // mix of two writers is detectable.
                        ring.record(Span {
                            trace_id: t,
                            span_id: i,
                            parent_span: t * 1_000_000 + i,
                            stage: 1,
                            arg: t ^ i,
                            start_us: t,
                            dur_ns: i,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), CAPACITY);
        for s in snap {
            assert_eq!(s.parent_span, s.trace_id * 1_000_000 + s.span_id);
            assert_eq!(s.arg, s.trace_id ^ s.span_id);
            assert_eq!(s.start_us, s.trace_id);
            assert_eq!(s.dur_ns, s.span_id);
        }
    }
}
