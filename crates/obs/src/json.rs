//! Minimal JSON reader/writer for trace round-trips.
//!
//! The build environment is offline (no serde), and traces only need a
//! small JSON subset: objects, arrays, strings, and unsigned integers.
//! The parser is a strict recursive-descent reader of exactly that subset
//! (plus `true`/`false`/`null` for forward compatibility); the writer
//! escapes the characters that can occur in span names.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (integers only — trace files carry no floats).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all trace quantities are counts or nanos).
    Int(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered by key for deterministic re-serialization).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as an integer.
    pub fn as_int(&self) -> Option<u64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value as an object map.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Escapes a string into a JSON string literal (appended to `out`).
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are utf8");
        text.parse::<u64>()
            .map(Value::Int)
            .map_err(|_| format!("integer out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf8 in string")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": 7}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_int), Some(7));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr[0].as_int(), Some(1));
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
    }

    #[test]
    fn parses_empty_containers_and_literals() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("null").unwrap(), Value::Null);
    }

    #[test]
    fn escape_roundtrip() {
        let original = "a\"b\\c\nd\te[0]";
        let mut lit = String::new();
        write_escaped(&mut lit, original);
        let back = parse(&lit).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("99999999999999999999999999").is_err());
    }

    #[test]
    fn control_characters_escape() {
        let mut lit = String::new();
        write_escaped(&mut lit, "\u{1}");
        assert_eq!(lit, "\"\\u0001\"");
        assert_eq!(parse(&lit).unwrap().as_str(), Some("\u{1}"));
    }
}
