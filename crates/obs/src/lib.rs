//! Phase-level observability runtime for the Afforest reproduction.
//!
//! The paper's argument is phase-structured — neighbor rounds, the
//! giant-component sampling step, the Theorem-3 skip pass, compress
//! sweeps — so this crate records exactly that structure: scoped
//! [`span!`]s per phase, sharded atomic [`Counter`]s for the work inside
//! them, and per-phase duration [`Histogram`]s, assembled into a
//! machine-readable [`Trace`] (JSON via [`Trace::to_json`], CSV via
//! [`Trace::to_csv`]).
//!
//! # Zero cost when off
//!
//! Without the `enabled` cargo feature (the default), [`COMPILED`] is
//! `false`: [`count`] is an empty inline function, [`span!`] const-folds
//! to an empty guard without ever evaluating its format arguments, and
//! [`Session::end`] returns an empty trace. No atomics, no branches, no
//! allocation remain in instrumented hot loops. Downstream crates forward
//! the feature as `obs`, so `--features obs` lights the whole stack up.
//!
//! # Always-on service telemetry
//!
//! The session tracer is deliberately off by default — correct for
//! benchmarking, wrong for operating a long-running server. The
//! [`registry`] module (process-global named counters/gauges/histograms
//! with Prometheus text exposition) and the [`flight`] module (a
//! lock-free ring of recent structured events) are the complementary
//! layer: compiled unconditionally, no feature gate, cheap enough to
//! leave on forever. See `DESIGN.md` §12 for the separation argument.
//!
//! # Usage
//!
//! ```
//! use afforest_obs::{span, Counter, Session};
//!
//! let session = Session::begin();
//! {
//!     let _s = span!("link[{round}]", round = 0);
//!     afforest_obs::count(Counter::EdgesLinked, 17);
//! }
//! let trace = session.end();
//! # if afforest_obs::COMPILED {
//! assert_eq!(trace.counter("edges_linked"), 17);
//! # }
//! ```
//!
//! Only one session records at a time: [`Session::begin`] blocks until
//! any other live session ends (counters and span state are
//! process-global). Spans must be opened and closed on the thread driving
//! the algorithm — per-edge work inside rayon workers reports through
//! counters, not spans.

#![forbid(unsafe_code)]

pub mod flight;
pub mod json;
#[cfg(feature = "enabled")]
mod recorder;
pub mod registry;
pub mod reqtrace;
mod trace;

pub use trace::{base_of, Histogram, PhaseTotal, SpanRecord, Trace};

/// Whether the recorder is compiled in (`enabled` cargo feature).
///
/// `span!` checks this first so the disabled path const-folds away.
pub const COMPILED: bool = cfg!(feature = "enabled");

/// Work counters incremented from inside instrumented phases.
///
/// Counter totals are per-session; each closed span also records the
/// delta observed while it was open (nested spans include their
/// children's work).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Successful `link` merges (edges that united two trees).
    EdgesLinked,
    /// Total `link` invocations, successful or not.
    LinkCalls,
    /// CAS attempts that lost a race inside `link` and retried.
    CasRetries,
    /// Parent-pointer hops taken by `find_root` walks.
    FindRootHops,
    /// Parent stores performed by compress sweeps.
    CompressStores,
    /// Edges skipped by the Theorem-3 giant-component test.
    EdgesSkipped,
    /// Vertices whose whole neighbor list was skipped.
    VerticesSkipped,
    /// Edges applied to the incremental structure by the serving
    /// write path (`afforest-serve`).
    EdgesIngested,
    /// Epoch snapshots published by the serving write path.
    EpochsPublished,
    /// Sum of ingest-queue depths sampled when each batch is drained;
    /// divide by `epochs_published` for the mean depth per batch.
    QueueDepth,
    /// Edge-batch records appended to the write-ahead log.
    WalAppends,
    /// Bytes written to the write-ahead log (records, not the header).
    WalBytes,
    /// WAL recoveries performed (snapshot load + log replay).
    Recoveries,
    /// Write requests rejected by the bounded ingest queue's admission
    /// policy (`Response::Overloaded`).
    RequestsShed,
    /// Client-side retries after a shed or timed-out request
    /// (`afforest-serve` loadgen backoff loop).
    Retries,
}

impl Counter {
    /// Number of counters (sizes the recorder's stripe rows).
    pub const COUNT: usize = 15;

    /// Every counter, in declaration (= export) order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::EdgesLinked,
        Counter::LinkCalls,
        Counter::CasRetries,
        Counter::FindRootHops,
        Counter::CompressStores,
        Counter::EdgesSkipped,
        Counter::VerticesSkipped,
        Counter::EdgesIngested,
        Counter::EpochsPublished,
        Counter::QueueDepth,
        Counter::WalAppends,
        Counter::WalBytes,
        Counter::Recoveries,
        Counter::RequestsShed,
        Counter::Retries,
    ];

    /// The snake_case name used in traces and CSV headers.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::EdgesLinked => "edges_linked",
            Counter::LinkCalls => "link_calls",
            Counter::CasRetries => "cas_retries",
            Counter::FindRootHops => "find_root_hops",
            Counter::CompressStores => "compress_stores",
            Counter::EdgesSkipped => "edges_skipped",
            Counter::VerticesSkipped => "vertices_skipped",
            Counter::EdgesIngested => "edges_ingested",
            Counter::EpochsPublished => "epochs_published",
            Counter::QueueDepth => "queue_depth",
            Counter::WalAppends => "wal_appends",
            Counter::WalBytes => "wal_bytes",
            Counter::Recoveries => "recoveries",
            Counter::RequestsShed => "requests_shed",
            Counter::Retries => "retries",
        }
    }
}

/// Whether a session is currently recording.
///
/// `false` whenever the recorder is compiled out; cheap enough to call
/// per phase but not meant for per-edge checks (use [`count`], which
/// performs the check itself).
#[inline(always)]
pub fn active() -> bool {
    #[cfg(feature = "enabled")]
    {
        recorder::is_active()
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Adds `n` to `counter` if a session is recording; a no-op (compiled to
/// nothing) otherwise.
#[inline(always)]
pub fn count(counter: Counter, n: u64) {
    #[cfg(feature = "enabled")]
    if recorder::is_active() && n != 0 {
        recorder::add(counter, n);
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = (counter, n);
    }
}

/// A recording session; ends (and yields its [`Trace`]) on [`Session::end`].
///
/// Holds a process-global lock so concurrent sessions serialize rather
/// than interleave their counters.
#[must_use = "a Session records nothing once dropped; call end() to collect the trace"]
pub struct Session {
    #[cfg(feature = "enabled")]
    gate: std::sync::MutexGuard<'static, ()>,
}

impl Session {
    /// Starts recording, blocking until any other live session ends.
    pub fn begin() -> Session {
        Session {
            #[cfg(feature = "enabled")]
            gate: recorder::begin(),
        }
    }

    /// Stops recording and returns everything recorded.
    ///
    /// Empty ([`Trace::is_empty`]) when the recorder is compiled out.
    pub fn end(self) -> Trace {
        #[cfg(feature = "enabled")]
        {
            recorder::finish(self.gate)
        }
        #[cfg(not(feature = "enabled"))]
        {
            Trace::default()
        }
    }
}

/// An open phase span; the phase ends when the guard drops.
///
/// Construct via the [`span!`] macro, which skips the name formatting
/// entirely when recording is off.
#[must_use = "a span measures the scope holding the guard; bind it with `let _span = ...`"]
pub struct SpanGuard {
    // Held only for its Drop (which closes the span and records it).
    #[cfg(feature = "enabled")]
    #[allow(dead_code)]
    inner: Option<recorder::ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span with an already-formatted name (prefer [`span!`]).
    pub fn enter_named(name: String) -> SpanGuard {
        #[cfg(feature = "enabled")]
        {
            SpanGuard {
                inner: recorder::ActiveSpan::open(name),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
            SpanGuard {}
        }
    }

    /// A guard that records nothing (the disabled arm of [`span!`]).
    #[inline(always)]
    pub fn inactive() -> SpanGuard {
        SpanGuard {
            #[cfg(feature = "enabled")]
            inner: None,
        }
    }
}

/// Opens a phase span named by a `format!` string, e.g.
/// `span!("link[{i}]")`. Returns a [`SpanGuard`]; the span closes when
/// the guard drops.
///
/// When the recorder is compiled out (`COMPILED == false`) the whole
/// expression const-folds to [`SpanGuard::inactive`] and the format
/// arguments are never evaluated.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::COMPILED && $crate::active() {
            $crate::SpanGuard::enter_named(::std::format!($($arg)*))
        } else {
            $crate::SpanGuard::inactive()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_ordered() {
        let names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), Counter::COUNT);
        assert_eq!(names[0], "edges_linked");
    }

    #[test]
    fn span_macro_compiles_in_both_modes() {
        // Outside a session the guard must be inert in both cfg modes.
        let _g = span!("test[{}]", 3);
        count(Counter::LinkCalls, 1);
        assert!(!active() || COMPILED);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_session_is_empty() {
        let s = Session::begin();
        let _g = span!("phase[{}]", 0);
        count(Counter::EdgesLinked, 5);
        let trace = s.end();
        assert!(trace.is_empty());
        assert_eq!(trace.total_ns, 0);
    }

    #[cfg(feature = "enabled")]
    mod recording {
        use super::super::*;

        #[test]
        fn session_records_spans_counters_histograms() {
            let s = Session::begin();
            for i in 0..3 {
                let _g = span!("link[{i}]");
                count(Counter::EdgesLinked, 10);
                count(Counter::CasRetries, i);
            }
            {
                let _g = span!("compress[0]");
                count(Counter::CompressStores, 7);
            }
            let trace = s.end();

            assert_eq!(trace.spans.len(), 4);
            assert_eq!(trace.counter("edges_linked"), 30);
            assert_eq!(trace.counter("cas_retries"), 3);
            assert_eq!(trace.counter("compress_stores"), 7);
            assert_eq!(trace.counter("edges_skipped"), 0);

            // Per-span deltas, not totals.
            assert_eq!(trace.spans[1].counter("edges_linked"), 10);
            assert_eq!(trace.spans[1].counter("cas_retries"), 1);
            assert_eq!(trace.spans[3].counter("compress_stores"), 7);

            // One histogram per phase family.
            let link = trace.histograms.iter().find(|h| h.name == "link").unwrap();
            assert_eq!(link.count, 3);
            assert!(trace.histograms.iter().any(|h| h.name == "compress"));

            let totals = trace.phase_totals();
            assert_eq!(totals[0].name, "link");
            assert_eq!(totals[0].count, 3);
        }

        #[test]
        fn nested_spans_report_depth() {
            let s = Session::begin();
            {
                let _outer = span!("outer");
                let _inner = span!("inner[{}]", 0);
            }
            let trace = s.end();
            // Inner closes first.
            assert_eq!(trace.spans[0].name, "inner[0]");
            assert_eq!(trace.spans[0].depth, 1);
            assert_eq!(trace.spans[1].name, "outer");
            assert_eq!(trace.spans[1].depth, 0);
            assert!(trace.spans[1].dur_ns >= trace.spans[0].dur_ns);
        }

        #[test]
        fn counting_outside_session_is_dropped() {
            count(Counter::EdgesLinked, 999);
            let s = Session::begin();
            count(Counter::EdgesLinked, 1);
            let trace = s.end();
            assert_eq!(trace.counter("edges_linked"), 1);
            // And after the session ends, counts go nowhere again.
            count(Counter::EdgesLinked, 999);
        }

        #[test]
        fn spans_outside_session_record_nothing() {
            let g = span!("orphan");
            drop(g);
            let s = Session::begin();
            let trace = s.end();
            assert!(trace.spans.is_empty());
        }

        #[test]
        fn parallel_counts_from_rayon_workers_sum() {
            use rayon::prelude::*;
            let s = Session::begin();
            {
                let _g = span!("parallel-phase");
                // Large enough that the vendored shim actually fans out to
                // worker threads (its sequential cutoff is 256 items).
                (0u32..10_000)
                    .into_par_iter()
                    .for_each(|_| count(Counter::FindRootHops, 1));
            }
            let trace = s.end();
            assert_eq!(trace.counter("find_root_hops"), 10_000);
            assert_eq!(trace.spans[0].counter("find_root_hops"), 10_000);
        }

        #[test]
        fn sessions_serialize_not_interleave() {
            let h = std::thread::spawn(|| {
                let s = Session::begin();
                count(Counter::EdgesLinked, 2);
                s.end().counter("edges_linked")
            });
            let s = Session::begin();
            count(Counter::EdgesLinked, 5);
            let mine = s.end().counter("edges_linked");
            let theirs = h.join().unwrap();
            assert_eq!(mine, 5);
            assert_eq!(theirs, 2);
        }

        #[test]
        fn trace_json_roundtrip_from_live_session() {
            let s = Session::begin();
            {
                let _g = span!("phase[{}]", 1);
                count(Counter::EdgesSkipped, 12);
            }
            let trace = s.end();
            let back = Trace::from_json(&trace.to_json()).unwrap();
            assert_eq!(trace, back);
        }
    }
}
