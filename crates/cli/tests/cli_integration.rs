//! End-to-end CLI tests: full `dispatch` invocations chained through the
//! filesystem, exactly as a shell user would drive them.

use afforest_cli::dispatch;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("afforest-cli-e2e-{}-{}", std::process::id(), name));
    p.to_string_lossy().into_owned()
}

#[test]
fn generate_stats_cc_pipeline() {
    let graph_path = tmp("pipeline.el");
    let labels_path = tmp("pipeline-labels.txt");

    let out = dispatch(&argv(&[
        "generate",
        "urand",
        "--out",
        &graph_path,
        "--n",
        "2000",
        "--edge-factor",
        "8",
        "--seed",
        "3",
    ]))
    .unwrap();
    assert!(out.contains("generated urand: 2000 vertices"));

    let stats = dispatch(&argv(&["stats", &graph_path])).unwrap();
    assert!(stats.contains("vertices:            2000"));

    let cc = dispatch(&argv(&[
        "cc",
        &graph_path,
        "--algorithm",
        "afforest",
        "--labels-out",
        &labels_path,
    ]))
    .unwrap();
    assert!(cc.contains("components:  1"));

    let labels = std::fs::read_to_string(&labels_path).unwrap();
    assert_eq!(labels.lines().count(), 2000);

    std::fs::remove_file(&graph_path).unwrap();
    std::fs::remove_file(&labels_path).unwrap();
}

#[test]
fn generate_convert_cc_consistency_across_formats() {
    let el = tmp("conv.el");
    let gr = tmp("conv.gr");
    let metis = tmp("conv.graph");
    let acsr = tmp("conv.acsr");

    dispatch(&argv(&[
        "generate",
        "components",
        "--out",
        &el,
        "--n",
        "3000",
        "--edge-factor",
        "4",
        "--fraction",
        "0.05",
        "--seed",
        "8",
    ]))
    .unwrap();
    dispatch(&argv(&["convert", &el, &gr])).unwrap();
    dispatch(&argv(&["convert", &gr, &metis])).unwrap();
    dispatch(&argv(&["convert", &metis, &acsr])).unwrap();

    // Component counts must agree across all four representations.
    let count_of = |path: &str| -> String {
        let out = dispatch(&argv(&["cc", path, "--algorithm", "union-find"])).unwrap();
        out.lines()
            .find(|l| l.starts_with("components:"))
            .unwrap()
            .to_string()
    };
    let reference = count_of(&el);
    for p in [&gr, &metis, &acsr] {
        assert_eq!(count_of(p), reference);
    }

    for p in [el, gr, metis, acsr] {
        std::fs::remove_file(p).unwrap();
    }
}

#[test]
fn bench_cross_validates_all_algorithms() {
    let graph_path = tmp("bench.el");
    dispatch(&argv(&[
        "generate",
        "kron",
        "--out",
        &graph_path,
        "--n",
        "1024",
        "--edge-factor",
        "8",
        "--seed",
        "4",
    ]))
    .unwrap();
    // `bench` errors out if any algorithm disagrees with the oracle.
    let out = dispatch(&argv(&["bench", &graph_path, "--trials", "1"])).unwrap();
    std::fs::remove_file(&graph_path).unwrap();
    assert!(out.contains("afforest"));
    assert!(out.contains("rem"));
    // All rows report the same component count.
    let counts: Vec<&str> = out
        .lines()
        .skip(2)
        .filter_map(|l| l.split_whitespace().last())
        .collect();
    assert!(!counts.is_empty());
    assert!(counts.iter().all(|&c| c == counts[0]));
}

#[test]
fn errors_are_user_legible() {
    // Missing file.
    let err = dispatch(&argv(&["stats", "/nope/missing.el"])).unwrap_err();
    assert!(err.contains("missing.el"));
    // Bad extension.
    let err = dispatch(&argv(&["stats", "/tmp/whatever.xlsx"])).unwrap_err();
    assert!(err.contains("unrecognized graph extension"));
    // Unknown algorithm (needs an existing file to get that far).
    let p = tmp("err.el");
    dispatch(&argv(&["generate", "urand", "--out", &p, "--n", "64"])).unwrap();
    let err = dispatch(&argv(&["cc", &p, "--algorithm", "magic"])).unwrap_err();
    std::fs::remove_file(&p).unwrap();
    assert!(err.contains("unknown algorithm 'magic'"));
}

#[test]
fn geometric_and_ws_families_through_cli() {
    for (family, extra) in [
        ("geometric", vec!["--radius", "0.08"]),
        ("ws", vec!["--k", "6", "--beta", "0.2"]),
        ("ba", vec![]),
        ("road", vec!["--keep", "0.9"]),
    ] {
        let p = tmp(&format!("fam-{family}.el"));
        let mut args = vec!["generate", family, "--out", &p, "--n", "512", "--seed", "2"];
        args.extend(extra.iter().copied());
        dispatch(&argv(&args)).unwrap();
        let out = dispatch(&argv(&["cc", &p])).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("components:"), "{family}");
    }
}
