//! Minimal argument parsing: positionals plus `--key value` flags.

use std::collections::BTreeMap;

/// Parsed positionals and flags.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl ParsedArgs {
    /// Parses `argv` (after the subcommand). Every `--key` must be
    /// followed by a value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag --{key} requires a value"))?;
                out.flags.insert(key.to_string(), value.clone());
            } else {
                out.positionals.push(arg.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional, or an error naming it.
    pub fn positional(&self, i: usize, name: &str) -> Result<&str, String> {
        self.positionals
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required argument <{name}>"))
    }

    /// Number of positionals supplied.
    pub fn num_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// A string flag.
    pub fn flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A parsed flag with default.
    pub fn flag_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Errors if any flag is not in the allowed set (typo guard).
    pub fn allow_flags(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown flag --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|f| format!("--{f}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<ParsedArgs, String> {
        ParsedArgs::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["input.el", "--trials", "5", "out.el"]).unwrap();
        assert_eq!(a.positional(0, "in").unwrap(), "input.el");
        assert_eq!(a.positional(1, "out").unwrap(), "out.el");
        assert_eq!(a.flag("trials"), Some("5"));
        assert_eq!(a.num_positionals(), 2);
    }

    #[test]
    fn missing_positional() {
        let a = parse(&[]).unwrap();
        assert!(a.positional(0, "graph").unwrap_err().contains("<graph>"));
    }

    #[test]
    fn flag_needs_value() {
        assert!(parse(&["--seed"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn flag_parsed_with_default() {
        let a = parse(&["--n", "100"]).unwrap();
        assert_eq!(a.flag_parsed("n", 5usize).unwrap(), 100);
        assert_eq!(a.flag_parsed("seed", 7u64).unwrap(), 7);
        assert!(a.flag_parsed::<usize>("n", 0).is_ok());
        let b = parse(&["--n", "oops"]).unwrap();
        assert!(b.flag_parsed::<usize>("n", 0).is_err());
    }

    #[test]
    fn allow_flags_catches_typos() {
        let a = parse(&["--trails", "5"]).unwrap();
        let err = a.allow_flags(&["trials"]).unwrap_err();
        assert!(err.contains("--trails"));
        assert!(err.contains("--trials"));
    }
}
