//! Subcommand implementations. Every `run` takes the post-subcommand
//! `argv` and returns the text to print.

use crate::args::ParsedArgs;
use crate::load::{load_graph, save_graph};
use afforest_baselines::{
    bfs_cc, dobfs_cc, label_prop, parallel_uf, rem_cc, shiloach_vishkin, shiloach_vishkin_1982,
    sv_edgelist, union_by_rank_cc, union_by_size_cc, union_find::union_find_cc,
};
use afforest_core::{afforest, AfforestConfig, ComponentLabels};
use afforest_graph::{CsrGraph, Node};
use std::fmt::Write as _;
use std::time::Instant;

/// Algorithm name → runner, shared by `cc` and `bench`. Every runner
/// returns validated [`ComponentLabels`] — Afforest's output passes
/// through untouched, the baselines' raw label vectors are wrapped here.
pub fn algorithm_by_name(name: &str) -> Option<fn(&CsrGraph) -> ComponentLabels> {
    macro_rules! wrap {
        ($f:path) => {{
            fn w(g: &CsrGraph) -> ComponentLabels {
                ComponentLabels::from_vec($f(g))
            }
            w as fn(&CsrGraph) -> ComponentLabels
        }};
    }
    fn aff(g: &CsrGraph) -> ComponentLabels {
        afforest(g, &AfforestConfig::default())
    }
    fn aff_noskip(g: &CsrGraph) -> ComponentLabels {
        afforest(
            g,
            &AfforestConfig::builder()
                .skip(false)
                .build()
                .expect("valid config"),
        )
    }
    Some(match name {
        "afforest" => aff,
        "afforest-noskip" => aff_noskip,
        "sv" => wrap!(shiloach_vishkin),
        "sv-edgelist" => wrap!(sv_edgelist),
        "sv-1982" => wrap!(shiloach_vishkin_1982),
        "label-prop" => wrap!(label_prop),
        "bfs" => wrap!(bfs_cc),
        "dobfs" => wrap!(dobfs_cc),
        "parallel-uf" => wrap!(parallel_uf),
        "union-find" => wrap!(union_find_cc),
        "uf-rank" => wrap!(union_by_rank_cc),
        "uf-size" => wrap!(union_by_size_cc),
        "rem" => wrap!(rem_cc),
        _ => return None,
    })
}

/// Runs `alg` `trials` times; returns the labels of the last trial, the
/// best wall-clock seconds, and — when `traced` — the trace of the best
/// trial, for `--trace-out`.
fn timed_trials(
    g: &CsrGraph,
    alg: fn(&CsrGraph) -> ComponentLabels,
    trials: usize,
    traced: bool,
) -> (ComponentLabels, f64, Option<afforest_obs::Trace>) {
    let mut best = f64::INFINITY;
    let mut best_trace = None;
    let mut labels = None;
    for _ in 0..trials {
        let session = traced.then(afforest_obs::Session::begin);
        let t = Instant::now();
        let l = alg(g);
        let dt = t.elapsed().as_secs_f64();
        let trace = session.map(|s| s.end());
        if dt < best {
            best = dt;
            best_trace = trace;
        }
        labels = Some(l);
    }
    (labels.expect("trials > 0"), best, best_trace)
}

/// Writes a trace as JSON, reporting span count (and a hint when span
/// recording was compiled out).
fn write_trace(path: &str, json: &str, spans: usize, out: &mut String) -> Result<(), String> {
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    let _ = writeln!(out, "trace written to {path} ({spans} span(s))");
    if !afforest_obs::COMPILED {
        let _ = writeln!(
            out,
            "note: span recording compiled out; rebuild with `--features obs` for a populated trace"
        );
    }
    Ok(())
}

/// Nanoseconds, humanized (`850ns`, `4.2us`, `1.3ms`, `2.0s`). Shared
/// by the `top` dashboard and the `trace` tree renderer.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.1}s", ns as f64 / 1e9),
    }
}

/// One slow-log line (schema 1): the retained span tree of a single
/// traced request — root span first, as handed to the slow sink — as a
/// self-contained JSON object. `serve --slow-log` appends these to
/// `<wal-dir>/slowlog.jsonl`. Pure, so tests and offline tooling can
/// pin the format (see DESIGN.md §16 for the schema).
pub fn slowlog_line(tree: &[afforest_obs::reqtrace::Span]) -> String {
    use afforest_obs::reqtrace;
    let root = tree.first().copied().unwrap_or_default();
    let mut out = format!(
        "{{\"schema\":1,\"trace_id\":\"{:016x}\",\"node\":\"{}\",\"root\":\"{}\",\
         \"dur_ns\":{},\"spans\":[",
        root.trace_id,
        reqtrace::node(),
        reqtrace::stage_name(root.stage),
        root.dur_ns
    );
    for (i, s) in tree.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"parent\":{},\"stage\":\"{}\",\"arg\":{},\"start_us\":{},\"dur_ns\":{}}}",
            s.span_id,
            s.parent_span,
            s.stage_name(),
            s.arg,
            s.start_us,
            s.dur_ns
        );
    }
    out.push_str("]}");
    out
}

/// Every algorithm name, in `bench` display order.
pub const ALGORITHM_NAMES: [&str; 13] = [
    "afforest",
    "afforest-noskip",
    "sv",
    "sv-edgelist",
    "sv-1982",
    "label-prop",
    "bfs",
    "dobfs",
    "parallel-uf",
    "union-find",
    "uf-rank",
    "uf-size",
    "rem",
];

/// `afforest stats <graph>`.
pub mod stats {
    use super::*;
    use afforest_graph::{DegreeDistribution, GraphStats};

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&[])?;
        let path = args.positional(0, "graph")?;
        let g = load_graph(path)?;
        let s = GraphStats::compute(&g);
        let d = DegreeDistribution::compute(&g);

        let mut out = String::new();
        let _ = writeln!(out, "graph: {path}");
        let _ = writeln!(out, "vertices:            {}", s.num_vertices);
        let _ = writeln!(out, "edges:               {}", s.num_edges);
        let _ = writeln!(out, "avg degree:          {:.2}", s.avg_degree);
        let _ = writeln!(out, "max degree:          {}", s.max_degree);
        let _ = writeln!(out, "median degree:       {}", d.median);
        let _ = writeln!(out, "degree cv:           {:.3}", d.cv);
        let _ = writeln!(out, "isolated vertices:   {}", d.isolated());
        let _ = writeln!(out, "components:          {}", s.num_components);
        let _ = writeln!(
            out,
            "largest component:   {} ({:.2}%)",
            s.largest_component,
            100.0 * s.largest_component_fraction()
        );
        let _ = writeln!(out, "approx diameter:     {}", s.approx_diameter);
        Ok(out)
    }
}

/// `afforest cc <graph> [--algorithm NAME] [--labels-out PATH] [--trials N]
/// [--trace-out PATH]`.
pub mod cc {
    use super::*;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["algorithm", "labels-out", "trials", "trace-out"])?;
        let path = args.positional(0, "graph")?;
        let alg_name = args.flag("algorithm").unwrap_or("afforest");
        let trials: usize = args.flag_parsed("trials", 1)?;
        if trials == 0 {
            return Err("--trials must be positive".into());
        }
        let trace_out = args.flag("trace-out");
        let alg = algorithm_by_name(alg_name)
            .ok_or_else(|| format!("unknown algorithm '{alg_name}' (see `afforest help`)"))?;
        let g = load_graph(path)?;

        let (labels, best, trace) = timed_trials(&g, alg, trials, trace_out.is_some());

        let mut out = String::new();
        let _ = writeln!(out, "graph:       {path}");
        let _ = writeln!(out, "algorithm:   {alg_name}");
        let _ = writeln!(out, "components:  {}", labels.num_components());
        let _ = writeln!(
            out,
            "largest:     {} of {} vertices",
            labels.largest_component_size(),
            labels.len()
        );
        let _ = writeln!(
            out,
            "best time:   {:.3} ms ({} trial(s))",
            best * 1e3,
            trials
        );

        if let Some(dest) = args.flag("labels-out") {
            let mut text = String::with_capacity(labels.len() * 8);
            for v in 0..labels.len() as Node {
                let _ = writeln!(text, "{v} {}", labels.label(v));
            }
            std::fs::write(dest, text).map_err(|e| format!("{dest}: {e}"))?;
            let _ = writeln!(out, "labels written to {dest}");
        }
        if let Some(dest) = trace_out {
            let trace = trace.expect("traced run kept its trace");
            write_trace(dest, &trace.to_json(), trace.spans.len(), &mut out)?;
        }
        Ok(out)
    }
}

/// `afforest generate <family> --out PATH [--n N] [--edge-factor K] …`.
pub mod generate {
    use super::*;
    use afforest_graph::generators;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&[
            "out",
            "n",
            "edge-factor",
            "seed",
            "radius",
            "locality",
            "beta",
            "k",
            "fraction",
            "keep",
        ])?;
        let family = args.positional(0, "family")?;
        let out_path = args
            .flag("out")
            .ok_or_else(|| "generate requires --out PATH".to_string())?;
        let n: usize = args.flag_parsed("n", 1 << 14)?;
        let ef: usize = args.flag_parsed("edge-factor", 16)?;
        let seed: u64 = args.flag_parsed("seed", 42u64)?;
        if n == 0 {
            return Err("--n must be positive".into());
        }

        let g = match family {
            "urand" => generators::uniform_random(n, n * ef, seed),
            "kron" => {
                let scale = n.next_power_of_two().trailing_zeros();
                generators::rmat_scale(scale, ef, seed)
            }
            "road" => {
                let side = (n as f64).sqrt().ceil() as usize;
                let keep: f64 = args.flag_parsed("keep", 0.93)?;
                generators::road_network(side, side, keep, 0.02, seed)
            }
            "web" => {
                let locality: f64 = args.flag_parsed("locality", 0.75)?;
                generators::web_graph(n, ef.clamp(1, 64), locality, 16.0, seed)
            }
            "ba" => generators::barabasi_albert(n, ef.clamp(1, n.saturating_sub(1)), seed),
            "ws" => {
                let beta: f64 = args.flag_parsed("beta", 0.1)?;
                let k: usize = args.flag_parsed("k", 4)?;
                generators::watts_strogatz(n, k, beta, seed)
            }
            "geometric" => {
                let default_r = (ef as f64 / (n as f64 * std::f64::consts::PI)).sqrt();
                let radius: f64 = args.flag_parsed("radius", default_r)?;
                generators::random_geometric(n, radius, seed)
            }
            "components" => {
                let f: f64 = args.flag_parsed("fraction", 0.1)?;
                generators::urand_with_components(n, ef, f, seed)
            }
            other => {
                return Err(format!(
                    "unknown family '{other}' (urand|kron|road|web|ba|ws|geometric|components)"
                ))
            }
        };

        save_graph(&g, out_path)?;
        Ok(format!(
            "generated {family}: {} vertices, {} edges -> {out_path}\n",
            g.num_vertices(),
            g.num_edges()
        ))
    }
}

/// `afforest convert <in> <out>`.
pub mod convert {
    use super::*;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&[])?;
        let src = args.positional(0, "in")?;
        let dst = args.positional(1, "out")?;
        let g = load_graph(src)?;
        save_graph(&g, dst)?;
        Ok(format!(
            "converted {src} -> {dst} ({} vertices, {} edges)\n",
            g.num_vertices(),
            g.num_edges()
        ))
    }
}

/// `afforest bench <graph> [--trials N] [--trace-out PATH]`.
pub mod bench {
    use super::*;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["trials", "trace-out"])?;
        let path = args.positional(0, "graph")?;
        let trials: usize = args.flag_parsed("trials", 3)?;
        if trials == 0 {
            return Err("--trials must be positive".into());
        }
        let trace_out = args.flag("trace-out");
        let g = load_graph(path)?;

        let reference = algorithm_by_name("union-find").expect("oracle exists")(&g);

        let mut out = format!(
            "graph: {path} ({} vertices, {} edges)\n{:<18} {:>12}  {}\n",
            g.num_vertices(),
            g.num_edges(),
            "algorithm",
            "best-ms",
            "components"
        );
        // With `--trace-out` the file holds one JSON object mapping each
        // algorithm name to the trace of its best trial.
        let mut traces: Vec<String> = Vec::new();
        let mut total_spans = 0usize;
        for name in ALGORITHM_NAMES {
            let alg = algorithm_by_name(name).expect("registered");
            let (labels, best, trace) = timed_trials(&g, alg, trials, trace_out.is_some());
            if !labels.equivalent(&reference) {
                return Err(format!("{name} produced an inconsistent labeling"));
            }
            if let Some(trace) = trace {
                total_spans += trace.spans.len();
                traces.push(format!("\"{name}\": {}", trace.to_json()));
            }
            let _ = writeln!(
                out,
                "{:<18} {:>12.3}  {}",
                name,
                best * 1e3,
                labels.num_components()
            );
        }
        if let Some(dest) = trace_out {
            let json = format!("{{{}}}", traces.join(", "));
            write_trace(dest, &json, total_spans, &mut out)?;
        }
        Ok(out)
    }
}

/// `afforest serve <graph> [--addr HOST:PORT] [--workers N]
/// [--max-batch-edges N] [--max-batch-delay-ms MS] [--wal-dir PATH]
/// [--wal-snapshot-every N] [--max-queue-depth N]
/// [--max-total-queue-depth N] [--max-tenants N] [--read-deadline-ms MS]
/// [--faults SPEC] [--metrics-addr HOST:PORT] [--events-out PATH]
/// [--trace-out PATH]`.
///
/// Sharded modes add `--shards N` (in-process cluster) or
/// `--shard-addrs LIST --vertices N` (remote workers), with the
/// failure-domain knobs `--suspect-after N`, `--down-after N`,
/// `--probe-interval-ms MS` and `--probe-deadline-ms MS` (see
/// DESIGN.md §15).
pub mod serve {
    use super::*;
    use afforest_core::IncrementalCc;
    use afforest_serve::config::DEFAULT_MAX_TENANTS;
    use afforest_serve::wal;
    use afforest_serve::{
        events, BatchPolicy, FaultPlan, MetricsHttp, ServeConfig, ServeStats, Server,
    };
    use std::io::Write as _;
    use std::net::TcpListener;
    use std::path::{Path, PathBuf};
    use std::sync::Arc;
    use std::time::Duration;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&[
            "addr",
            "workers",
            "max-batch-edges",
            "max-batch-delay-ms",
            "wal-dir",
            "wal-snapshot-every",
            "max-queue-depth",
            "max-total-queue-depth",
            "max-tenants",
            "read-deadline-ms",
            "faults",
            "metrics-addr",
            "events-out",
            "trace-out",
            "slow-log",
            "shards",
            "shard-addrs",
            "vertices",
            "max-retries",
            "retry-backoff-us",
            "suspect-after",
            "down-after",
            "probe-interval-ms",
            "probe-deadline-ms",
        ])?;
        // Sharded modes: `--shards N` hosts N shard engines in-process
        // behind a router; `--shard-addrs LIST` routes to remote shard
        // workers (each itself a `serve --vertices N` process).
        let shards: usize = args.flag_parsed("shards", 0usize)?;
        if args.flag("shard-addrs").is_some() || shards > 0 {
            return run_sharded(&args, shards.max(1));
        }
        let slow_log = enable_slow_log(&args, "serve")?;
        let vertices: usize = args.flag_parsed("vertices", 0usize)?;
        let (path, n, edges) = if args.num_positionals() == 0 && vertices > 0 {
            // Worker mode: an empty graph of `--vertices` vertices whose
            // state arrives over the wire (and from the WAL on restart) —
            // typically one shard slice behind a `--shard-addrs` router.
            ("(empty)".to_string(), vertices, Vec::new())
        } else {
            let path = args.positional(0, "graph")?;
            let g = load_graph(path)?;
            let n = g.num_vertices();
            (path.to_string(), n, g.collect_edges())
        };
        let addr = args.flag("addr").unwrap_or("127.0.0.1:7878");
        let workers: usize = args.flag_parsed("workers", 8)?;
        let max_edges: usize = args.flag_parsed("max-batch-edges", 4096)?;
        let max_delay_ms: u64 = args.flag_parsed("max-batch-delay-ms", 2)?;
        if max_edges == 0 {
            return Err("--max-batch-edges must be positive".into());
        }
        let snapshot_every: u64 = args.flag_parsed("wal-snapshot-every", 64u64)?;
        let max_queue_depth: usize = args.flag_parsed("max-queue-depth", 0usize)?;
        let max_total_queue_depth: usize = args.flag_parsed("max-total-queue-depth", 0usize)?;
        let max_tenants: usize = args.flag_parsed("max-tenants", DEFAULT_MAX_TENANTS)?;
        let read_deadline_ms: u64 = args.flag_parsed("read-deadline-ms", 0u64)?;
        let faults = match args.flag("faults") {
            Some(spec) => Some(Arc::new(
                FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))?,
            )),
            None => None,
        };
        let trace_out = args.flag("trace-out");
        // The flight recorder dumps here on panic and on clean shutdown;
        // next to the WAL by default, so a post-mortem finds both.
        let events_out: Option<PathBuf> =
            args.flag("events-out").map(PathBuf::from).or_else(|| {
                args.flag("wal-dir")
                    .map(|d| Path::new(d).join("flight.json"))
            });

        let config = ServeConfig::builder()
            .policy(BatchPolicy {
                max_edges,
                max_delay: Duration::from_millis(max_delay_ms),
                apply_delay: None,
            })
            .max_queue_depth(max_queue_depth)
            .max_total_queue_depth(max_total_queue_depth)
            .max_tenants(max_tenants)
            .read_deadline((read_deadline_ms > 0).then(|| Duration::from_millis(read_deadline_ms)))
            .wal_root(args.flag("wal-dir").map(PathBuf::from))
            .wal_snapshot_every(snapshot_every)
            .faults(faults)
            .build()
            .map_err(|e| format!("invalid configuration: {e}"))?;
        let server = match args.flag("wal-dir") {
            Some(dir) => {
                let root = Path::new(dir);
                // An existing default-tenant log means a previous
                // incarnation: replay it (on top of the graph's edges)
                // before serving, so acked inserts survive the restart.
                // Other tenants' logs are replayed by the server itself.
                let default_dir = wal::default_wal_dir(root);
                let cc = if wal::exists(&default_dir) {
                    let rec = wal::recover(&default_dir, &edges)
                        .map_err(|e| format!("recover {}: {e}", default_dir.display()))?;
                    if rec.vertices != n {
                        return Err(format!(
                            "wal at {} holds {} vertices, graph has {n}",
                            default_dir.display(),
                            rec.vertices
                        ));
                    }
                    println!(
                        "recovered {} logged batch(es), {} edge(s){}{}",
                        rec.batches,
                        rec.edges,
                        if rec.from_snapshot {
                            " (from snapshot)"
                        } else {
                            ""
                        },
                        if rec.truncated {
                            "; torn tail truncated"
                        } else {
                            ""
                        }
                    );
                    rec.cc
                } else {
                    let mut cc = IncrementalCc::new(n);
                    cc.insert_batch(&edges);
                    cc
                };
                Server::from_cc(cc, config)
            }
            None => Server::new(n, &edges, config),
        }
        .map_err(|e| format!("start server: {e}"))?;
        let restored = server.tenants().len();
        if restored > 1 {
            println!("restored {} persisted tenant(s)", restored - 1);
        }
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;

        // The telemetry plane: an HTTP scrape sidecar (kept alive by the
        // binding until shutdown) and the flight recorder's panic hook.
        let metrics_http = match args.flag("metrics-addr") {
            Some(maddr) => {
                let http =
                    MetricsHttp::spawn(maddr).map_err(|e| format!("bind metrics {maddr}: {e}"))?;
                println!("metrics on http://{}/metrics", http.local_addr());
                Some(http)
            }
            None => None,
        };
        if let Some(dest) = &events_out {
            events::install_panic_hook(dest.clone());
        }
        if let Some(p) = &slow_log {
            println!("slow request traces -> {}", p.display());
        }
        // Recovery and tenant replay are done; tell /readyz so.
        afforest_serve::http::set_ready(true);

        // Announce before blocking: `dispatch` only prints on return, but
        // clients (and the CI smoke test) need the bound address now —
        // `--addr` with port 0 picks an ephemeral port.
        println!(
            "serving {path}: {n} vertices, {} edges ({} components)",
            edges.len(),
            server.snapshot().num_components()
        );
        println!("listening on {local} ({workers} workers)");
        let _ = std::io::stdout().flush();

        let session = trace_out.map(|_| afforest_obs::Session::begin());
        server
            .serve_tcp(listener, workers)
            .map_err(|e| format!("serve: {e}"))?;
        // Shutdown was requested: let queued inserts finish, then report.
        afforest_serve::http::set_ready(false);
        server.flush(Duration::from_secs(30));
        let trace = session.map(|s| s.end());
        drop(metrics_http);

        let stats = server.stats_report();
        let mut out = String::new();
        if let Some(dest) = &events_out {
            match events::write_dump(dest) {
                Ok(()) => {
                    let _ = writeln!(out, "flight recording written to {}", dest.display());
                }
                Err(e) => {
                    let _ = writeln!(out, "warning: flight recording {}: {e}", dest.display());
                }
            }
        }
        let _ = writeln!(out, "shutdown after epoch {}", stats.epoch);
        let _ = writeln!(
            out,
            "ingested {} edge(s) over {} published epoch(s)",
            stats.edges_ingested, stats.epochs_published
        );
        let shed = ServeStats::get(&server.stats().requests_shed);
        if shed > 0 {
            let _ = writeln!(out, "shed {shed} write request(s) at the admission bound");
        }
        let wal_errors = ServeStats::get(&server.stats().wal_errors);
        if wal_errors > 0 {
            let _ = writeln!(out, "warning: {wal_errors} wal append error(s)");
        }
        if let Some(dest) = trace_out {
            let trace = trace.expect("traced run kept its trace");
            write_trace(dest, &trace.to_json(), trace.spans.len(), &mut out)?;
        }
        Ok(out)
    }

    /// `--slow-log MS`: turns request tracing on with an `MS`-millisecond
    /// retention threshold (0 retains every traced request), names this
    /// process's spans `node`, and sinks each retained tree as one JSON
    /// line (schema 1, [`slowlog_line`]) appended to
    /// `<wal-dir>/slowlog.jsonl` — `slowlog.jsonl` in the working
    /// directory when there is no WAL. Returns the sink path when
    /// tracing was enabled.
    fn enable_slow_log(args: &ParsedArgs, node: &str) -> Result<Option<PathBuf>, String> {
        use afforest_obs::reqtrace;
        let Some(raw) = args.flag("slow-log") else {
            return Ok(None);
        };
        let ms: u64 = raw
            .parse()
            .map_err(|_| format!("--slow-log: '{raw}' is not a number of milliseconds"))?;
        reqtrace::set_node(node);
        let path = match args.flag("wal-dir") {
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
                Path::new(dir).join("slowlog.jsonl")
            }
            None => PathBuf::from("slowlog.jsonl"),
        };
        let sink = path.clone();
        reqtrace::set_slow_sink(move |tree| {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&sink)
            {
                let _ = writeln!(f, "{}", super::slowlog_line(tree));
            }
        });
        reqtrace::configure(Some(Duration::from_millis(ms)));
        Ok(Some(path))
    }

    /// The sharded serving modes behind `--shards` / `--shard-addrs`.
    fn run_sharded(args: &ParsedArgs, shards: usize) -> Result<String, String> {
        use afforest_serve::RetryPolicy;
        use afforest_shard::{HealthConfig, LocalCluster, RemoteShards, Router, ShardPlan};

        let slow_log = enable_slow_log(args, "router")?;
        if let Some(p) = &slow_log {
            println!("slow request traces -> {}", p.display());
        }
        let addr = args.flag("addr").unwrap_or("127.0.0.1:7878");
        let workers: usize = args.flag_parsed("workers", 8)?;
        let max_edges: usize = args.flag_parsed("max-batch-edges", 4096)?;
        let max_delay_ms: u64 = args.flag_parsed("max-batch-delay-ms", 2)?;
        if max_edges == 0 {
            return Err("--max-batch-edges must be positive".into());
        }
        let snapshot_every: u64 = args.flag_parsed("wal-snapshot-every", 64u64)?;
        let max_queue_depth: usize = args.flag_parsed("max-queue-depth", 0usize)?;
        let read_deadline_ms: u64 = args.flag_parsed("read-deadline-ms", 0u64)?;
        let read_deadline = (read_deadline_ms > 0).then(|| Duration::from_millis(read_deadline_ms));
        let wal_dir = args.flag("wal-dir").map(PathBuf::from);
        let metrics_addr = args.flag("metrics-addr");
        // Failure-domain knobs: consecutive transport failures before a
        // shard is Suspect / Down, how long the breaker stays open
        // between probes, and how long an elected probe may hang before
        // another caller reclaims it.
        let defaults = HealthConfig::default();
        let health = HealthConfig {
            suspect_after: args.flag_parsed("suspect-after", defaults.suspect_after)?,
            down_after: args.flag_parsed("down-after", defaults.down_after)?,
            probe_interval: Duration::from_millis(args.flag_parsed(
                "probe-interval-ms",
                defaults.probe_interval.as_millis() as u64,
            )?),
            probe_deadline: Duration::from_millis(args.flag_parsed(
                "probe-deadline-ms",
                defaults.probe_deadline.as_millis() as u64,
            )?),
        };
        // As with the standalone server, the flight recorder dumps next
        // to the WAL unless pointed elsewhere.
        let events_out: Option<PathBuf> = args
            .flag("events-out")
            .map(PathBuf::from)
            .or_else(|| wal_dir.as_deref().map(|d| d.join("flight.json")));

        if let Some(list) = args.flag("shard-addrs") {
            // Remote workers own the data; the router holds only wire
            // clients and the boundary store.
            if args.num_positionals() != 0 {
                return Err("--shard-addrs and <graph> are mutually exclusive".into());
            }
            let n: usize = args.flag_parsed("vertices", 0usize)?;
            if n == 0 {
                return Err("--shard-addrs needs --vertices N (the global vertex count)".into());
            }
            let addrs: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if addrs.is_empty() {
                return Err("--shard-addrs: no addresses".into());
            }
            let retry = RetryPolicy {
                max_retries: args.flag_parsed("max-retries", 40u32)?,
                backoff: Duration::from_micros(args.flag_parsed("retry-backoff-us", 500u64)?),
            };
            let plan = ShardPlan::new(n, addrs.len());
            let shard_lens: Vec<usize> = (0..addrs.len()).map(|k| plan.shard_len(k)).collect();
            // Connection is lazy: a worker that is down at boot leaves
            // its shard Down (writes park, reads degrade) instead of
            // failing the whole router.
            let backend = RemoteShards::connect(&addrs, retry, Some(Duration::from_secs(5)));
            let down = backend.down_at_boot();
            let boundary = boundary_store(n, wal_dir.as_deref())?;
            let park = park_set(&shard_lens, wal_dir.as_deref())?;
            let banner = format!(
                "routing {n} vertices across {} shard worker(s)",
                addrs.len()
            );
            let router = Router::new(plan, boundary, backend, read_deadline)
                .with_health_config(health)
                .with_park(park);
            for k in down {
                println!("shard {k} unreachable; parking its writes until it returns");
                router.mark_shard_down(k);
            }
            return serve_router(&router, addr, workers, metrics_addr, &banner, &events_out);
        }

        // In-process cluster: split the seed graph into shard-local
        // slices (cut edges seed the boundary store) and host one engine
        // per shard behind the router.
        let path = args.positional(0, "graph")?;
        let g = load_graph(path)?;
        let n = g.num_vertices();
        let edges = g.collect_edges();
        let plan = ShardPlan::new(n, shards);
        let config = ServeConfig::builder()
            .policy(BatchPolicy {
                max_edges,
                max_delay: Duration::from_millis(max_delay_ms),
                apply_delay: None,
            })
            .max_queue_depth(max_queue_depth)
            .wal_root(wal_dir.clone())
            .wal_snapshot_every(snapshot_every)
            .build()
            .map_err(|e| format!("invalid configuration: {e}"))?;
        let routed = plan.split_batch(&edges);
        let cluster = LocalCluster::new(&plan, &routed.per_shard, &config)
            .map_err(|e| format!("start shards: {e}"))?;
        let boundary = boundary_store(n, wal_dir.as_deref())?;
        boundary.observe_batch(&routed.cut);
        let banner = format!(
            "serving {path} across {shards} shard(s): {n} vertices, {} edges ({} cut)",
            edges.len(),
            routed.cut.len()
        );
        let router = Router::new(plan, boundary, cluster, read_deadline).with_health_config(health);
        serve_router(&router, addr, workers, metrics_addr, &banner, &events_out)
    }

    /// The router's parked-write backlog: durable per-shard `park-<k>.log`
    /// files under `--wal-dir` (replaying anything a previous incarnation
    /// left parked), purely in-memory otherwise.
    fn park_set(
        shard_lens: &[usize],
        wal_dir: Option<&Path>,
    ) -> Result<afforest_shard::ParkSet, String> {
        use afforest_shard::ParkSet;
        match wal_dir {
            Some(root) => {
                let park = ParkSet::with_root(root, shard_lens)
                    .map_err(|e| format!("park logs at {}: {e}", root.display()))?;
                for k in 0..park.num_shards() {
                    let rec = park.recovery(k);
                    if rec.batches > 0 || rec.truncated {
                        println!(
                            "recovered {} parked batch(es), {} edge(s) for shard {k}{}",
                            rec.batches,
                            rec.edges,
                            if rec.truncated {
                                "; torn tail truncated"
                            } else {
                                ""
                            }
                        );
                    }
                }
                Ok(park)
            }
            None => Ok(ParkSet::in_memory(shard_lens.len())),
        }
    }

    /// The router's boundary store: persistent under `--wal-dir`
    /// (replaying `boundary.log` from a previous incarnation), purely
    /// in-memory otherwise.
    fn boundary_store(
        n: usize,
        wal_dir: Option<&Path>,
    ) -> Result<afforest_shard::BoundaryStore, String> {
        match wal_dir {
            Some(root) => {
                let path = root.join(afforest_shard::BOUNDARY_LOG);
                let store = afforest_shard::BoundaryStore::with_log(n, &path)
                    .map_err(|e| format!("boundary log {}: {e}", path.display()))?;
                let replayed = store.edge_count();
                if replayed > 0 {
                    println!("recovered {replayed} boundary edge(s)");
                }
                Ok(store)
            }
            None => Ok(afforest_shard::BoundaryStore::new(n)),
        }
    }

    /// Binds, announces, serves and reports for a router front-end,
    /// mirroring the standalone flow (same stdout lines the smoke tests
    /// parse).
    fn serve_router<B: afforest_shard::ShardBackend>(
        router: &afforest_shard::Router<B>,
        addr: &str,
        workers: usize,
        metrics_addr: Option<&str>,
        banner: &str,
        events_out: &Option<PathBuf>,
    ) -> Result<String, String> {
        use afforest_serve::{Request, Response};

        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        let metrics_http = match metrics_addr {
            Some(maddr) => {
                let http =
                    MetricsHttp::spawn(maddr).map_err(|e| format!("bind metrics {maddr}: {e}"))?;
                println!("metrics on http://{}/metrics", http.local_addr());
                Some(http)
            }
            None => None,
        };
        if let Some(dest) = events_out {
            events::install_panic_hook(dest.clone());
        }
        println!("{banner}");
        println!("listening on {local} ({workers} workers)");
        let _ = std::io::stdout().flush();

        // Boot (park/boundary replay, shard dial) is done. A shard that
        // came up Down still pulls /readyz to 503 via its health gauge.
        afforest_serve::http::set_ready(true);
        router
            .serve_tcp(listener, workers)
            .map_err(|e| format!("serve: {e}"))?;
        // Shutdown was requested: drain every shard, then report.
        afforest_serve::http::set_ready(false);
        router.flush(Duration::from_secs(30));
        let stats = match router.handle(&Request::Stats) {
            Response::Stats(s) => Some(s),
            // A shard can be down at shutdown; the surviving shards'
            // aggregate still makes a useful report.
            Response::Degraded(inner) => match *inner {
                Response::Stats(s) => Some(s),
                _ => None,
            },
            _ => None,
        };
        let parked: Vec<(usize, usize, usize)> = (0..router.park().num_shards())
            .map(|k| (k, router.park().depth(k), router.park().parked_edges(k)))
            .filter(|&(_, batches, _)| batches > 0)
            .collect();
        let boundary_edges = router.boundary().edge_count();
        router.shutdown_backend();
        drop(metrics_http);

        let mut out = String::new();
        if let Some(dest) = events_out {
            match events::write_dump(dest) {
                Ok(()) => {
                    let _ = writeln!(out, "flight recording written to {}", dest.display());
                }
                Err(e) => {
                    let _ = writeln!(out, "warning: flight recording {}: {e}", dest.display());
                }
            }
        }
        if let Some(s) = stats {
            let _ = writeln!(out, "shutdown after epoch {}", s.epoch);
            let _ = writeln!(
                out,
                "ingested {} edge(s) over {} published epoch(s)",
                s.edges_ingested, s.epochs_published
            );
        } else {
            let _ = writeln!(out, "shutdown");
        }
        let _ = writeln!(out, "boundary holds {boundary_edges} cut edge(s)");
        for (k, batches, edges) in parked {
            let _ = writeln!(
                out,
                "shard {k} still down: {batches} batch(es) ({edges} edge(s)) parked for replay"
            );
        }
        Ok(out)
    }
}

/// `afforest recover [<graph>] [--wal-dir PATH] [--events PATH]` —
/// offline post-mortem: replay a write-ahead log (over the seed graph)
/// and report what came back, report any parked-write backlogs a
/// sharded router left behind (`park-<k>.log`), and/or summarize a
/// flight recording dumped by a crashed or cleanly stopped server. Torn
/// tails, if any, are truncated exactly as a restarting server would.
pub mod recover {
    use super::*;
    use afforest_serve::events::{self, Dump, EventKind};
    use afforest_serve::wal;
    use std::collections::BTreeMap;
    use std::path::Path;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["wal-dir", "events"])?;
        let events_path = args.flag("events");
        let mut out = String::new();
        match args.flag("wal-dir") {
            Some(dir) => {
                let root = Path::new(dir);
                // A router's wal-dir holds park logs (and a boundary
                // log) but not necessarily a WAL tree; report whatever
                // is actually there.
                let park = park_report(root)?;
                if wal::exists(&wal::default_wal_dir(root)) {
                    out.push_str(&wal_report(&args, dir)?);
                } else if park.is_empty() && events_path.is_none() {
                    return Err(format!("no write-ahead log at {}", root.display()));
                }
                out.push_str(&park);
            }
            None if events_path.is_none() => {
                return Err(
                    "recover requires --wal-dir PATH (WAL replay) and/or --events PATH \
                     (flight recording)"
                        .to_string(),
                )
            }
            None => {}
        }
        if let Some(p) = events_path {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let dump = events::parse_dump(&text).map_err(|e| format!("{p}: {e}"))?;
            out.push_str(&render_flight(p, &dump));
        }
        Ok(out)
    }

    /// Parked-write backlogs (`park-<k>.log`) a sharded router left
    /// behind for shards that were still down at shutdown. Reads with
    /// the same torn-tail truncation a restarting router performs; ids
    /// are shard-local so range validation is skipped offline.
    fn park_report(root: &Path) -> Result<String, String> {
        use afforest_shard::{park_path, ParkSet};
        let mut lens = Vec::new();
        while park_path(root, lens.len()).exists() {
            lens.push(u32::MAX as usize);
        }
        if lens.is_empty() {
            return Ok(String::new());
        }
        let set = ParkSet::with_root(root, &lens)
            .map_err(|e| format!("park logs at {}: {e}", root.display()))?;
        let mut out = String::new();
        for k in 0..set.num_shards() {
            let rec = set.recovery(k);
            let _ = writeln!(
                out,
                "park shard {k}: {} batch(es), {} edge(s) awaiting replay{}",
                rec.batches,
                rec.edges,
                if rec.truncated {
                    "; torn tail truncated"
                } else {
                    ""
                }
            );
        }
        Ok(out)
    }

    fn wal_report(args: &ParsedArgs, dir: &str) -> Result<String, String> {
        let path = args.positional(0, "graph")?;
        let root = Path::new(dir);
        // The root may be a legacy single-tenant log or a tenant tree;
        // either way the default tenant replays over the seed graph and
        // every other tenant replays over an empty one.
        let default_dir = wal::default_wal_dir(root);
        if !wal::exists(&default_dir) {
            return Err(format!("no write-ahead log at {}", root.display()));
        }
        let g = load_graph(path)?;
        let mut rec = wal::recover(&default_dir, &g.collect_edges())
            .map_err(|e| format!("recover {}: {e}", default_dir.display()))?;
        if rec.vertices != g.num_vertices() {
            return Err(format!(
                "wal at {} holds {} vertices, graph has {}",
                default_dir.display(),
                rec.vertices,
                g.num_vertices()
            ));
        }
        let labels = rec.cc.labels();

        let mut out = String::new();
        let _ = writeln!(out, "wal:         {}", root.display());
        let _ = writeln!(
            out,
            "base:        {}",
            if rec.from_snapshot {
                "parent snapshot"
            } else {
                "seed graph"
            }
        );
        let _ = writeln!(
            out,
            "replayed:    {} batch(es), {} edge(s)",
            rec.batches, rec.edges
        );
        let _ = writeln!(
            out,
            "torn tail:   {}",
            if rec.truncated { "truncated" } else { "none" }
        );
        let _ = writeln!(out, "vertices:    {}", rec.vertices);
        let _ = writeln!(out, "components:  {}", labels.num_components());
        let _ = writeln!(
            out,
            "largest:     {} of {} vertices",
            labels.largest_component_size(),
            labels.len()
        );
        for (name, tdir) in wal::tenant_dirs(root) {
            if name == afforest_serve::DEFAULT_TENANT {
                continue;
            }
            let mut trec = wal::recover(&tdir, &[])
                .map_err(|e| format!("recover tenant {name} at {}: {e}", tdir.display()))?;
            let tlabels = trec.cc.labels();
            let _ = writeln!(
                out,
                "tenant {name}: {} batch(es), {} edge(s), {} vertices, {} component(s){}",
                trec.batches,
                trec.edges,
                trec.vertices,
                tlabels.num_components(),
                if trec.truncated {
                    "; torn tail truncated"
                } else {
                    ""
                }
            );
        }
        Ok(out)
    }

    /// How many trailing events the summary prints in full.
    const TAIL: usize = 20;

    /// Renders a parsed flight recording: per-kind totals (faults broken
    /// out by site) and the final [`TAIL`] events, newest last. Pure, so
    /// the tests can pin the format.
    pub fn render_flight(path: &str, dump: &Dump) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "flight:      {path}");
        let _ = writeln!(
            out,
            "events:      {} recorded, {} retained",
            dump.recorded,
            dump.events.len()
        );
        let mut by_kind: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &dump.events {
            *by_kind.entry(e.kind.as_str()).or_default() += 1;
        }
        for (kind, count) in &by_kind {
            let _ = writeln!(out, "  {kind:<18} {count}");
        }
        let faults: Vec<&events::DumpEvent> = dump.of_kind(EventKind::FaultInjected).collect();
        if !faults.is_empty() {
            let mut by_site: BTreeMap<&str, usize> = BTreeMap::new();
            for e in &faults {
                let site = e.fields.get("site").copied().unwrap_or(0);
                *by_site.entry(events::fault_site::name(site)).or_default() += 1;
            }
            let _ = writeln!(
                out,
                "faults:      {}",
                by_site
                    .iter()
                    .map(|(s, n)| format!("{s} x{n}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        let tail = &dump.events[dump.events.len().saturating_sub(TAIL)..];
        if !tail.is_empty() {
            let _ = writeln!(out, "last {} event(s):", tail.len());
        }
        for e in tail {
            let fields = e
                .fields
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "  #{:<6} +{:>10}us  {:<18} {fields}",
                e.seq, e.ts_us, e.kind
            );
        }
        out
    }
}

/// `afforest loadgen (<host:port> | --graph PATH) [--tenant NAME]
/// [--connections N] [--requests N] [--read-pct P] [--insert-batch N]
/// [--seed S] [--max-retries N] [--retry-backoff-us US] [--json-out PATH]
/// [--trace-out PATH]`.
pub mod loadgen {
    use super::*;
    use afforest_serve::loadgen::run as run_load;
    use afforest_serve::{Client, LoadgenConfig, ServeConfig, Server, TenantId};

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&[
            "graph",
            "tenant",
            "connections",
            "requests",
            "read-pct",
            "insert-batch",
            "seed",
            "max-retries",
            "retry-backoff-us",
            "write-shards",
            "local-pct",
            "json-out",
            "trace-out",
            "traced",
        ])?;
        let tenant = match args.flag("tenant") {
            Some(name) => Some(TenantId::new(name).map_err(|e| format!("--tenant: {e}"))?),
            None => None,
        };
        let cfg = LoadgenConfig {
            connections: args.flag_parsed("connections", 4)?,
            requests: args.flag_parsed("requests", 20_000)?,
            read_pct: args.flag_parsed("read-pct", 90u32)?,
            insert_batch: args.flag_parsed("insert-batch", 64)?,
            seed: args.flag_parsed("seed", 42u64)?,
            max_retries: args.flag_parsed("max-retries", 3u32)?,
            retry_backoff: std::time::Duration::from_micros(
                args.flag_parsed("retry-backoff-us", 500u64)?,
            ),
            write_shards: args.flag_parsed("write-shards", 0usize)?,
            local_pct: args.flag_parsed("local-pct", 90u32)?,
            tenant,
        };
        if cfg.read_pct > 100 {
            return Err("--read-pct must be 0..=100".into());
        }
        if cfg.local_pct > 100 {
            return Err("--local-pct must be 0..=100".into());
        }
        if cfg.requests == 0 {
            return Err("--requests must be positive".into());
        }
        let trace_out = args.flag("trace-out");
        // `--traced true`: every request carries a fresh trace id in its
        // envelope, so a server running with `--slow-log` retains trees
        // for the slow ones (`afforest trace` renders them).
        let traced: bool = args.flag_parsed("traced", false)?;
        let session = trace_out.map(|_| afforest_obs::Session::begin());

        let report = match args.flag("graph") {
            // Self-contained mode: an in-process server over `--graph`, no
            // socket. Server-side ingest spans land in `--trace-out`.
            Some(path) => {
                if args.num_positionals() != 0 {
                    return Err("--graph and <host:port> are mutually exclusive".into());
                }
                if cfg.tenant.is_some() {
                    return Err("--tenant needs a remote server (<host:port>)".into());
                }
                if traced {
                    return Err("--traced needs a remote server (<host:port>)".into());
                }
                let g = load_graph(path)?;
                let config = ServeConfig::builder()
                    .build()
                    .map_err(|e| format!("invalid configuration: {e}"))?;
                let server = Server::new(g.num_vertices(), &g.collect_edges(), config)
                    .map_err(|e| format!("start server: {e}"))?;
                run_load(&cfg, |_| Ok(&server)).map_err(|e| format!("loadgen: {e}"))?
            }
            // Client mode: one TCP connection per workload thread; a
            // `--tenant` rides each request in a v2 envelope.
            None => {
                let addr = args.positional(0, "host:port")?;
                let tenant = cfg.tenant.clone();
                run_load(&cfg, |_| {
                    let mut client = Client::connect(addr)?;
                    if let Some(t) = &tenant {
                        client = client.with_tenant(t.clone());
                    }
                    if traced {
                        client = client.with_tracing();
                    }
                    Ok(client)
                })
                .map_err(|e| format!("loadgen against {addr}: {e}"))?
            }
        };
        let trace = session.map(|s| s.end());

        let mut out = report.render();
        if let Some(dest) = args.flag("json-out") {
            std::fs::write(dest, report.to_json()).map_err(|e| format!("{dest}: {e}"))?;
            let _ = writeln!(out, "json written to {dest}");
        }
        if let Some(dest) = trace_out {
            let trace = trace.expect("traced run kept its trace");
            write_trace(dest, &trace.to_json(), trace.spans.len(), &mut out)?;
        }
        if report.errors > 0 {
            return Err(format!(
                "{} protocol error(s) during the run\n{out}",
                report.errors
            ));
        }
        Ok(out)
    }
}

/// `afforest distrib-cc <graph> [--ranks P] [--partition block|hash|bfs]`
/// — run the BSP forest-merge connectivity algorithm over a simulated
/// `P`-rank partition and report components plus exact communication
/// volume ([`CommStats`](afforest_distrib::CommStats)).
pub mod distrib_cc {
    use super::*;
    use afforest_distrib::{distributed_cc_forest, PartitionKind, VertexPartition};

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["ranks", "partition"])?;
        let path = args.positional(0, "graph")?;
        let ranks: usize = args.flag_parsed("ranks", 4usize)?;
        if ranks == 0 {
            return Err("--ranks must be positive".into());
        }
        if ranks > u16::MAX as usize {
            return Err("--ranks must fit in 16 bits".into());
        }
        let g = load_graph(path)?;
        let scheme = args.flag("partition").unwrap_or("block");
        let part = match scheme {
            "block" => VertexPartition::new(g.num_vertices(), ranks, PartitionKind::Block),
            "hash" => VertexPartition::new(g.num_vertices(), ranks, PartitionKind::Hash),
            "bfs" => VertexPartition::bfs_grow(&g, ranks),
            other => {
                return Err(format!(
                    "--partition: unknown scheme '{other}' (block|hash|bfs)"
                ))
            }
        };
        let t = Instant::now();
        let (labels, comm) = distributed_cc_forest(&g, &part);
        let dt = t.elapsed().as_secs_f64();

        let mut out = String::new();
        let _ = writeln!(
            out,
            "graph:       {path} ({} vertices, {} edges)",
            g.num_vertices(),
            g.num_edges()
        );
        let _ = writeln!(
            out,
            "ranks:       {ranks} ({scheme} partition, cut fraction {:.3})",
            part.cut_fraction(&g)
        );
        let _ = writeln!(out, "components:  {}", labels.num_components());
        let _ = writeln!(
            out,
            "largest:     {} of {} vertices",
            labels.largest_component_size(),
            labels.len()
        );
        let _ = writeln!(out, "supersteps:  {}", comm.supersteps);
        let _ = writeln!(out, "messages:    {} ({} bytes)", comm.messages, comm.bytes);
        let _ = writeln!(out, "time:        {dt:.6}s");
        Ok(out)
    }
}

/// `afforest top <host:port> [--interval-ms MS] [--count N]
/// [--clear BOOL]` — a live dashboard over the `--metrics-addr` sidecar:
/// scrape, diff against the previous scrape for rates, render per-op
/// request rates and latency percentiles plus ingest/WAL health.
pub mod top {
    use super::*;
    use afforest_obs::registry::{parse_exposition, Scrape};
    use afforest_serve::http::http_get;
    use afforest_serve::metrics::OP_NAMES;
    use std::io::Write as _;

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["interval-ms", "count", "clear"])?;
        let addr = args.positional(0, "host:port")?;
        let interval_ms: u64 = args.flag_parsed("interval-ms", 1000u64)?;
        let count: u64 = args.flag_parsed("count", 0u64)?; // 0 = until interrupted
        let clear: bool = args.flag_parsed("clear", true)?;

        let mut prev: Option<(Scrape, Instant)> = None;
        let mut frames = 0u64;
        loop {
            let (status, body) = http_get(addr, "/metrics")?;
            if status != 200 {
                return Err(format!("{addr} answered HTTP {status} to GET /metrics"));
            }
            let now = Instant::now();
            let cur = parse_exposition(&body).map_err(|e| format!("bad exposition: {e}"))?;
            let dt = prev
                .as_ref()
                .map(|(_, at)| now.duration_since(*at).as_secs_f64());
            if clear {
                // ANSI clear + home, like top(1); `--clear false` scrolls
                // instead (logs, pipes, dumb terminals).
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", render(addr, prev.as_ref().map(|(s, _)| s), &cur, dt));
            let _ = std::io::stdout().flush();
            frames += 1;
            if count != 0 && frames >= count {
                break;
            }
            prev = Some((cur, now));
            std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(1)));
        }
        Ok(format!("{frames} scrape(s) of {addr}\n"))
    }

    /// A counter's per-second rate between two scrapes, `-` on the first
    /// frame (no previous sample to diff against).
    fn rate(prev: Option<&Scrape>, cur: &Scrape, name: &str, dt: Option<f64>) -> String {
        match (prev.and_then(|p| p.value(name)), cur.value(name), dt) {
            (Some(a), Some(b), Some(dt)) if dt > 0.0 => {
                format!("{:.1}", b.saturating_sub(a) as f64 / dt)
            }
            _ => "-".to_string(),
        }
    }

    /// Renders one dashboard frame. Pure — the tests feed it canned
    /// scrapes and pin the layout.
    pub fn render(addr: &str, prev: Option<&Scrape>, cur: &Scrape, dt: Option<f64>) -> String {
        let v = |name: &str| cur.value(name).unwrap_or(0);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "afforest top — {addr}  epoch {}  queue {} edge(s)",
            v("afforest_epoch"),
            v("afforest_queue_depth")
        );
        let _ = writeln!(
            out,
            "ingest: {} edge(s) over {} epoch(s)  shed {}  wal {} rec / {} B / {} compaction(s) / {} error(s)",
            v("afforest_edges_ingested_total"),
            v("afforest_epochs_published_total"),
            v("afforest_requests_shed_total"),
            v("afforest_wal_records_total"),
            v("afforest_wal_bytes_total"),
            v("afforest_wal_compactions_total"),
            v("afforest_wal_errors_total"),
        );
        if let Some(lag) = cur.histogram("afforest_epoch_publish_lag_ns") {
            if lag.count > 0 {
                let _ = writeln!(
                    out,
                    "publish lag: p50 {}  p95 {}  p99 {}  ({} sample(s))",
                    fmt_ns(lag.percentile(0.50)),
                    fmt_ns(lag.percentile(0.95)),
                    fmt_ns(lag.percentile(0.99)),
                    lag.count
                );
            }
        }
        // Sharded routers export per-shard health (0 healthy, 1 suspect,
        // 2 down, 3 probing), the parked-write backlog and the
        // degraded-read count; one line covers the failure domain.
        let mut shards: Vec<(String, u64)> = cur
            .values
            .iter()
            .filter_map(|(name, value)| {
                name.strip_prefix("afforest_shard_health{shard=\"")
                    .and_then(|r| r.strip_suffix("\"}"))
                    .map(|k| (k.to_string(), *value))
            })
            .collect();
        if !shards.is_empty() {
            shards.sort();
            let mut line = String::from("shards:");
            for (k, code) in &shards {
                let state = match code {
                    0 => "healthy",
                    1 => "suspect",
                    2 => "down",
                    3 => "probing",
                    _ => "unknown",
                };
                let _ = write!(line, "  {k}:{state}");
                let parked = v(&format!("afforest_parked_batches{{shard=\"{k}\"}}"));
                if parked > 0 {
                    let _ = write!(line, " ({parked} parked)");
                }
            }
            let _ = write!(line, "  degraded reads {}", v("afforest_degraded_reads"));
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>9} {:>8} {:>8} {:>8}  p99 trace",
            "op", "total", "req/s", "p50", "p95", "p99"
        );
        for op in OP_NAMES {
            let total_name = format!("afforest_requests_{op}_total");
            let total = v(&total_name);
            let hist_name = format!("afforest_request_latency_{op}_ns");
            let (p50, p95, p99) = match cur.histogram(&hist_name) {
                Some(h) if h.count > 0 => (
                    fmt_ns(h.percentile(0.50)),
                    fmt_ns(h.percentile(0.95)),
                    fmt_ns(h.percentile(0.99)),
                ),
                _ => ("-".into(), "-".into(), "-".into()),
            };
            // The histogram's top occupied bucket carries an exemplar —
            // the last retained trace id that slow; paste it into
            // `afforest trace --trace-id` to see where the time went.
            let exemplar = cur.exemplar(&hist_name).unwrap_or("-");
            let _ = writeln!(
                out,
                "{op:<16} {total:>10} {:>9} {p50:>8} {p95:>8} {p99:>8}  {exemplar}",
                rate(prev, cur, &total_name, dt)
            );
        }
        let faults: u64 = [
            "afforest_faults_wal_drop_total",
            "afforest_faults_wal_short_write_total",
            "afforest_faults_apply_delay_total",
            "afforest_faults_torn_frame_total",
            "afforest_faults_worker_kill_total",
        ]
        .into_iter()
        .map(v)
        .sum();
        if faults > 0 || v("afforest_worker_deaths_total") > 0 {
            let _ = writeln!(
                out,
                "chaos: {faults} fault(s) injected, {} worker death(s)",
                v("afforest_worker_deaths_total")
            );
        }
        out
    }
}

/// `afforest trace <host:port> [--shards A,B,…] [--trace-id HEX]` —
/// pull the retained span rings of a server or router (plus, with
/// `--shards`, its remote shard workers) over the `DumpTraces` wire op
/// and render one request's merged cross-process span tree with
/// per-stage self-times. Without `--trace-id` the newest retained
/// trace is rendered.
pub mod trace {
    use super::*;
    use afforest_obs::reqtrace::{stage_name, Span};
    use afforest_serve::Client;
    use std::collections::{BTreeMap, BTreeSet};

    pub fn run(argv: &[String]) -> Result<String, String> {
        let args = ParsedArgs::parse(argv)?;
        args.allow_flags(&["shards", "trace-id"])?;
        let addr = args.positional(0, "host:port")?;
        let want = match args.flag("trace-id") {
            Some(text) => Some(parse_trace_id(text)?),
            None => None,
        };
        let mut addrs = vec![addr.to_string()];
        if let Some(list) = args.flag("shards") {
            addrs.extend(
                list.split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty()),
            );
        }
        // Each source is labeled `node@addr`: two shard workers both
        // call themselves "serve", so the address disambiguates.
        let mut sources = Vec::new();
        for a in &addrs {
            let mut client =
                Client::connect(a.as_str()).map_err(|e| format!("connect {a}: {e}"))?;
            let (node, spans) = client
                .dump_traces()
                .map_err(|e| format!("dump traces from {a}: {e}"))?;
            sources.push((format!("{node}@{a}"), spans));
        }
        render(&sources, want)
    }

    /// Parses a `--trace-id` value: up to 16 hex digits, `0x` optional.
    pub fn parse_trace_id(text: &str) -> Result<u64, String> {
        let digits = text.trim().trim_start_matches("0x");
        u64::from_str_radix(digits, 16)
            .map_err(|_| format!("--trace-id: '{text}' is not a hex trace id"))
    }

    /// Renders one trace's merged tree from per-source span dumps.
    /// Children nest under their parent in start order; a span whose
    /// parent was retained only on a process that was not scraped (or
    /// whose tree missed that process's threshold) renders as an extra
    /// top-level root rather than being dropped. Self time is a span's
    /// duration minus its direct children's. Pure, for the tests.
    pub fn render(sources: &[(String, Vec<Span>)], want: Option<u64>) -> Result<String, String> {
        let mut all: Vec<(usize, Span)> = Vec::new();
        for (i, (_, spans)) in sources.iter().enumerate() {
            all.extend(spans.iter().map(|s| (i, *s)));
        }
        if all.is_empty() {
            return Err(
                "no retained spans (start the server with --slow-log MS and send traced \
                 requests, e.g. `afforest loadgen … --traced true`)"
                    .into(),
            );
        }
        // Newest trace = the one holding the most recently started span.
        let trace_id = match want {
            Some(id) => id,
            None => {
                all.iter()
                    .max_by_key(|(_, s)| s.start_us)
                    .expect("nonempty")
                    .1
                    .trace_id
            }
        };
        let mut spans: Vec<(usize, Span)> = all
            .iter()
            .copied()
            .filter(|(_, s)| s.trace_id == trace_id)
            .collect();
        if spans.is_empty() {
            return Err(format!(
                "trace {trace_id:016x} not found in any retained ring"
            ));
        }
        // Scraping the same process under two addresses must not
        // duplicate the tree: span ids are unique within a trace.
        spans.sort_by_key(|&(i, s)| (s.span_id, i));
        spans.dedup_by_key(|&mut (_, s)| s.span_id);
        spans.sort_by_key(|&(_, s)| (s.start_us, s.span_id));

        let retained: BTreeSet<u64> = all.iter().map(|(_, s)| s.trace_id).collect();
        let contributing: BTreeSet<usize> = spans.iter().map(|&(i, _)| i).collect();
        let present: BTreeSet<u64> = spans.iter().map(|&(_, s)| s.span_id).collect();
        let t0 = spans
            .iter()
            .map(|&(_, s)| s.start_us)
            .min()
            .expect("nonempty");
        let mut roots: Vec<usize> = Vec::new();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (idx, &(_, s)) in spans.iter().enumerate() {
            if s.parent_span != 0 && present.contains(&s.parent_span) {
                children.entry(s.parent_span).or_default().push(idx);
            } else {
                roots.push(idx);
            }
        }

        let mut out = format!(
            "trace {trace_id:016x}: {} span(s) from {} of {} source(s); {} trace(s) retained\n",
            spans.len(),
            contributing.len(),
            sources.len(),
            retained.len()
        );
        // Depth-first in start order, accumulating per-stage self time.
        let mut stage_self: BTreeMap<&'static str, (u64, usize)> = BTreeMap::new();
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
        while let Some((idx, depth)) = stack.pop() {
            let (src, s) = spans[idx];
            let kids = children.get(&s.span_id).cloned().unwrap_or_default();
            let child_ns: u64 = kids.iter().map(|&k| spans[k].1.dur_ns).sum();
            let self_ns = s.dur_ns.saturating_sub(child_ns);
            let entry = stage_self.entry(stage_name(s.stage)).or_insert((0, 0));
            entry.0 += self_ns;
            entry.1 += 1;
            let label = if s.arg != 0 {
                format!("{}{} ({})", "  ".repeat(depth), s.stage_name(), s.arg)
            } else {
                format!("{}{}", "  ".repeat(depth), s.stage_name())
            };
            let _ = writeln!(
                out,
                "{:>12}  {label:<34} {:>9}  self {:>9}  [{}]",
                format!("+{}us", s.start_us.saturating_sub(t0)),
                fmt_ns(s.dur_ns),
                fmt_ns(self_ns),
                sources[src].0
            );
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
        let _ = writeln!(out, "stage self-times:");
        for (name, (ns, n)) in &stage_self {
            let _ = writeln!(out, "  {name:<18} {:>9}  ({n} span(s))", fmt_ns(*ns));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::uniform_random;

    fn tempfile(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("afforest-cli-cmd-{}-{}", std::process::id(), name));
        p.to_string_lossy().into_owned()
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn sample_graph_file(name: &str) -> String {
        let g = uniform_random(200, 1_000, 5);
        let p = tempfile(name);
        crate::load::save_graph(&g, &p).unwrap();
        p
    }

    #[test]
    fn stats_reports_counts() {
        let p = sample_graph_file("stats.el");
        let out = stats::run(&argv(&[&p])).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("vertices:            200"));
        assert!(out.contains("components:"));
        assert!(out.contains("approx diameter:"));
    }

    #[test]
    fn cc_default_algorithm_and_labels_out() {
        let p = sample_graph_file("cc.el");
        let labels_path = tempfile("labels.txt");
        let out = cc::run(&argv(&[&p, "--labels-out", &labels_path])).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("algorithm:   afforest"));
        let labels = std::fs::read_to_string(&labels_path).unwrap();
        std::fs::remove_file(&labels_path).unwrap();
        assert_eq!(labels.lines().count(), 200);
        assert!(labels.lines().next().unwrap().starts_with("0 "));
    }

    #[test]
    fn cc_every_algorithm_runs() {
        let p = sample_graph_file("ccall.el");
        for name in ALGORITHM_NAMES {
            let out = cc::run(&argv(&[&p, "--algorithm", name])).unwrap();
            assert!(out.contains(name), "{name} missing from output");
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn cc_rejects_unknown_algorithm() {
        let p = sample_graph_file("ccbad.el");
        let err = cc::run(&argv(&[&p, "--algorithm", "quantum"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("unknown algorithm"));
    }

    #[test]
    fn generate_all_families() {
        for family in [
            "urand",
            "kron",
            "road",
            "web",
            "ba",
            "ws",
            "geometric",
            "components",
        ] {
            let p = tempfile(&format!("gen-{family}.el"));
            let out = generate::run(&argv(&[
                family,
                "--out",
                &p,
                "--n",
                "256",
                "--edge-factor",
                "4",
                "--seed",
                "1",
            ]))
            .unwrap();
            assert!(out.contains(family), "{family}");
            let g = crate::load::load_graph(&p).unwrap();
            std::fs::remove_file(&p).unwrap();
            assert!(g.num_edges() > 0, "{family} generated no edges");
        }
    }

    #[test]
    fn generate_requires_out() {
        let err = generate::run(&argv(&["urand"])).unwrap_err();
        assert!(err.contains("--out"));
    }

    #[test]
    fn generate_rejects_unknown_family() {
        let p = tempfile("gen-bad.el");
        let err = generate::run(&argv(&["hypercube", "--out", &p])).unwrap_err();
        assert!(err.contains("unknown family"));
    }

    #[test]
    fn convert_between_formats() {
        let src = sample_graph_file("conv.el");
        let dst = tempfile("conv.graph");
        let out = convert::run(&argv(&[&src, &dst])).unwrap();
        assert!(out.contains("converted"));
        let a = crate::load::load_graph(&src).unwrap();
        let b = crate::load::load_graph(&dst).unwrap();
        std::fs::remove_file(&src).unwrap();
        std::fs::remove_file(&dst).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn bench_times_everything() {
        let p = sample_graph_file("bench.el");
        let out = bench::run(&argv(&[&p, "--trials", "1"])).unwrap();
        std::fs::remove_file(&p).unwrap();
        for name in ALGORITHM_NAMES {
            assert!(out.contains(name), "{name} missing");
        }
    }

    #[test]
    fn cc_trace_out_writes_parseable_json() {
        let p = sample_graph_file("trace.el");
        let trace_path = tempfile("trace.json");
        let out = cc::run(&argv(&[&p, "--trace-out", &trace_path])).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("trace written to"));
        let json = std::fs::read_to_string(&trace_path).unwrap();
        std::fs::remove_file(&trace_path).unwrap();
        let trace = afforest_obs::Trace::from_json(&json).expect("valid trace JSON");
        if afforest_obs::COMPILED {
            assert!(!trace.spans.is_empty());
        } else {
            assert!(trace.is_empty());
            assert!(out.contains("compiled out"));
        }
    }

    /// Acceptance check for the tentpole: `run --trace-out` covers every
    /// neighbor round, the sampling step, the skip pass, and each
    /// compress sweep.
    #[cfg(feature = "obs")]
    #[test]
    fn cc_trace_covers_every_afforest_phase() {
        let p = sample_graph_file("tracephases.el");
        let trace_path = tempfile("tracephases.json");
        cc::run(&argv(&[&p, "--trace-out", &trace_path, "--trials", "2"])).unwrap();
        std::fs::remove_file(&p).unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        std::fs::remove_file(&trace_path).unwrap();
        let trace = afforest_obs::Trace::from_json(&json).unwrap();
        let rounds = afforest_core::AfforestConfig::default().neighbor_rounds;
        for r in 0..rounds {
            assert!(
                trace.spans.iter().any(|s| s.name == format!("link[{r}]")),
                "missing neighbor round {r}"
            );
        }
        for name in ["init", "find-largest", "final-link", "final-compress"] {
            assert!(
                trace.spans.iter().any(|s| s.name == name),
                "missing phase {name}"
            );
        }
        assert!(
            trace.spans.iter().any(|s| s.base_name() == "compress"),
            "missing compress sweeps"
        );
        assert!(
            trace.counter("vertices_skipped") > 0,
            "skip pass not recorded"
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn bench_trace_out_maps_algorithms_to_traces() {
        let p = sample_graph_file("benchtrace.el");
        let trace_path = tempfile("benchtrace.json");
        bench::run(&argv(&[&p, "--trials", "1", "--trace-out", &trace_path])).unwrap();
        std::fs::remove_file(&p).unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        std::fs::remove_file(&trace_path).unwrap();
        // The file is one object: algorithm name -> trace.
        let value = afforest_obs::json::parse(&json).unwrap();
        let afforest_obs::json::Value::Obj(map) = value else {
            panic!("expected a JSON object");
        };
        assert_eq!(map.len(), ALGORITHM_NAMES.len());
        assert!(map.contains_key("afforest"));
        assert!(map.contains_key("sv"));
    }

    #[test]
    fn loadgen_self_contained_mode_runs_clean() {
        let p = sample_graph_file("loadgen.el");
        let json_path = tempfile("loadgen.json");
        let out = loadgen::run(&argv(&[
            "--graph",
            &p,
            "--connections",
            "2",
            "--requests",
            "400",
            "--read-pct",
            "85",
            "--insert-batch",
            "4",
            "--json-out",
            &json_path,
        ]))
        .unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("throughput"), "{out}");
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("errors:     0"), "{out}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        std::fs::remove_file(&json_path).unwrap();
        assert!(json.contains("\"throughput_rps\""), "{json}");
        assert!(json.contains("\"requests\": 400"), "{json}");
    }

    #[test]
    fn loadgen_validates_its_flags() {
        let p = sample_graph_file("loadgenbad.el");
        let err = loadgen::run(&argv(&["--graph", &p, "--read-pct", "150"])).unwrap_err();
        assert!(err.contains("read-pct"), "{err}");
        let err = loadgen::run(&argv(&["--graph", &p, "--requests", "0"])).unwrap_err();
        assert!(err.contains("requests"), "{err}");
        // --graph and an explicit address are mutually exclusive.
        let err = loadgen::run(&argv(&["127.0.0.1:1", "--graph", &p])).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        std::fs::remove_file(&p).unwrap();
        // Without --graph, the target address is required.
        let err = loadgen::run(&argv(&[])).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
    }

    #[test]
    fn recover_replays_a_wal_over_the_seed_graph() {
        let p = sample_graph_file("recover.el");
        let dir = std::env::temp_dir().join(format!("afforest-cli-recover-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // The sample graph has 200 vertices; log two batches for it.
            let mut wal = afforest_serve::wal::Wal::open(&dir, 200, 0).unwrap();
            wal.append(&[(0, 1), (2, 3)]).unwrap();
            wal.append(&[(4, 5)]).unwrap();
        }
        let out = recover::run(&argv(&[&p, "--wal-dir", dir.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(out.contains("replayed:    2 batch(es), 3 edge(s)"), "{out}");
        assert!(out.contains("torn tail:   none"), "{out}");
        assert!(out.contains("base:        seed graph"), "{out}");
        assert!(out.contains("components:"), "{out}");
    }

    #[test]
    fn recover_requires_a_wal() {
        let p = sample_graph_file("recovernone.el");
        let err = recover::run(&argv(&[&p])).unwrap_err();
        assert!(err.contains("--wal-dir"), "{err}");
        let dir = std::env::temp_dir().join(format!(
            "afforest-cli-recover-missing-{}",
            std::process::id()
        ));
        let err = recover::run(&argv(&[&p, "--wal-dir", dir.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("no write-ahead log"), "{err}");
    }

    #[test]
    fn serve_rejects_vertex_mismatched_wal() {
        let p = sample_graph_file("servewalbad.el");
        let dir =
            std::env::temp_dir().join(format!("afforest-cli-servewalbad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // A log for a 10-vertex universe cannot back a 200-vertex graph.
        drop(afforest_serve::wal::Wal::open(&dir, 10, 0).unwrap());
        let err = serve::run(&argv(&[&p, "--wal-dir", dir.to_str().unwrap()])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(err.contains("vertex count 10"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_faults_spec() {
        let p = sample_graph_file("servefaultbad.el");
        let err = serve::run(&argv(&[&p, "--faults", "gremlins=1"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("--faults"), "{err}");
    }

    #[test]
    fn loadgen_retry_flags_parse_and_run() {
        let p = sample_graph_file("loadgenretry.el");
        let out = loadgen::run(&argv(&[
            "--graph",
            &p,
            "--requests",
            "200",
            "--max-retries",
            "1",
            "--retry-backoff-us",
            "100",
        ]))
        .unwrap();
        std::fs::remove_file(&p).unwrap();
        assert!(out.contains("shed:"), "{out}");
    }

    #[test]
    fn serve_rejects_unbindable_addr() {
        let p = sample_graph_file("servebad.el");
        let err = serve::run(&argv(&[&p, "--addr", "999.999.999.999:0"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("bind"), "{err}");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn loadgen_trace_out_captures_ingest_spans() {
        let p = sample_graph_file("loadgentrace.el");
        let trace_path = tempfile("loadgentrace.json");
        loadgen::run(&argv(&[
            "--graph",
            &p,
            "--requests",
            "300",
            "--read-pct",
            "50",
            "--insert-batch",
            "8",
            "--trace-out",
            &trace_path,
        ]))
        .unwrap();
        std::fs::remove_file(&p).unwrap();
        let json = std::fs::read_to_string(&trace_path).unwrap();
        std::fs::remove_file(&trace_path).unwrap();
        let trace = afforest_obs::Trace::from_json(&json).unwrap();
        // The in-process server's writer thread recorded its batches.
        assert!(trace.counter("edges_ingested") > 0, "{json}");
        assert!(trace.counter("epochs_published") > 0);
        assert!(
            trace.spans.iter().any(|s| s.base_name() == "ingest-batch"),
            "no ingest-batch spans recorded"
        );
    }

    #[test]
    fn recover_without_wal_or_events_names_both_flags() {
        let err = recover::run(&argv(&[])).unwrap_err();
        assert!(err.contains("--wal-dir"), "{err}");
        assert!(err.contains("--events"), "{err}");
    }

    #[test]
    fn recover_events_summarizes_a_flight_dump() {
        use afforest_serve::events::{self, EventKind};
        // A dump written by the recorder itself; the summary must account
        // for every kind and break faults out by site.
        events::record(EventKind::EpochPublished, [3, 128, 900]);
        events::record(
            EventKind::FaultInjected,
            [events::fault_site::TORN_FRAME, 5, 0],
        );
        let path = tempfile("flight.json");
        std::fs::write(&path, events::dump_json()).unwrap();
        // Events-only mode: no graph, no WAL.
        let out = recover::run(&argv(&["--events", &path])).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(out.contains("flight:"), "{out}");
        assert!(out.contains("epoch_published"), "{out}");
        assert!(out.contains("torn_frame x1"), "{out}");
        assert!(out.contains("epoch=3"), "{out}");
    }

    #[test]
    fn recover_events_rejects_garbage() {
        let path = tempfile("flight-garbage.json");
        std::fs::write(&path, "not a dump").unwrap();
        let err = recover::run(&argv(&["--events", &path])).unwrap_err();
        std::fs::remove_file(&path).unwrap();
        assert!(err.contains(&path), "{err}");
    }

    /// Parses canned exposition text into a [`Scrape`] for the render
    /// tests (the same parser `top` uses against a live endpoint).
    fn scrape_of(text: &str) -> afforest_obs::registry::Scrape {
        afforest_obs::registry::parse_exposition(text).expect("canned exposition parses")
    }

    #[test]
    fn top_render_shows_totals_rates_and_percentiles() {
        let first = scrape_of(
            "# TYPE afforest_epoch gauge\nafforest_epoch 7\n\
             # TYPE afforest_queue_depth gauge\nafforest_queue_depth 12\n\
             # TYPE afforest_requests_connected_total counter\n\
             afforest_requests_connected_total 100\n",
        );
        let second = scrape_of(
            "# TYPE afforest_epoch gauge\nafforest_epoch 9\n\
             # TYPE afforest_queue_depth gauge\nafforest_queue_depth 0\n\
             # TYPE afforest_requests_connected_total counter\n\
             afforest_requests_connected_total 350\n\
             # TYPE afforest_request_latency_connected_ns histogram\n\
             afforest_request_latency_connected_ns_bucket{le=\"1023\"} 250\n\
             afforest_request_latency_connected_ns_bucket{le=\"+Inf\"} 250\n\
             afforest_request_latency_connected_ns_sum 200000\n\
             afforest_request_latency_connected_ns_count 250\n",
        );
        // First frame: no previous scrape, so rates are dashes.
        let frame = top::render("127.0.0.1:9", None, &first, None);
        assert!(frame.contains("epoch 7"), "{frame}");
        assert!(frame.contains("queue 12"), "{frame}");
        assert!(
            frame
                .lines()
                .any(|l| l.starts_with("connected") && l.contains('-')),
            "{frame}"
        );
        // Second frame: 250 more requests over 2 s = 125.0 req/s, and the
        // latency histogram yields percentiles.
        let frame = top::render("127.0.0.1:9", Some(&first), &second, Some(2.0));
        assert!(frame.contains("epoch 9"), "{frame}");
        assert!(frame.contains("125.0"), "{frame}");
        let connected = frame
            .lines()
            .find(|l| l.starts_with("connected"))
            .expect("connected row");
        assert!(connected.contains("350"), "{frame}");
        // All 250 samples sit in the ≤1023 ns bucket: every percentile
        // reads back as that bucket's upper edge.
        assert!(connected.contains("1.0us"), "{frame}");
        // No chaos metrics → no chaos line.
        assert!(!frame.contains("chaos:"), "{frame}");
    }

    #[test]
    fn top_render_surfaces_chaos_and_publish_lag() {
        let s = scrape_of(
            "# TYPE afforest_faults_torn_frame_total counter\n\
             afforest_faults_torn_frame_total 4\n\
             # TYPE afforest_worker_deaths_total counter\n\
             afforest_worker_deaths_total 1\n\
             # TYPE afforest_epoch_publish_lag_ns histogram\n\
             afforest_epoch_publish_lag_ns_bucket{le=\"2097151\"} 9\n\
             afforest_epoch_publish_lag_ns_bucket{le=\"+Inf\"} 9\n\
             afforest_epoch_publish_lag_ns_sum 9000000\n\
             afforest_epoch_publish_lag_ns_count 9\n",
        );
        let frame = top::render("h:1", None, &s, None);
        assert!(
            frame.contains("chaos: 4 fault(s) injected, 1 worker death(s)"),
            "{frame}"
        );
        assert!(frame.contains("publish lag: p50 2.1ms"), "{frame}");
    }

    #[test]
    fn top_requires_an_address_and_validates_flags() {
        let err = top::run(&argv(&[])).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
        let err = top::run(&argv(&["127.0.0.1:9", "--interval", "5"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
    }

    #[test]
    fn top_against_a_live_sidecar_scrapes_once() {
        // A sidecar with the serve metrics registered is all `top` needs —
        // it reads the process-global registry over HTTP.
        afforest_serve::metrics::metrics().connections.inc();
        let http = afforest_serve::MetricsHttp::spawn("127.0.0.1:0").expect("bind sidecar");
        let addr = http.local_addr().to_string();
        let out = top::run(&argv(&[&addr, "--count", "1", "--clear", "false"])).unwrap();
        assert!(out.contains("1 scrape(s)"), "{out}");
        // A dead endpoint is a clean error, not a hang.
        drop(http);
        let err = top::run(&argv(&["127.0.0.1:1", "--count", "1"])).unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }

    #[test]
    fn distrib_cc_reports_components_and_comm() {
        let p = sample_graph_file("distribcc.el");
        // The BSP run must agree with the sequential count and report
        // exact communication accounting for every scheme.
        let expected = {
            let g = crate::load::load_graph(&p).unwrap();
            afforest_core::afforest(&g, &Default::default()).num_components()
        };
        for scheme in ["block", "hash", "bfs"] {
            let out = distrib_cc::run(&argv(&[&p, "--ranks", "3", "--partition", scheme])).unwrap();
            assert!(
                out.contains(&format!("components:  {expected}")),
                "{scheme}: {out}"
            );
            assert!(out.contains("ranks:       3"), "{out}");
            assert!(out.contains("supersteps:"), "{out}");
            assert!(out.contains("messages:"), "{out}");
        }
        let err = distrib_cc::run(&argv(&[&p, "--partition", "voronoi"])).unwrap_err();
        assert!(err.contains("unknown scheme"), "{err}");
        let err = distrib_cc::run(&argv(&[&p, "--ranks", "0"])).unwrap_err();
        assert!(err.contains("--ranks"), "{err}");
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn serve_sharded_validates_its_flags() {
        // A router needs the global vertex count to build its plan.
        let err = serve::run(&argv(&["--shard-addrs", "127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("--vertices"), "{err}");
        let err = serve::run(&argv(&[
            "x.el",
            "--shard-addrs",
            "127.0.0.1:1",
            "--vertices",
            "8",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        let err = serve::run(&argv(&["--shard-addrs", " , ", "--vertices", "8"])).unwrap_err();
        assert!(err.contains("no addresses"), "{err}");
        // Dialing a worker that is not there is no longer a boot error:
        // the shard comes up Down (writes park until it returns). Boot
        // proceeds all the way to the bind, which this test points
        // somewhere invalid to regain control.
        let err = serve::run(&argv(&[
            "--shard-addrs",
            "127.0.0.1:1",
            "--vertices",
            "8",
            "--addr",
            "999.999.999.999:0",
        ]))
        .unwrap_err();
        assert!(err.contains("bind"), "{err}");
        // In-process sharding still needs a graph.
        let err = serve::run(&argv(&["--shards", "2"])).unwrap_err();
        assert!(err.contains("graph"), "{err}");
    }

    #[test]
    fn serve_sharded_rejects_unbindable_addr() {
        let p = sample_graph_file("servesharded.el");
        let err =
            serve::run(&argv(&[&p, "--shards", "2", "--addr", "999.999.999.999:0"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("bind"), "{err}");
    }

    #[test]
    fn loadgen_sharded_write_flags_parse_and_run() {
        let p = sample_graph_file("loadgenshard.el");
        let out = loadgen::run(&argv(&[
            "--graph",
            &p,
            "--requests",
            "200",
            "--read-pct",
            "0",
            "--write-shards",
            "4",
            "--local-pct",
            "95",
        ]))
        .unwrap();
        assert!(out.contains("throughput"), "{out}");
        let err = loadgen::run(&argv(&["--graph", &p, "--local-pct", "101"])).unwrap_err();
        assert!(err.contains("local-pct"), "{err}");
        std::fs::remove_file(&p).unwrap();
    }

    /// Canned spans for the trace-render and slow-log tests: a
    /// router-side tree (request → decode + fan-out) plus a worker-side
    /// subtree (shard request → WAL fsync) parented under the fan-out
    /// span, exactly as cross-process propagation produces.
    fn canned_trace() -> Vec<(String, Vec<afforest_obs::reqtrace::Span>)> {
        use afforest_obs::reqtrace::Span;
        let span = |span_id, parent_span, stage, arg, start_us, dur_ns| Span {
            trace_id: 0xABCD,
            span_id,
            parent_span,
            stage,
            arg,
            start_us,
            dur_ns,
        };
        vec![
            (
                "router@127.0.0.1:7878".to_string(),
                vec![
                    span(1, 0, 1, 0, 1_000, 9_000_000), // router_request
                    span(2, 1, 2, 48, 1_001, 5_000),    // router_decode
                    span(3, 1, 4, 0, 1_010, 8_000_000), // shard_fanout
                ],
            ),
            (
                "serve@127.0.0.1:7001".to_string(),
                vec![
                    span(100, 3, 6, 0, 1_020, 7_000_000),    // shard_request
                    span(101, 100, 8, 16, 1_030, 2_000_000), // wal_fsync
                ],
            ),
        ]
    }

    #[test]
    fn trace_render_merges_sources_into_one_tree() {
        let sources = canned_trace();
        let out = trace::render(&sources, None).unwrap();
        assert!(out.contains("trace 000000000000abcd"), "{out}");
        assert!(out.contains("5 span(s) from 2 of 2 source(s)"), "{out}");
        // The worker's subtree nests under the router's fan-out span.
        let lines: Vec<&str> = out.lines().collect();
        let pos = |needle: &str| {
            lines
                .iter()
                .position(|l| l.contains(needle))
                .unwrap_or_else(|| panic!("missing {needle}: {out}"))
        };
        assert!(pos("router_request") < pos("shard_fanout"), "{out}");
        assert!(pos("shard_fanout") < pos("shard_request"), "{out}");
        assert!(pos("shard_request") < pos("wal_fsync"), "{out}");
        // Each span names the process it came from.
        assert!(
            lines[pos("wal_fsync")].contains("[serve@127.0.0.1:7001]"),
            "{out}"
        );
        assert!(
            lines[pos("router_request")].contains("[router@127.0.0.1:7878]"),
            "{out}"
        );
        // Self time subtracts direct children: the 9 ms root spent
        // 8.005 ms in its children, leaving 995 us of its own.
        assert!(lines[pos("router_request")].contains("995.0us"), "{out}");
        // Per-stage attribution footer.
        assert!(out.contains("stage self-times:"), "{out}");
        assert!(out.contains("wal_fsync"), "{out}");
    }

    #[test]
    fn trace_render_honors_trace_id_and_rejects_unknown() {
        let mut sources = canned_trace();
        // A second, newer trace retained on the worker only.
        sources[1].1.push(afforest_obs::reqtrace::Span {
            trace_id: 0xEEEE,
            span_id: 200,
            parent_span: 0,
            stage: 6,
            arg: 0,
            start_us: 9_999,
            dur_ns: 1_000,
        });
        // Default: the newest trace wins.
        let out = trace::render(&sources, None).unwrap();
        assert!(out.contains("trace 000000000000eeee"), "{out}");
        assert!(out.contains("2 trace(s) retained"), "{out}");
        // Explicit --trace-id picks the older one.
        let out = trace::render(&sources, Some(0xABCD)).unwrap();
        assert!(out.contains("trace 000000000000abcd"), "{out}");
        let err = trace::render(&sources, Some(0x1234)).unwrap_err();
        assert!(err.contains("not found"), "{err}");
        let err = trace::render(&[("x".into(), vec![])], None).unwrap_err();
        assert!(err.contains("no retained spans"), "{err}");
    }

    #[test]
    fn trace_render_keeps_orphans_as_roots() {
        // Only the worker's dump is available: its subtree's parent
        // (the router fan-out span) is absent, so it renders as a root
        // instead of vanishing.
        let sources = vec![canned_trace().remove(1)];
        let out = trace::render(&sources, None).unwrap();
        assert!(out.contains("shard_request"), "{out}");
        assert!(out.contains("wal_fsync"), "{out}");
    }

    #[test]
    fn trace_cli_validates_its_args() {
        let err = trace::run(&argv(&[])).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
        let err = trace::run(&argv(&["127.0.0.1:9", "--trace-id", "zz"])).unwrap_err();
        assert!(err.contains("hex trace id"), "{err}");
        assert_eq!(trace::parse_trace_id("0xAb12").unwrap(), 0xAB12);
        // A dead endpoint is a clean error, not a hang.
        let err = trace::run(&argv(&["127.0.0.1:1"])).unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }

    #[test]
    fn slowlog_line_is_one_parseable_json_object() {
        let tree = &canned_trace()[0].1;
        let line = slowlog_line(tree);
        let value = afforest_obs::json::parse(&line).expect("slow-log line parses");
        let afforest_obs::json::Value::Obj(map) = value else {
            panic!("expected a JSON object: {line}");
        };
        assert!(map.contains_key("schema"), "{line}");
        assert!(map.contains_key("trace_id"), "{line}");
        assert!(map.contains_key("spans"), "{line}");
        assert!(line.contains("\"trace_id\":\"000000000000abcd\""), "{line}");
        assert!(line.contains("\"root\":\"router_request\""), "{line}");
        assert!(line.contains("\"stage\":\"router_decode\""), "{line}");
        // No trailing newline: the sink appends one per line.
        assert!(!line.ends_with('\n'), "{line}");
    }

    #[test]
    fn serve_rejects_bad_slow_log() {
        let p = sample_graph_file("serveslowbad.el");
        let err = serve::run(&argv(&[&p, "--slow-log", "soon"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("--slow-log"), "{err}");
    }

    #[test]
    fn loadgen_traced_needs_a_remote_server() {
        let p = sample_graph_file("loadgentraced.el");
        let err = loadgen::run(&argv(&["--graph", &p, "--traced", "true"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("--traced"), "{err}");
    }

    #[test]
    fn top_render_surfaces_shard_health_and_exemplars() {
        let s = scrape_of(
            "# TYPE afforest_shard_health gauge\n\
             afforest_shard_health{shard=\"0\"} 0\n\
             afforest_shard_health{shard=\"1\"} 2\n\
             # TYPE afforest_parked_batches gauge\n\
             afforest_parked_batches{shard=\"1\"} 3\n\
             # TYPE afforest_degraded_reads counter\n\
             afforest_degraded_reads 7\n\
             # TYPE afforest_request_latency_connected_ns histogram\n\
             afforest_request_latency_connected_ns_bucket{le=\"1023\"} 250 # {trace_id=\"00c0ffee00c0ffee\"}\n\
             afforest_request_latency_connected_ns_bucket{le=\"+Inf\"} 250\n\
             afforest_request_latency_connected_ns_sum 200000\n\
             afforest_request_latency_connected_ns_count 250\n",
        );
        let frame = top::render("h:1", None, &s, None);
        assert!(
            frame.contains("shards:  0:healthy  1:down (3 parked)  degraded reads 7"),
            "{frame}"
        );
        // The p99 exemplar rides the op row, ready for `afforest trace`.
        let connected = frame
            .lines()
            .find(|l| l.starts_with("connected"))
            .expect("connected row");
        assert!(connected.contains("00c0ffee00c0ffee"), "{frame}");
        // Ops without a retained exemplar show a dash.
        let stats_row = frame
            .lines()
            .find(|l| l.starts_with("stats"))
            .expect("stats row");
        assert!(stats_row.trim_end().ends_with('-'), "{frame}");
        // No shard gauges → no shard line.
        let plain = scrape_of("# TYPE afforest_epoch gauge\nafforest_epoch 1\n");
        assert!(!top::render("h:1", None, &plain, None).contains("shards:"));
    }

    #[test]
    fn typo_flags_are_rejected() {
        let p = sample_graph_file("typo.el");
        let err = cc::run(&argv(&[&p, "--algorthm", "sv"])).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("unknown flag"));
    }
}
