//! Format-dispatched graph loading and saving.

use afforest_graph::{io, io_formats, CsrGraph, GraphBuilder};
use std::path::Path;

/// Recognized on-disk graph formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Plain text edge list (`.el`, `.txt`).
    EdgeList,
    /// DIMACS `p edge` (`.gr`, `.dimacs`, `.col`).
    Dimacs,
    /// METIS adjacency (`.graph`, `.metis`).
    Metis,
    /// This repository's binary CSR (`.acsr`).
    Binary,
}

impl Format {
    /// Detects a format from a file extension.
    pub fn from_path(path: &str) -> Result<Format, String> {
        let ext = Path::new(path)
            .extension()
            .and_then(|e| e.to_str())
            .unwrap_or("")
            .to_ascii_lowercase();
        match ext.as_str() {
            "el" | "txt" => Ok(Format::EdgeList),
            "gr" | "dimacs" | "col" => Ok(Format::Dimacs),
            "graph" | "metis" => Ok(Format::Metis),
            "acsr" => Ok(Format::Binary),
            other => Err(format!(
                "unrecognized graph extension '.{other}' in '{path}' \
                 (expected .el .txt .gr .dimacs .col .graph .metis .acsr)"
            )),
        }
    }
}

/// Loads a graph, dispatching on the extension.
///
/// All reader failures — unreadable file, malformed content, or a
/// structurally corrupt binary — arrive as [`afforest_graph::Error`] and
/// are rendered here as one `path: reason` message.
pub fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let fmt = Format::from_path(path)?;
    let err = |e: afforest_graph::Error| format!("{path}: {e}");
    match fmt {
        Format::EdgeList => io::read_edge_list(path, 0)
            .map(|el| GraphBuilder::from_edge_list(el).build())
            .map_err(err),
        Format::Dimacs => io_formats::read_dimacs(path)
            .map(|el| GraphBuilder::from_edge_list(el).build())
            .map_err(err),
        Format::Metis => io_formats::read_metis(path)
            .map(|el| GraphBuilder::from_edge_list(el).build())
            .map_err(err),
        Format::Binary => io::read_binary(path).map_err(err),
    }
}

/// Saves a graph, dispatching on the extension.
pub fn save_graph(g: &CsrGraph, path: &str) -> Result<(), String> {
    let fmt = Format::from_path(path)?;
    let io_err = |e: std::io::Error| format!("{path}: {e}");
    match fmt {
        Format::EdgeList => io::write_edge_list(g, path).map_err(io_err),
        Format::Dimacs => io_formats::write_dimacs(g, path).map_err(io_err),
        Format::Metis => io_formats::write_metis(g, path).map_err(io_err),
        Format::Binary => io::write_binary(g, path).map_err(io_err),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::uniform_random;

    fn tempfile(name: &str) -> String {
        let mut p = std::env::temp_dir();
        p.push(format!("afforest-cli-load-{}-{}", std::process::id(), name));
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn format_detection() {
        assert_eq!(Format::from_path("a/b/x.el").unwrap(), Format::EdgeList);
        assert_eq!(Format::from_path("x.DIMACS").unwrap(), Format::Dimacs);
        assert_eq!(Format::from_path("x.graph").unwrap(), Format::Metis);
        assert_eq!(Format::from_path("x.acsr").unwrap(), Format::Binary);
        assert!(Format::from_path("x.pdf").is_err());
        assert!(Format::from_path("noext").is_err());
    }

    #[test]
    fn roundtrip_every_format() {
        let g = uniform_random(150, 700, 1);
        for ext in ["el", "gr", "graph", "acsr"] {
            let p = tempfile(&format!("rt.{ext}"));
            save_graph(&g, &p).unwrap();
            let g2 = load_graph(&p).unwrap();
            std::fs::remove_file(&p).unwrap();
            // Edge-list-ish formats can shrink trailing isolated vertices;
            // compare edges.
            let mut a = g.collect_edges();
            let mut b = g2.collect_edges();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "format .{ext}");
        }
    }

    #[test]
    fn load_missing_file_reports_path() {
        let err = load_graph("/definitely/not/here.el").unwrap_err();
        assert!(err.contains("not/here.el"));
    }

    #[test]
    fn load_malformed_content_reports_path_and_reason() {
        let p = tempfile("malformed.el");
        std::fs::write(&p, "0 1\nnot an edge\n").unwrap();
        let err = load_graph(&p).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains(&p), "missing path in '{err}'");
        assert!(err.contains("line 2"), "missing line number in '{err}'");

        let p = tempfile("corrupt.acsr");
        std::fs::write(&p, b"not a csr dump").unwrap();
        let err = load_graph(&p).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.contains("magic"), "missing reason in '{err}'");
    }
}
