//! Library backing the `afforest` command-line tool.
//!
//! ```text
//! afforest stats    <graph>
//! afforest cc       <graph> [--algorithm NAME] [--labels-out PATH] [--trials N]
//!                   [--trace-out PATH]          (alias: afforest run)
//! afforest generate <family> --out PATH [--n N] [--edge-factor K] [--seed S] …
//! afforest convert  <in> <out>
//! afforest bench    <graph> [--trials N] [--trace-out PATH]
//! afforest serve    <graph> [--addr HOST:PORT] [--workers N] [--wal-dir PATH]
//!                   [--max-queue-depth N] [--faults SPEC]
//!                   [--metrics-addr HOST:PORT] [--events-out PATH]
//!                   [--trace-out PATH] [--shards N]
//! afforest serve    --vertices N [--addr HOST:PORT] …   (shard worker)
//! afforest serve    --shard-addrs A,B,… --vertices N …  (shard router)
//! afforest distrib-cc <graph> [--ranks P] [--partition block|hash|bfs]
//! afforest recover  [<graph>] [--wal-dir PATH] [--events PATH]
//! afforest loadgen  (<host:port> | --graph PATH) [--connections N] [--requests N]
//!                   [--read-pct P] [--max-retries N] [--json-out PATH]
//!                   [--trace-out PATH] [--traced BOOL]
//! afforest top      <host:port> [--interval-ms MS] [--count N] [--clear BOOL]
//! afforest trace    <host:port> [--shards A,B,…] [--trace-id HEX]
//! afforest help
//! ```
//!
//! Graph files are recognized by extension: `.el`/`.txt` (edge list),
//! `.gr`/`.dimacs`/`.col` (DIMACS), `.graph`/`.metis` (METIS), and
//! `.acsr` (this repo's binary CSR).

#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
pub mod load;

pub use args::ParsedArgs;

/// Top-level usage text.
pub const USAGE: &str = "\
usage: afforest <command> [arguments]

commands:
  stats    <graph>                          graph statistics (Table III columns)
  cc       <graph> [--algorithm NAME]       connected components (alias: run)
           [--labels-out PATH] [--trials N]
           [--trace-out PATH]
  generate <family> --out PATH [--n N]      synthetic graph (urand|kron|road|web|
           [--edge-factor K] [--seed S]     ba|ws|geometric|components)
  convert  <in> <out>                       format conversion by extension
  bench    <graph> [--trials N]             time every algorithm on the graph
           [--trace-out PATH]
  serve    <graph> [--addr HOST:PORT]       connectivity query service over TCP
           [--workers N] [--max-batch-edges N]
           [--max-batch-delay-ms MS]
           [--wal-dir PATH]                 durability: log batches, recover on
           [--wal-snapshot-every N]         restart, compact every N batches
           [--max-queue-depth N]            shed inserts past N queued edges
           [--read-deadline-ms MS]          drop connections idle past MS
           [--faults SPEC]                  chaos injection, e.g.
                                            seed=7,torn_frame=0.05,kill_worker=0.1
           [--metrics-addr HOST:PORT]       HTTP sidecar serving GET /metrics
           [--events-out PATH]              flight-recorder dump on panic and
                                            shutdown (default <wal-dir>/flight.json)
           [--trace-out PATH]
           [--slow-log MS]                  retain request traces slower than MS
                                            (0 = all) -> <wal-dir>/slowlog.jsonl
           [--shards N]                     split the graph across N in-process
                                            shard engines behind a router
           [--vertices N]                   no graph: serve an empty N-vertex
                                            slice (a shard worker)
           [--shard-addrs A,B,…]            route to running shard workers
                                            (requires --vertices; no graph)
           [--suspect-after N]              shard health: failures before
           [--down-after N]                 Suspect / before the breaker opens
           [--probe-interval-ms MS]         and the probe cadence while Down
           [--probe-deadline-ms MS]         reclaim a hung probe after MS
  distrib-cc <graph> [--ranks P]            BSP forest-merge connectivity with
           [--partition block|hash|bfs]     exact communication accounting
  recover  [<graph>] [--wal-dir PATH]       offline WAL replay + parked-write
           [--events PATH]                  report (no serving) and/or
                                            flight-recording summary
  loadgen  (<host:port> | --graph PATH)     mixed read/write workload driver
           [--connections N] [--requests N]
           [--read-pct P] [--insert-batch N]
           [--seed S] [--max-retries N]
           [--retry-backoff-us US]
           [--write-shards K]               confine writes to K block slices,
           [--local-pct P]                  P% of them slice-local
           [--json-out PATH] [--trace-out PATH]
           [--traced BOOL]                  mint a trace id per request (pair
                                            with a server's --slow-log)
  top      <host:port> [--interval-ms MS]   live dashboard over a server's
           [--count N] [--clear BOOL]       --metrics-addr scrape endpoint
  trace    <host:port> [--shards A,B,…]     render the newest retained request
           [--trace-id HEX]                 trace as a cross-process span tree
  help                                      this message

`--trace-out` writes a JSON phase trace of the best trial (build with
`--features obs` to populate it with spans and counters)

formats by extension: .el/.txt  .gr/.dimacs/.col  .graph/.metis  .acsr
algorithms: afforest afforest-noskip sv sv-edgelist sv-1982 label-prop
            bfs dobfs parallel-uf union-find uf-rank uf-size rem";

/// Runs a full command line (without the program name); returns the text
/// to print on success.
pub fn dispatch(argv: &[String]) -> Result<String, String> {
    let Some(command) = argv.first() else {
        return Ok(format!("{USAGE}\n"));
    };
    let rest = &argv[1..];
    match command.as_str() {
        "stats" => commands::stats::run(rest),
        // `run` is an alias for `cc` — the natural verb once tracing made
        // the command more than a component count.
        "cc" | "run" => commands::cc::run(rest),
        "generate" => commands::generate::run(rest),
        "convert" => commands::convert::run(rest),
        "bench" => commands::bench::run(rest),
        "serve" => commands::serve::run(rest),
        "distrib-cc" => commands::distrib_cc::run(rest),
        "recover" => commands::recover::run(rest),
        "loadgen" => commands::loadgen::run(rest),
        "top" => commands::top::run(rest),
        "trace" => commands::trace::run(rest),
        "help" | "--help" | "-h" => Ok(format!("{USAGE}\n")),
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_prints_usage() {
        let out = dispatch(&[]).unwrap();
        assert!(out.contains("usage: afforest"));
    }

    #[test]
    fn help_prints_usage() {
        for h in ["help", "--help", "-h"] {
            assert!(dispatch(&argv(&[h])).unwrap().contains("usage"));
        }
    }

    #[test]
    fn unknown_command_errors() {
        let err = dispatch(&argv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn run_is_an_alias_for_cc() {
        // Both spellings hit the same handler — same error for a missing
        // positional.
        let cc = dispatch(&argv(&["cc"])).unwrap_err();
        let run = dispatch(&argv(&["run"])).unwrap_err();
        assert_eq!(cc, run);
    }
}
