//! `afforest` — the command-line entry point.
//!
//! All logic lives in [`afforest_cli`] so it is unit-testable; this
//! binary only forwards `argv` and prints.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match afforest_cli::dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", afforest_cli::USAGE);
            std::process::exit(2);
        }
    }
}
