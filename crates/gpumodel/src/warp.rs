//! The warp model: lockstep lanes, divergence, and coalescing.
//!
//! A warp is 32 lanes executing in lockstep: its wall-clock cost is the
//! **maximum** work across active lanes (divergent lanes wait), and the
//! loads its lanes issue in one step coalesce — distinct 128-byte
//! segments touched = memory transactions issued.

/// Lanes per warp (NVIDIA's fixed warp width).
pub const LANES: usize = 32;

/// Coalescing granularity in bytes (global-memory transaction segment).
pub const SEGMENT_BYTES: u64 = 128;

/// Number of memory transactions for one warp-step of loads: distinct
/// 128-byte segments across the lanes' byte addresses.
///
/// ```
/// use afforest_gpu_model::coalesced_transactions;
///
/// // 32 consecutive u32 loads fit one 128-byte transaction…
/// let seq: Vec<u64> = (0..32).map(|i| 4 * i).collect();
/// assert_eq!(coalesced_transactions(&seq), 1);
/// // …while a scattered pattern needs one each.
/// let scattered: Vec<u64> = (0..32).map(|i| 1_000 * i).collect();
/// assert_eq!(coalesced_transactions(&scattered), 32);
/// ```
pub fn coalesced_transactions(addresses: &[u64]) -> u64 {
    let mut segments: Vec<u64> = addresses.iter().map(|&a| a / SEGMENT_BYTES).collect();
    segments.sort_unstable();
    segments.dedup();
    segments.len() as u64
}

/// Aggregate execution accounting for a kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WarpAccounting {
    /// Warps launched.
    pub warps: u64,
    /// Sum over warps of the maximum lane work — lockstep cycles.
    pub lockstep_work: u64,
    /// Sum of per-lane work — the useful work actually needed.
    pub useful_work: u64,
    /// Global-memory transactions issued.
    pub transactions: u64,
    /// Bytes requested by lanes (before coalescing).
    pub bytes_requested: u64,
}

impl WarpAccounting {
    /// SIMD efficiency: useful work ÷ (lockstep work × lanes). 1.0 means
    /// perfectly uniform lanes; heavy divergence drives it toward 0.
    pub fn simd_efficiency(&self) -> f64 {
        if self.lockstep_work == 0 {
            1.0
        } else {
            self.useful_work as f64 / (self.lockstep_work * LANES as u64) as f64
        }
    }

    /// Bytes actually moved by the issued transactions.
    pub fn bytes_transferred(&self) -> u64 {
        self.transactions * SEGMENT_BYTES
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &WarpAccounting) {
        self.warps += other.warps;
        self.lockstep_work += other.lockstep_work;
        self.useful_work += other.useful_work;
        self.transactions += other.transactions;
        self.bytes_requested += other.bytes_requested;
    }

    /// Accounts one warp whose lanes performed `lane_work` units each
    /// (inactive lanes contribute 0).
    pub fn record_warp(&mut self, lane_work: &[u64]) {
        debug_assert!(lane_work.len() <= LANES);
        self.warps += 1;
        self.lockstep_work += lane_work.iter().copied().max().unwrap_or(0);
        self.useful_work += lane_work.iter().sum::<u64>();
    }

    /// Accounts one warp-step of 4-byte loads at the given element
    /// indices of an array starting at byte offset `base`.
    pub fn record_loads(&mut self, base: u64, element_indices: &[u64]) {
        let addresses: Vec<u64> = element_indices.iter().map(|&i| base + 4 * i).collect();
        self.transactions += coalesced_transactions(&addresses);
        self.bytes_requested += 4 * addresses.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_loads_coalesce_to_one_transaction() {
        // 32 consecutive u32s span exactly 128 bytes.
        let addrs: Vec<u64> = (0..32u64).map(|i| 4 * i).collect();
        assert_eq!(coalesced_transactions(&addrs), 1);
    }

    #[test]
    fn scattered_loads_do_not_coalesce() {
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 1000).collect();
        assert_eq!(coalesced_transactions(&addrs), 32);
    }

    #[test]
    fn duplicate_addresses_share_a_transaction() {
        assert_eq!(coalesced_transactions(&[0, 0, 4, 8]), 1);
        assert_eq!(coalesced_transactions(&[]), 0);
    }

    #[test]
    fn straddling_segments() {
        // 120 and 132 are in different 128-byte segments.
        assert_eq!(coalesced_transactions(&[120, 132]), 2);
    }

    #[test]
    fn efficiency_uniform_work_is_one() {
        let mut acc = WarpAccounting::default();
        acc.record_warp(&[3; 32]);
        assert!((acc.simd_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_divergent_work_collapses() {
        // One lane does 32 units, the rest do 1: lockstep cost 32,
        // useful 63 → efficiency 63/1024.
        let mut work = [1u64; 32];
        work[0] = 32;
        let mut acc = WarpAccounting::default();
        acc.record_warp(&work);
        assert!((acc.simd_efficiency() - 63.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn empty_warp_is_free() {
        let mut acc = WarpAccounting::default();
        acc.record_warp(&[]);
        assert_eq!(acc.lockstep_work, 0);
        assert_eq!(acc.simd_efficiency(), 1.0);
    }

    #[test]
    fn record_loads_counts_bytes_and_transactions() {
        let mut acc = WarpAccounting::default();
        acc.record_loads(0, &(0..32u64).collect::<Vec<_>>());
        assert_eq!(acc.transactions, 1);
        assert_eq!(acc.bytes_requested, 128);
        assert_eq!(acc.bytes_transferred(), 128);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = WarpAccounting::default();
        a.record_warp(&[2; 32]);
        let mut b = WarpAccounting::default();
        b.record_warp(&[4; 32]);
        a.merge(&b);
        assert_eq!(a.warps, 2);
        assert_eq!(a.lockstep_work, 6);
        assert_eq!(a.useful_work, 2 * 32 + 4 * 32);
    }
}
