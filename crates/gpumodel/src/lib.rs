//! GPU execution-model simulation.
//!
//! The paper's third platform is an NVIDIA Pascal GPU, and its Section
//! VI-B explains the key trade-off there: Soman et al.'s SV uses **edge
//! lists** — "although more data is loaded, this representation exhibits
//! higher data-parallelism … trading memory access round-trips for
//! homogeneous-work edge streaming" — while **CSR Afforest** "balances
//! the load by processing the same neighbor index during each link
//! round", and plain CSR-SV wins only where "vertex degrees are narrowly
//! dispersed" (road networks).
//!
//! No GPU is available (or needed) to examine those *model-level* claims:
//! they are statements about warp lockstep, SIMD efficiency, and memory
//! coalescing, all of which this crate simulates exactly:
//!
//! - [`warp`]: the 32-lane warp model — per-warp execution time is the
//!   *maximum* lane work (lockstep divergence), and a warp's simultaneous
//!   memory accesses coalesce into 128-byte transactions.
//! - [`kernels`]: cost models of the three competing kernels — edge-list
//!   SV hook, CSR vertex-centric SV hook, and Afforest's neighbor-round
//!   link — driven by the *actual* algorithm state so the measured work
//!   distributions are real, not synthetic.

#![forbid(unsafe_code)]

pub mod kernels;
pub mod warp;

pub use kernels::{
    simulate_afforest_rounds, simulate_csr_sv_hook, simulate_edgelist_sv_full,
    simulate_edgelist_sv_hook, KernelStats,
};
pub use warp::{coalesced_transactions, WarpAccounting, LANES, SEGMENT_BYTES};
