//! Cost models of the three competing GPU kernels (Section VI-B).
//!
//! Each simulation walks the *real* algorithm state (the parent array
//! evolves exactly as in the CPU implementation) and charges the warp
//! model for work and memory:
//!
//! | Kernel | Lane = | Lane work | Divergence risk |
//! |--------|--------|-----------|-----------------|
//! | [`simulate_edgelist_sv_hook`] | one edge | constant | none (homogeneous streaming) |
//! | [`simulate_csr_sv_hook`] | one vertex | its degree | skew-bound (max degree per warp) |
//! | [`simulate_afforest_rounds`] | one vertex | `link` local iterations ≈ 1 | low (same neighbor index per round) |
//!
//! π-walk load addresses beyond an iteration's first two reads are
//! approximated by the endpoints' slots — the walk length (and therefore
//! the lockstep cost) is exact via `link_counted`, only the *addresses*
//! of deep-walk reads are approximated, which biases the transaction
//! count in favor of SV if anything.

use crate::warp::{WarpAccounting, LANES};
use afforest_core::link::link_counted;
use afforest_core::parents::ParentArray;
use afforest_graph::{CsrGraph, Node};

/// Result of simulating one kernel (or kernel sequence).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Kernel name for reports.
    pub name: String,
    /// Warp-level accounting.
    pub acc: WarpAccounting,
    /// Kernel launches simulated.
    pub launches: usize,
}

impl KernelStats {
    /// SIMD efficiency of the whole simulation.
    pub fn simd_efficiency(&self) -> f64 {
        self.acc.simd_efficiency()
    }
}

/// Byte base offsets of the simulated arrays (distinct address spaces so
/// loads from different arrays never falsely coalesce).
const EDGES_BASE: u64 = 0;
const LABELS_BASE: u64 = 1 << 40;
const OFFSETS_BASE: u64 = 2 << 40;
const TARGETS_BASE: u64 = 3 << 40;

/// One hook pass of edge-list SV from the pristine state (`π(v) = v`):
/// lane `i` processes edge `i` — two coalesced edge-array words plus two
/// scattered label loads, constant work per lane.
pub fn simulate_edgelist_sv_hook(g: &CsrGraph) -> KernelStats {
    let edges = g.collect_edges();
    let mut acc = WarpAccounting::default();

    for (warp_idx, chunk) in edges.chunks(LANES).enumerate() {
        // Uniform single-step work per active lane.
        acc.record_warp(&vec![1u64; chunk.len()]);
        // Edge records: lane i loads the (u, v) pair — 2 words each,
        // contiguous across the warp.
        let pair_words: Vec<u64> = chunk
            .iter()
            .enumerate()
            .flat_map(|(i, _)| {
                let e = (warp_idx * LANES + i) as u64;
                [2 * e, 2 * e + 1]
            })
            .collect();
        acc.record_loads(EDGES_BASE, &pair_words);
        // Label loads: scattered by endpoint id.
        let label_slots: Vec<u64> = chunk
            .iter()
            .flat_map(|&(u, v)| [u as u64, v as u64])
            .collect();
        acc.record_loads(LABELS_BASE, &label_slots);
    }

    KernelStats {
        name: "edgelist-sv-hook".into(),
        acc,
        launches: 1,
    }
}

/// One hook pass of CSR vertex-centric SV from the pristine state: lane
/// `v` iterates its whole adjacency, so warp cost is the *maximum* degree
/// in the warp (the load-imbalance failure mode on skewed graphs).
pub fn simulate_csr_sv_hook(g: &CsrGraph) -> KernelStats {
    let n = g.num_vertices();
    let mut acc = WarpAccounting::default();

    let mut warp_start = 0usize;
    while warp_start < n {
        let warp: Vec<Node> = (warp_start..(warp_start + LANES).min(n))
            .map(|v| v as Node)
            .collect();
        let lane_work: Vec<u64> = warp.iter().map(|&v| 1 + g.degree(v) as u64).collect();
        acc.record_warp(&lane_work);

        // Offset loads (contiguous).
        acc.record_loads(
            OFFSETS_BASE,
            &warp.iter().map(|&v| v as u64).collect::<Vec<_>>(),
        );

        // Lockstep adjacency iteration: at step j, lanes with degree > j
        // load targets[offset(v) + j] and labels[neighbor].
        let max_deg = warp.iter().map(|&v| g.degree(v)).max().unwrap_or(0);
        for j in 0..max_deg {
            let mut target_slots = Vec::new();
            let mut label_slots = Vec::new();
            for &v in &warp {
                if j < g.degree(v) {
                    target_slots.push((g.offsets()[v as usize] + j) as u64);
                    label_slots.push(g.neighbor(v, j) as u64);
                }
            }
            acc.record_loads(TARGETS_BASE, &target_slots);
            acc.record_loads(LABELS_BASE, &label_slots);
        }
        warp_start += LANES;
    }

    KernelStats {
        name: "csr-sv-hook".into(),
        acc,
        launches: 1,
    }
}

/// Afforest's neighbor rounds on the GPU model: one kernel launch per
/// round, lane `v` links its `r`-th neighbor. The parent array evolves
/// exactly as on the CPU (sequential replay), so the per-lane `link`
/// iteration counts — and with them the divergence — are the real ones.
pub fn simulate_afforest_rounds(g: &CsrGraph, rounds: usize) -> KernelStats {
    let n = g.num_vertices();
    let pi = ParentArray::new(n);
    let mut acc = WarpAccounting::default();

    for round in 0..rounds {
        let mut warp_start = 0usize;
        while warp_start < n {
            let warp: Vec<Node> = (warp_start..(warp_start + LANES).min(n))
                .map(|v| v as Node)
                .collect();

            let mut lane_work = Vec::with_capacity(warp.len());
            let mut target_slots = Vec::new();
            let mut pi_slots = Vec::new();
            for &v in &warp {
                if round < g.degree(v) {
                    let w = g.neighbor(v, round);
                    target_slots.push((g.offsets()[v as usize] + round) as u64);
                    let (_, iters) = link_counted(v, w, &pi);
                    lane_work.push(iters as u64);
                    // Two π reads per iteration, charged at the endpoint
                    // slots (see module docs for the approximation note).
                    for _ in 0..iters {
                        pi_slots.push(v as u64);
                        pi_slots.push(w as u64);
                    }
                } else {
                    lane_work.push(0);
                }
            }
            acc.record_warp(&lane_work);
            acc.record_loads(
                OFFSETS_BASE,
                &warp.iter().map(|&v| v as u64).collect::<Vec<_>>(),
            );
            acc.record_loads(TARGETS_BASE, &target_slots);
            acc.record_loads(LABELS_BASE, &pi_slots);
            warp_start += LANES;
        }
        // compress between rounds, as in the real algorithm (charged as a
        // uniform sequential sweep: one lane-step per vertex).
        afforest_core::compress::compress_all(&pi);
        let mut v = 0usize;
        while v < n {
            let lanes = (n - v).min(LANES);
            acc.record_warp(&vec![1u64; lanes]);
            acc.record_loads(
                LABELS_BASE,
                &(v..v + lanes).map(|x| x as u64).collect::<Vec<_>>(),
            );
            v += lanes;
        }
    }

    KernelStats {
        name: format!("afforest-{rounds}-rounds"),
        acc,
        launches: 2 * rounds,
    }
}

/// Simulates edge-list SV *to convergence* (every global iteration
/// re-streams the whole edge list, as the real GPU code must), returning
/// per-iteration stats plus the total. The mounting transaction bill —
/// versus Afforest's fixed two rounds — is the cumulative version of the
/// Section VI-B trade-off.
pub fn simulate_edgelist_sv_full(g: &CsrGraph) -> (Vec<KernelStats>, KernelStats) {
    // Drive the real SV state machine to know the iteration count.
    let n = g.num_vertices();
    let edges = g.collect_edges();
    let mut labels: Vec<Node> = (0..n as Node).collect();
    let mut iterations = 0usize;
    loop {
        let mut changed = false;
        // Hook (both directions) + full shortcut, sequential replay.
        for &(a, b) in &edges {
            for (u, v) in [(a, b), (b, a)] {
                let (lu, lv) = (labels[u as usize], labels[v as usize]);
                if lu < lv && labels[lv as usize] == lv {
                    labels[lv as usize] = lu;
                    changed = true;
                }
            }
        }
        for v in 0..n {
            while labels[labels[v] as usize] != labels[v] {
                labels[v] = labels[labels[v] as usize];
            }
        }
        iterations += 1;
        if !changed || iterations > n {
            break;
        }
    }

    // Each iteration issues the same streaming pass; the per-iteration
    // kernel cost model is identical to the single hook pass.
    let one = simulate_edgelist_sv_hook(g);
    let mut per_iter = Vec::with_capacity(iterations);
    let mut total = KernelStats {
        name: format!("edgelist-sv-full-{iterations}-iters"),
        acc: Default::default(),
        launches: 0,
    };
    for i in 0..iterations {
        let mut it = one.clone();
        it.name = format!("edgelist-sv-iter-{i}");
        total.acc.merge(&it.acc);
        total.launches += it.launches;
        per_iter.push(it);
    }
    (per_iter, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};

    #[test]
    fn edgelist_streaming_is_perfectly_uniform() {
        // The paper's "homogeneous-work edge streaming": efficiency 1.0
        // regardless of skew.
        let g = rmat_scale(12, 8, 1);
        let stats = simulate_edgelist_sv_hook(&g);
        assert!((stats.simd_efficiency() - 1.0).abs() < 0.05);
    }

    #[test]
    fn csr_sv_collapses_on_skewed_graphs() {
        // Warp cost = max degree per warp; kron's hubs destroy efficiency.
        let kron = simulate_csr_sv_hook(&rmat_scale(12, 8, 1));
        let road = simulate_csr_sv_hook(&road_network(64, 64, 0.95, 0.02, 1));
        assert!(
            kron.simd_efficiency() < 0.3,
            "kron efficiency {}",
            kron.simd_efficiency()
        );
        assert!(
            road.simd_efficiency() > 0.5,
            "road efficiency {}",
            road.simd_efficiency()
        );
        // This is why plain CSR-SV beats the edge-list version only on
        // narrowly-dispersed road networks (Section VI-B).
    }

    #[test]
    fn afforest_rounds_stay_balanced_on_skew() {
        // "Balances the load by processing the same neighbor index during
        // each link round": high efficiency even on kron.
        let g = rmat_scale(12, 8, 1);
        let aff = simulate_afforest_rounds(&g, 2);
        let sv = simulate_csr_sv_hook(&g);
        assert!(
            aff.simd_efficiency() > 2.0 * sv.simd_efficiency(),
            "afforest {} vs csr-sv {}",
            aff.simd_efficiency(),
            sv.simd_efficiency()
        );
    }

    #[test]
    fn edgelist_loads_more_bytes() {
        // "Although more data is loaded": the edge-list hook requests
        // more bytes than the CSR hook needs for its adjacency streaming.
        let g = uniform_random(4_000, 32_000, 2);
        let el = simulate_edgelist_sv_hook(&g);
        let aff = simulate_afforest_rounds(&g, 2);
        assert!(
            el.acc.bytes_requested > aff.acc.bytes_requested,
            "edge list {} vs afforest {}",
            el.acc.bytes_requested,
            aff.acc.bytes_requested
        );
    }

    #[test]
    fn work_accounting_matches_graph_size() {
        let g = uniform_random(1_000, 8_000, 3);
        let el = simulate_edgelist_sv_hook(&g);
        assert_eq!(el.acc.useful_work, g.num_edges() as u64);
        let sv = simulate_csr_sv_hook(&g);
        // 1 (offset) + degree per vertex.
        assert_eq!(sv.acc.useful_work, (g.num_vertices() + g.num_arcs()) as u64);
    }

    #[test]
    fn empty_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(0, &[]).build();
        assert_eq!(simulate_edgelist_sv_hook(&g).acc.warps, 0);
        assert_eq!(simulate_csr_sv_hook(&g).acc.warps, 0);
        assert_eq!(simulate_afforest_rounds(&g, 2).acc.warps, 0);
    }

    #[test]
    fn launches_counted() {
        let g = uniform_random(100, 500, 1);
        assert_eq!(simulate_afforest_rounds(&g, 3).launches, 6);
        assert_eq!(simulate_edgelist_sv_hook(&g).launches, 1);
    }

    #[test]
    fn full_sv_costs_scale_with_iterations() {
        let g = uniform_random(2_000, 16_000, 4);
        let one = simulate_edgelist_sv_hook(&g);
        let (per_iter, total) = simulate_edgelist_sv_full(&g);
        assert!(per_iter.len() >= 2, "SV needs multiple global iterations");
        assert_eq!(
            total.acc.bytes_requested,
            per_iter.len() as u64 * one.acc.bytes_requested
        );
        // The cumulative bill dwarfs Afforest's fixed two rounds.
        let aff = simulate_afforest_rounds(&g, 2);
        assert!(
            total.acc.transactions > 3 * aff.acc.transactions,
            "sv total {} vs afforest {}",
            total.acc.transactions,
            aff.acc.transactions
        );
    }

    #[test]
    fn full_sv_on_empty_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(3, &[]).build();
        let (per_iter, total) = simulate_edgelist_sv_full(&g);
        assert_eq!(per_iter.len(), 1); // one no-op pass detects quiescence
        assert_eq!(total.acc.transactions, 0);
    }
}
