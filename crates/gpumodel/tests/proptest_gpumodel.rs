//! Property-based tests for the warp model.

use afforest_gpu_model::{
    coalesced_transactions, simulate_afforest_rounds, simulate_csr_sv_hook,
    simulate_edgelist_sv_hook, LANES, SEGMENT_BYTES,
};
use afforest_graph::{GraphBuilder, Node};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transaction_count_bounds(addrs in proptest::collection::vec(0u64..1_000_000, 0..32)) {
        let t = coalesced_transactions(&addrs);
        // Never more transactions than addresses; never fewer than the
        // span demands.
        prop_assert!(t <= addrs.len() as u64);
        if !addrs.is_empty() {
            let min = addrs.iter().min().unwrap() / SEGMENT_BYTES;
            let max = addrs.iter().max().unwrap() / SEGMENT_BYTES;
            prop_assert!(t >= 1);
            prop_assert!(t <= max - min + 1);
        } else {
            prop_assert_eq!(t, 0);
        }
    }

    #[test]
    fn transactions_are_permutation_invariant(
        mut addrs in proptest::collection::vec(0u64..100_000, 1..32),
    ) {
        let a = coalesced_transactions(&addrs);
        addrs.reverse();
        prop_assert_eq!(a, coalesced_transactions(&addrs));
    }

    #[test]
    fn kernel_invariants_hold_on_random_graphs(
        n in 33usize..300,
        edges in proptest::collection::vec((0u32..300, 0u32..300), 1..600),
    ) {
        let edges: Vec<(Node, Node)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as Node, v % n as Node))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges).build();

        for stats in [
            simulate_edgelist_sv_hook(&g),
            simulate_csr_sv_hook(&g),
            simulate_afforest_rounds(&g, 2),
        ] {
            // Efficiency is a ratio in (0, 1].
            let eff = stats.simd_efficiency();
            prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-12, "{}: eff {eff}", stats.name);
            // Lockstep work can never be less than useful work / LANES.
            prop_assert!(
                stats.acc.lockstep_work * LANES as u64 >= stats.acc.useful_work,
                "{}", stats.name
            );
            // Transferred bytes ≥ requested bytes / duplicates ≥ 0; and
            // transactions imply transfer.
            prop_assert_eq!(
                stats.acc.bytes_transferred(),
                stats.acc.transactions * SEGMENT_BYTES
            );
        }
    }

    #[test]
    fn edgelist_efficiency_always_near_one(
        n in 33usize..300,
        edges in proptest::collection::vec((0u32..300, 0u32..300), 32..600),
    ) {
        let edges: Vec<(Node, Node)> = edges
            .into_iter()
            .map(|(u, v)| (u % n as Node, v % n as Node))
            .collect();
        let g = GraphBuilder::from_edges(n, &edges).build();
        let stats = simulate_edgelist_sv_hook(&g);
        // Streaming lockstep: every warp costs exactly one step, so the
        // only efficiency loss is the final partial warp.
        prop_assert_eq!(stats.acc.lockstep_work, stats.acc.warps);
        let m = g.num_edges() as u64;
        if m > 0 {
            let expected = m as f64 / (m.div_ceil(LANES as u64) * LANES as u64) as f64;
            prop_assert!((stats.simd_efficiency() - expected).abs() < 1e-12);
        }
    }
}
