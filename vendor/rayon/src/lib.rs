//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the parallel-iterator API subset it actually uses.
//! Unlike a sequential mock, this shim executes on **real OS threads**
//! (`std::thread::scope`), so the lock-free algorithms in `afforest-core`
//! still experience genuine interleavings and the concurrency stress tests
//! remain meaningful.
//!
//! Execution model: a parallel iterator is a *splittable* description of
//! work. Terminal operations split it into roughly [`current_num_threads`]
//! contiguous parts, run each part's sequential iterator on its own scoped
//! worker thread, and combine the per-part results in order. Inputs shorter
//! than a small threshold run inline to avoid spawn overhead.
//!
//! Supported surface: `into_par_iter` on integer ranges and `Vec`,
//! `par_iter`/`par_iter_mut` on slices and `Vec`, `par_windows`, the
//! adapters `map`/`filter`/`filter_map`/`flat_map`/`copied`/`cloned`, the
//! terminals `for_each`/`sum`/`count`/`max`/`min`/`max_by_key`/`all`/`any`/
//! `reduce`/`collect`, and `current_num_threads`/`current_thread_index`.

use std::cell::Cell;
use std::ops::Range;
use std::sync::Arc;
use std::sync::OnceLock;

/// Everything user code needs in scope, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    /// Worker index of the current thread within an executing parallel
    /// operation (`None` on threads not spawned by this shim).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };

    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations fan out to.
///
/// Honours `RAYON_NUM_THREADS` (like real rayon); otherwise uses the
/// available hardware parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|t| t.get()) {
        return n;
    }
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
    })
}

/// Index of the current worker thread within its pool, or `None` when
/// called from outside a parallel operation. Always `< current_num_threads()`.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|idx| idx.get())
}

/// Inputs at or below this length run inline rather than spawning workers.
const SEQ_THRESHOLD: usize = 256;

/// Builder for a sized [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Starts a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread count (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim,
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count configuration. The shim has no persistent workers;
/// `install` simply bounds the fan-out of parallel operations run inside it.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing parallel operations
    /// started on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(Some(self.threads)));
        let result = op();
        POOL_THREADS.with(|t| t.set(prev));
        result
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// A splittable, parallelizable stream of items.
///
/// `len` is an upper bound on the number of items (exact for sources,
/// pre-filter for `filter`-like adapters) used only to balance splits.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Upper bound on remaining items; used for split balancing.
    fn len(&self) -> usize;

    /// Splits into two independent halves at `index` (source positions).
    fn split_at(self, index: usize) -> (Self, Self);

    /// Sequential iterator over this part's items.
    fn seq(self) -> impl Iterator<Item = Self::Item>;

    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transforms every item with `f` (in parallel).
    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Keeps only items satisfying `pred`.
    fn filter<F>(self, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter {
            base: self,
            pred: Arc::new(pred),
        }
    }

    /// Combined filter and map.
    fn filter_map<R: Send, F>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync + Send,
    {
        FilterMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Maps every item to an iterator and flattens the results.
    fn flat_map<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Maps every item to a *sequential* iterator and flattens the results
    /// (rayon distinguishes this from `flat_map`; here they are identical).
    fn flat_map_iter<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Pairs every item with its global index (valid on exact-length
    /// chains, mirroring rayon's `IndexedParallelIterator::enumerate`).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Runs `f` on every item across the worker threads.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self, |part| part.seq().for_each(&f));
    }

    /// Sums all items (same signature shape as rayon's `sum`).
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self, |part| part.seq().sum::<S>()).into_iter().sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        drive(self, |part| part.seq().count()).into_iter().sum()
    }

    /// Maximum item, or `None` if empty.
    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, |part| part.seq().max())
            .into_iter()
            .flatten()
            .max()
    }

    /// Minimum item, or `None` if empty.
    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        drive(self, |part| part.seq().min())
            .into_iter()
            .flatten()
            .min()
    }

    /// Item maximizing `key`, or `None` if empty.
    fn max_by_key<K: Ord + Send, F>(self, key: F) -> Option<Self::Item>
    where
        F: Fn(&Self::Item) -> K + Sync + Send,
    {
        drive(self, |part| part.seq().max_by_key(|x| key(x)))
            .into_iter()
            .flatten()
            .max_by_key(|x| key(x))
    }

    /// Whether `pred` holds for every item.
    fn all<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        drive(self, |part| part.seq().all(&pred))
            .into_iter()
            .all(|b| b)
    }

    /// Whether `pred` holds for any item.
    fn any<F>(self, pred: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync + Send,
    {
        drive(self, |part| part.seq().any(&pred))
            .into_iter()
            .any(|b| b)
    }

    /// Reduces with `op` starting from `identity()` (rayon semantics: the
    /// identity may be folded in any number of times).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self, |part| part.seq().fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Collects into any `FromIterator` collection, preserving order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        drive(self, |part| part.seq().collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect()
    }

    /// Copies referenced items (for iterators over `&T`).
    fn copied<'a, T>(self) -> Map<Self, fn(&'a T) -> T>
    where
        T: 'a + Copy + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Map {
            base: self,
            f: Arc::new(|x: &'a T| *x),
        }
    }

    /// Clones referenced items (for iterators over `&T`).
    fn cloned<'a, T>(self) -> Map<Self, fn(&'a T) -> T>
    where
        T: 'a + Clone + Send + Sync,
        Self: ParallelIterator<Item = &'a T>,
    {
        Map {
            base: self,
            f: Arc::new(|x: &'a T| x.clone()),
        }
    }
}

/// Marker for exact-length parallel iterators. Every iterator in this shim
/// tracks its length, so the trait is a blanket alias for
/// [`ParallelIterator`] (kept for signature compatibility with rayon).
pub trait IndexedParallelIterator: ParallelIterator {}

impl<T: ParallelIterator> IndexedParallelIterator for T {}

/// Splits `p` into at most `parts` pieces of similar length.
fn split_parts<P: ParallelIterator>(p: P, parts: usize, out: &mut Vec<P>) {
    if parts <= 1 || p.len() <= 1 {
        out.push(p);
        return;
    }
    let left_parts = parts / 2;
    let mid = p.len() * left_parts / parts;
    if mid == 0 || mid == p.len() {
        out.push(p);
        return;
    }
    let (l, r) = p.split_at(mid);
    split_parts(l, left_parts, out);
    split_parts(r, parts - left_parts, out);
}

/// Executes `f` over split parts on scoped worker threads, returning the
/// per-part results in order. Small inputs run inline.
fn drive<P, R, F>(p: P, f: F) -> Vec<R>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let threads = current_num_threads();
    if threads <= 1 || p.len() <= SEQ_THRESHOLD {
        return vec![f(p)];
    }
    let mut parts = Vec::with_capacity(threads);
    split_parts(p, threads, &mut parts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(i, part)| {
                let f = &f;
                scope.spawn(move || {
                    WORKER_INDEX.with(|idx| idx.set(Some(i)));
                    f(part)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// Parallel `map` adapter.
pub struct Map<P, F: ?Sized> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send + ?Sized,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Map {
                base: l,
                f: Arc::clone(&self.f),
            },
            Map { base: r, f: self.f },
        )
    }

    fn seq(self) -> impl Iterator<Item = R> {
        let f = self.f;
        self.base.seq().map(move |x| f(x))
    }
}

/// Parallel `filter` adapter.
pub struct Filter<P, F: ?Sized> {
    base: P,
    pred: Arc<F>,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync + Send + ?Sized,
{
    type Item = P::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Filter {
                base: l,
                pred: Arc::clone(&self.pred),
            },
            Filter {
                base: r,
                pred: self.pred,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = P::Item> {
        let pred = self.pred;
        self.base.seq().filter(move |x| pred(x))
    }
}

/// Parallel `filter_map` adapter.
pub struct FilterMap<P, F: ?Sized> {
    base: P,
    f: Arc<F>,
}

impl<P, R, F> ParallelIterator for FilterMap<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> Option<R> + Sync + Send + ?Sized,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterMap {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterMap { base: r, f: self.f },
        )
    }

    fn seq(self) -> impl Iterator<Item = R> {
        let f = self.f;
        self.base.seq().filter_map(move |x| f(x))
    }
}

/// Parallel `flat_map` adapter.
pub struct FlatMap<P, F: ?Sized> {
    base: P,
    f: Arc<F>,
}

impl<P, I, F> ParallelIterator for FlatMap<P, F>
where
    P: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(P::Item) -> I + Sync + Send + ?Sized,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMap {
                base: l,
                f: Arc::clone(&self.f),
            },
            FlatMap { base: r, f: self.f },
        )
    }

    fn seq(self) -> impl Iterator<Item = I::Item> {
        let f = self.f;
        self.base.seq().flat_map(move |x| f(x))
    }
}

/// Parallel `enumerate` adapter.
pub struct Enumerate<P> {
    base: P,
    offset: usize,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = (usize, P::Item)> {
        let offset = self.offset;
        self.base
            .seq()
            .enumerate()
            .map(move |(i, x)| (offset + i, x))
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator, mirroring rayon's trait.
pub trait IntoParallelIterator {
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on `&self`, mirroring rayon's trait.
pub trait IntoParallelRefIterator<'data> {
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// `.par_iter_mut()` on `&mut self`, mirroring rayon's trait.
pub trait IntoParallelRefMutIterator<'data> {
    /// The resulting parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (an exclusive reference).
    type Item: Send + 'data;
    /// Mutably borrows `self` as a parallel iterator.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

/// Parallel views over slices (`par_windows`, `par_chunks`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over all contiguous windows of length `size`.
    fn par_windows(&self, size: usize) -> WindowsPar<'_, T>;
    /// Parallel iterator over chunks of up to `size` elements.
    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T>;
}

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    start: T,
    end: T,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self.start + index as $t;
                (
                    RangePar { start: self.start, end: mid },
                    RangePar { start: mid, end: self.end },
                )
            }

            fn seq(self) -> impl Iterator<Item = $t> {
                self.start..self.end
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Iter = RangePar<$t>;
            type Item = $t;

            fn into_par_iter(self) -> RangePar<$t> {
                RangePar { start: self.start, end: self.end.max(self.start) }
            }
        }
    )*};
}
impl_range_par!(u32, u64, usize);

/// Parallel iterator over owned `Vec` elements.
pub struct VecPar<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }

    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecPar { items: tail })
    }

    fn seq(self) -> impl Iterator<Item = T> {
        self.items.into_iter()
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

/// Parallel iterator over shared slice references.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (SlicePar { slice: l }, SlicePar { slice: r })
    }

    fn seq(self) -> impl Iterator<Item = &'a T> {
        self.slice.iter()
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = SlicePar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SlicePar<'data, T> {
        SlicePar { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = SlicePar<'data, T>;
    type Item = &'data T;

    fn par_iter(&'data self) -> SlicePar<'data, T> {
        SlicePar { slice: self }
    }
}

/// Parallel iterator over exclusive slice references.
pub struct SliceMutPar<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceMutPar<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (SliceMutPar { slice: l }, SliceMutPar { slice: r })
    }

    fn seq(self) -> impl Iterator<Item = &'a mut T> {
        self.slice.iter_mut()
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = SliceMutPar<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> SliceMutPar<'data, T> {
        SliceMutPar { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = SliceMutPar<'data, T>;
    type Item = &'data mut T;

    fn par_iter_mut(&'data mut self) -> SliceMutPar<'data, T> {
        SliceMutPar { slice: self }
    }
}

/// Parallel iterator over slice windows.
pub struct WindowsPar<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for WindowsPar<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        (self.slice.len() + 1).saturating_sub(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // Left part covers windows starting at [0, index): it needs the
        // elements [0, index + size - 1). Right part starts at `index`.
        let left_end = (index + self.size - 1).min(self.slice.len());
        (
            WindowsPar {
                slice: &self.slice[..left_end],
                size: self.size,
            },
            WindowsPar {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = &'a [T]> {
        self.slice.windows(self.size)
    }
}

/// Parallel iterator over slice chunks.
pub struct ChunksPar<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(mid);
        (
            ChunksPar {
                slice: l,
                size: self.size,
            },
            ChunksPar {
                slice: r,
                size: self.size,
            },
        )
    }

    fn seq(self) -> impl Iterator<Item = &'a [T]> {
        self.slice.chunks(self.size)
    }
}

/// Parallel mutation helpers on slices (`par_sort_unstable`).
pub trait ParallelSliceMut<T: Send> {
    /// Sorts the slice. Chunks are sorted on the worker threads, then
    /// merged; falls back to a plain sort for short inputs.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        let threads = current_num_threads();
        if threads <= 1 || self.len() <= SEQ_THRESHOLD {
            self.sort_unstable();
            return;
        }
        // Sort disjoint chunks concurrently...
        let chunk = self.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (i, part) in self.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    WORKER_INDEX.with(|idx| idx.set(Some(i)));
                    part.sort_unstable();
                });
            }
        });
        // ...then merge with the stable driftsort, whose run detection makes
        // this pass O(n log k) over the k pre-sorted chunks.
        self.sort();
    }
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_windows(&self, size: usize) -> WindowsPar<'_, T> {
        assert!(size > 0, "window size must be positive");
        WindowsPar { slice: self, size }
    }

    fn par_chunks(&self, size: usize) -> ChunksPar<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ChunksPar { slice: self, size }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<u32> = (0u32..10_000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn sum_and_count() {
        let s: u64 = (0u64..100_000).into_par_iter().sum();
        assert_eq!(s, 100_000 * 99_999 / 2);
        let c = (0usize..100_000)
            .into_par_iter()
            .filter(|x| x % 3 == 0)
            .count();
        assert_eq!(c, 33_334);
    }

    #[test]
    fn for_each_touches_every_item_concurrently() {
        let counter = AtomicUsize::new(0);
        (0usize..50_000).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50_000);
    }

    #[test]
    fn slice_iter_and_windows() {
        let data: Vec<usize> = (0..5_000).collect();
        let m = data.par_iter().copied().max();
        assert_eq!(m, Some(4_999));
        let windows: Vec<usize> = data.par_windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(windows.len(), 4_999);
        assert!(windows.iter().all(|&d| d == 1));
    }

    #[test]
    fn par_iter_mut_writes() {
        let mut data = vec![0usize; 10_000];
        data.par_iter_mut().for_each(|x| *x = 7);
        assert!(data.iter().all(|&x| x == 7));
    }

    #[test]
    fn reduce_matches_sequential() {
        let total = (1u64..=1_000)
            .collect::<Vec<_>>()
            .into_par_iter()
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn all_any_min() {
        assert!((0u32..10_000).into_par_iter().all(|x| x < 10_000));
        assert!((0u32..10_000).into_par_iter().any(|x| x == 9_999));
        assert_eq!((5u32..10_000).into_par_iter().min(), Some(5));
    }

    #[test]
    fn worker_indices_bounded() {
        let n = super::current_num_threads();
        (0usize..10_000).into_par_iter().for_each(|_| {
            if let Some(i) = super::current_thread_index() {
                assert!(i < n);
            }
        });
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = (0u32..0).into_par_iter().map(|x| x + 1).collect();
        assert!(v.is_empty());
        assert_eq!((0usize..0).into_par_iter().count(), 0);
        let empty: Vec<u32> = Vec::new();
        assert_eq!(empty.par_iter().max(), None);
    }
}
