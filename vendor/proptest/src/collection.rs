//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Admissible element counts for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
