//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the API subset its property tests use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - [`strategy::Strategy`] with `prop_flat_map` / `prop_map`, range and
//!   tuple strategies, [`strategy::Just`], [`strategy::any`],
//! - [`collection::vec`].
//!
//! Each test runs `ProptestConfig::cases` iterations with inputs drawn from
//! a generator seeded by the test's module path and name, so failures are
//! deterministic and reproducible. Unlike real proptest there is **no
//! shrinking**: a failing case reports the case number and message only.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// item becomes a `#[test]` running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strat = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> = {
                    let ($($pat,)+) = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn flat_map_dependent_values(
            (n, v) in (1usize..50).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..n, 0..20))
            }),
        ) {
            prop_assert!(v.len() < 20);
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn tuples_and_any(pair in (0u32..7, 0u32..7), flag in any::<bool>(), s in any::<u64>()) {
            prop_assert!(pair.0 < 7 && pair.1 < 7);
            prop_assert!(u32::from(flag) <= 1);
            let _ = s;
        }

        #[test]
        fn floats_in_range(f in 0.25f64..0.75) {
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn mutable_patterns(mut v in crate::collection::vec(0u64..1_000, 1..32)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let strat = (0u64..1_000_000,);
        let mut a = crate::test_runner::TestRng::for_test("seed-test");
        let mut b = crate::test_runner::TestRng::for_test("seed-test");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn prop_map_transforms() {
        use crate::strategy::Strategy;
        let strat = (0u32..100).prop_map(|x| x * 2);
        let mut rng = crate::test_runner::TestRng::for_test("map-test");
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut rng) % 2, 0);
        }
    }
}
