//! Test execution support: configuration, RNG, and case errors.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::hash::{DefaultHasher, Hash, Hasher};

/// Per-test configuration (subset of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite fast
        // while still exercising a meaningful sample.
        Self { cases: 64 }
    }
}

/// Deterministic generator driving all strategies of one property test.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates a generator seeded from the test's identifier, so every run
    /// of the same test draws the same case sequence.
    pub fn for_test(test_id: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        test_id.hash(&mut hasher);
        Self {
            inner: SmallRng::seed_from_u64(hasher.finish()),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Failure of a single property-test case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Constructs a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
