//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Generates a dependent strategy from each drawn value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Transforms each drawn value.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { base: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Boxed, type-erased strategy (mirrors `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.inner.sample(rng)
    }
}

/// Strategy always yielding a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        let inner = self.base.sample(rng);
        (self.f)(inner).sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.sample(rng))
    }
}

/// Types with a canonical "any value" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+ ; $($idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A; 0);
impl_tuple_strategy!(A, B; 0, 1);
impl_tuple_strategy!(A, B, C; 0, 1, 2);
impl_tuple_strategy!(A, B, C, D; 0, 1, 2, 3);
impl_tuple_strategy!(A, B, C, D, E; 0, 1, 2, 3, 4);
impl_tuple_strategy!(A, B, C, D, E, F; 0, 1, 2, 3, 4, 5);
