//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the benchmark-harness API subset its benches use:
//! groups, `bench_function` / `bench_with_input`, throughput annotation,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark warms up briefly,
//! then runs timed batches until the measurement budget is spent, and
//! prints the mean wall-clock time per iteration (plus throughput when
//! annotated). There is no statistical analysis, HTML report, or baseline
//! comparison — just enough to keep `cargo bench` usable offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement strategies (only wall-clock time is provided).
pub mod measurement {
    /// Wall-clock measurement marker (the default).
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. edges) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Times a single benchmark's iterations.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_secs: f64,
    warm_up: Duration,
    budget: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly within the measurement budget and records the
    /// mean wall-clock time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_end {
            black_box(f());
            warm_iters += 1;
        }

        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        let _ = warm_iters;
        self.mean_secs = start.elapsed().as_secs_f64() / iters as f64;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    throughput: Option<Throughput>,
    warm_up: Duration,
    budget: Duration,
    _criterion: &'a mut Criterion,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the per-benchmark sample count (accepted for API parity; the
    /// shim sizes iteration counts from the time budget instead).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up duration before measurement.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    /// Annotates subsequent benchmarks with units processed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean_secs: 0.0,
            warm_up: self.warm_up,
            budget: self.budget,
        };
        f(&mut b);
        self.report(&id, b.mean_secs);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            mean_secs: 0.0,
            warm_up: self.warm_up,
            budget: self.budget,
        };
        f(&mut b, input);
        self.report(&id, b.mean_secs);
        self
    }

    fn report(&self, id: &BenchmarkId, mean_secs: f64) {
        let mut line = format!("{}/{}: {}", self.name, id, human_time(mean_secs));
        if let Some(t) = self.throughput {
            let (units, label) = match t {
                Throughput::Elements(n) => (n as f64, "elem/s"),
                Throughput::Bytes(n) => (n as f64, "B/s"),
            };
            if mean_secs > 0.0 {
                line.push_str(&format!("  ({:.3e} {label})", units / mean_secs));
            }
        }
        println!("{line}");
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            warm_up: Duration::from_millis(100),
            budget: Duration::from_millis(500),
            _criterion: self,
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from_parameter("bench"), f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
