//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and no registry cache, so the
//! workspace vendors the small API subset it actually uses:
//!
//! - [`SeedableRng::seed_from_u64`]
//! - [`rngs::SmallRng`] (xoshiro256++, seeded via splitmix64 — the same
//!   generator family the real `SmallRng` uses on 64-bit targets)
//! - [`Rng::random`] and [`Rng::random_range`] for the primitive types the
//!   generators and samplers draw
//!
//! Streams are deterministic for a given seed, which is all the repository
//! relies on; they are **not** bit-identical to upstream `rand` 0.9.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values drawable from the "standard" distribution of [`Rng::random`]:
/// uniform over all values for integers and `bool`, uniform in `[0, 1)` for
/// floats.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::draw(rng) * (self.end - self.start)
    }
}

/// High-level drawing interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of Uniform[0,1) over 10k draws.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues));
    }
}
