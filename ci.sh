#!/bin/sh
# One-command verification gate. Thin wrapper so CI systems and humans run
# the exact same battery; the actual sequencing lives in `cargo xtask ci`:
#
#   1. static analysis battery (crates/analysis, 8 passes: SAFETY coverage,
#      ordering allowlist, SeqCst ban, metric fixture, lock order, panic
#      paths, audit drift, opcode consistency) — JSON report written to
#      target/analysis.json
#   2. cargo fmt --check
#   3. cargo clippy --workspace --all-targets -- -D warnings
#   4. cargo test --workspace  (twice: obs feature off and on)
#   5. the schedule-exploring model checker (crates/modelcheck)
#   6. loopback serving smoke: afforest serve on an ephemeral port +
#      afforest loadgen mixed workload, zero errors, graceful shutdown
#      (obs feature off and on)
set -eu
cd "$(dirname "$0")"
exec cargo xtask ci
