//! Umbrella crate for the Afforest reproduction workspace.
//!
//! This crate re-exports the public API of the three member crates so that
//! the examples and integration tests in this repository (and downstream
//! users who want a single dependency) can write:
//!
//! ```
//! use afforest_repro::prelude::*;
//!
//! let graph = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]).build();
//! let labels = afforest(&graph, &AfforestConfig::default());
//! assert_eq!(labels.num_components(), 2);
//! ```
//!
//! The heavy lifting lives in:
//!
//! - [`afforest_graph`] — CSR graph substrate, generators, I/O, statistics.
//! - [`afforest_core`] — the paper's contribution: `link`/`compress`,
//!   subgraph sampling, convergence metrics, instrumentation.
//! - [`afforest_baselines`] — Shiloach–Vishkin, label propagation, BFS-CC,
//!   direction-optimizing BFS-CC, and a serial union-find oracle.

#![forbid(unsafe_code)]

pub use afforest_baselines as baselines;
pub use afforest_core as core;
pub use afforest_distrib as distrib;
pub use afforest_gpu_model as gpumodel;
pub use afforest_graph as graph;

/// Convenient glob-import surface covering the common 90% of the API.
pub mod prelude {
    pub use afforest_baselines::{
        bfs_cc, dobfs_cc, label_prop, label_prop_sync, shiloach_vishkin, sv_edgelist, UnionFind,
    };
    pub use afforest_core::{
        afforest, afforest_with_stats, AfforestConfig, ComponentLabels, RunStats,
    };
    pub use afforest_graph::{generators, CsrGraph, EdgeList, GraphBuilder, GraphStats, Node};
}
